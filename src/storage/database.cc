#include "storage/database.h"

#include <cstring>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace sopr {

Status Database::CreateTable(TableSchema schema) {
  std::string key = ToLower(schema.name());
  SOPR_RETURN_NOT_OK(catalog_.AddTable(schema));
  tables_.emplace(std::move(key), Table(std::move(schema)));
  return Status::OK();
}

Status Database::DropTable(std::string_view name) {
  SOPR_RETURN_NOT_OK(catalog_.DropTable(name));
  tables_.erase(ToLower(name));
  return Status::OK();
}

Result<Table*> Database::GetTable(std::string_view name) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::CatalogError("no such table: " + std::string(name));
  }
  return &it->second;
}

Result<const Table*> Database::GetTable(std::string_view name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::CatalogError("no such table: " + std::string(name));
  }
  return &it->second;
}

Result<TupleHandle> Database::InsertRow(std::string_view table, Row row) {
  SOPR_FAILPOINT_RETURN("storage.insert.pre");
  SOPR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  SOPR_RETURN_NOT_OK(t->schema().CheckRow(row));
  TupleHandle handle = next_handle_++;
  SOPR_RETURN_NOT_OK(t->Insert(handle, std::move(row)));
  // A mutation that cannot be undo-logged must not stay applied: without
  // the record, a later rollback could not remove it.
  Status logged = undo_.RecordInsert(ToLower(table), handle);
  if (!logged.ok()) {
    FailpointRegistry::SuppressScope no_failpoints;  // revert is infallible
    SOPR_RETURN_NOT_OK(t->Erase(handle));
    return logged;
  }
  SOPR_FAILPOINT_RETURN("storage.insert.post");
  return handle;
}

Status Database::DeleteRow(std::string_view table, TupleHandle handle) {
  SOPR_FAILPOINT_RETURN("storage.delete.pre");
  SOPR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  SOPR_ASSIGN_OR_RETURN(const Row* row, t->Get(handle));
  Row old_row = *row;
  SOPR_RETURN_NOT_OK(t->Erase(handle));
  Status logged = undo_.RecordDelete(ToLower(table), handle, old_row);
  if (!logged.ok()) {
    FailpointRegistry::SuppressScope no_failpoints;  // revert is infallible
    SOPR_RETURN_NOT_OK(t->Insert(handle, std::move(old_row)));
    return logged;
  }
  SOPR_FAILPOINT_RETURN("storage.delete.post");
  return Status::OK();
}

Status Database::UpdateRow(std::string_view table, TupleHandle handle,
                           Row new_row) {
  SOPR_FAILPOINT_RETURN("storage.update.pre");
  SOPR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  SOPR_RETURN_NOT_OK(t->schema().CheckRow(new_row));
  SOPR_ASSIGN_OR_RETURN(const Row* row, t->Get(handle));
  Row old_row = *row;
  SOPR_RETURN_NOT_OK(t->Replace(handle, std::move(new_row)));
  Status logged = undo_.RecordUpdate(ToLower(table), handle, old_row);
  if (!logged.ok()) {
    FailpointRegistry::SuppressScope no_failpoints;  // revert is infallible
    SOPR_RETURN_NOT_OK(t->Replace(handle, std::move(old_row)));
    return logged;
  }
  SOPR_FAILPOINT_RETURN("storage.update.post");
  return Status::OK();
}

Status Database::RollbackTo(UndoLog::Mark mark) {
  // Rollback replays the undo log through the same Table mutation code the
  // failpoints instrument; it must be infallible or a failed transaction
  // could land in a third state between "committed" and "S0".
  FailpointRegistry::SuppressScope no_failpoints;
  const auto& records = undo_.records();
  for (size_t i = records.size(); i > mark; --i) {
    const UndoRecord& rec = records[i - 1];
    auto table_result = GetTable(rec.table);
    if (!table_result.ok()) return table_result.status();
    Table* t = table_result.value();
    switch (rec.kind) {
      case UndoRecord::Kind::kInsert:
        SOPR_RETURN_NOT_OK(t->Erase(rec.handle));
        break;
      case UndoRecord::Kind::kDelete:
        SOPR_RETURN_NOT_OK(t->Insert(rec.handle, rec.old_row));
        break;
      case UndoRecord::Kind::kUpdate:
        SOPR_RETURN_NOT_OK(t->Replace(rec.handle, rec.old_row));
        break;
    }
  }
  undo_.TruncateTo(mark);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Integrity: checksums and invariants
// ---------------------------------------------------------------------------

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t h, const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t FnvMixU64(uint64_t h, uint64_t v) { return FnvMix(h, &v, sizeof(v)); }

uint64_t HashValue(uint64_t h, const Value& v) {
  auto tag = static_cast<uint64_t>(v.type());
  h = FnvMixU64(h, tag);
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      h = FnvMixU64(h, v.AsBool() ? 1 : 0);
      break;
    case ValueType::kInt:
      h = FnvMixU64(h, static_cast<uint64_t>(v.AsInt()));
      break;
    case ValueType::kDouble: {
      uint64_t bits = 0;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      h = FnvMixU64(h, bits);
      break;
    }
    case ValueType::kString:
      h = FnvMix(h, v.AsString().data(), v.AsString().size());
      break;
  }
  return h;
}

/// Final avalanche (splitmix64) so that summing per-entry hashes — the
/// order-independent combiner — does not cancel structured differences.
uint64_t Finalize(uint64_t h) {
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

}  // namespace

uint64_t Database::Checksum() const {
  uint64_t sum = 0;
  for (const auto& [name, table] : tables_) {
    for (const auto& [handle, row] : table.rows()) {
      uint64_t h = FnvMix(kFnvOffset, name.data(), name.size());
      h = FnvMixU64(h, handle);
      for (size_t c = 0; c < row.size(); ++c) h = HashValue(h, row.at(c));
      sum += Finalize(h);
    }
    for (size_t c = 0; c < table.schema().num_columns(); ++c) {
      const ColumnIndex* index = table.GetIndex(c);
      if (index == nullptr) continue;
      index->ForEachEntry([&](const Value& key, TupleHandle handle) {
        uint64_t h = FnvMix(kFnvOffset ^ 0xa5a5a5a5a5a5a5a5ull, name.data(),
                            name.size());
        h = FnvMixU64(h, c);
        h = HashValue(h, key);
        h = FnvMixU64(h, handle);
        sum += Finalize(h);
      });
    }
  }
  return sum;
}

Status Database::CheckInvariants() const {
  for (const auto& [name, table] : tables_) {
    for (size_t c = 0; c < table.schema().num_columns(); ++c) {
      const ColumnIndex* index = table.GetIndex(c);
      if (index == nullptr) continue;
      size_t indexed_rows = 0;
      for (const auto& [handle, row] : table.rows()) {
        const Value& key = row.at(c);
        if (key.is_null()) continue;  // NULLs are not indexed
        ++indexed_rows;
        const std::set<TupleHandle>* bucket = index->Lookup(key);
        if (bucket == nullptr || bucket->count(handle) == 0) {
          return Status::Internal(
              "index on " + name + "." +
              table.schema().columns()[c].name + " is missing handle " +
              std::to_string(handle) + " for key " + key.ToString());
        }
      }
      if (index->num_entries() != indexed_rows) {
        return Status::Internal(
            "index on " + name + "." + table.schema().columns()[c].name +
            " has " + std::to_string(index->num_entries()) +
            " entries but the heap has " + std::to_string(indexed_rows) +
            " indexable rows (stale entries)");
      }
    }
  }
  return Status::OK();
}

}  // namespace sopr
