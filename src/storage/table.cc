#include "storage/table.h"

#include <algorithm>

#include "common/failpoint.h"

namespace sopr {

namespace {

/// Lock helper: an engaged unique_lock when MVCC is on, disengaged (and
/// free) otherwise. Writers use this so the non-MVCC single-user path
/// pays nothing.
template <typename Mutex>
std::unique_lock<Mutex> MaybeLock(Mutex* mu) {
  return mu == nullptr ? std::unique_lock<Mutex>()
                       : std::unique_lock<Mutex>(*mu);
}

}  // namespace

void Table::EnableMvcc() {
  if (mvcc_ == nullptr) mvcc_ = std::make_unique<MvccState>();
}

Status Table::Insert(TupleHandle handle, Row row) {
  if (handle == kInvalidHandle) {
    return Status::Internal("attempt to insert with invalid handle");
  }
  auto lock = MaybeLock(mvcc_ == nullptr ? nullptr : &mvcc_->mu);
  auto [it, inserted] = rows_.emplace(handle, std::move(row));
  if (!inserted) {
    return Status::Internal("duplicate tuple handle " +
                            std::to_string(handle) + " in table " +
                            schema_.name());
  }
  // A failure between the heap mutation and index maintenance must not
  // leave the two disagreeing: revert the heap insert before returning.
  Status fault = SOPR_FAILPOINT("table.insert.mid");
  if (!fault.ok()) {
    rows_.erase(it);
    return fault;
  }
  for (ColumnIndex& index : indexes_) {
    index.Insert(it->second.at(index.column()), handle);
  }
  // Invisible to every snapshot until the owning transaction commits and
  // stamps the sentinel to its commit LSN.
  if (mvcc_ != nullptr) mvcc_->live_begin[handle] = kPendingLsn;
  return Status::OK();
}

Status Table::Erase(TupleHandle handle) {
  auto lock = MaybeLock(mvcc_ == nullptr ? nullptr : &mvcc_->mu);
  auto it = rows_.find(handle);
  if (it == rows_.end()) {
    return Status::Internal("no tuple with handle " + std::to_string(handle) +
                            " in table " + schema_.name());
  }
  for (ColumnIndex& index : indexes_) {
    index.Erase(it->second.at(index.column()), handle);
  }
  // Index entries are already gone; on an injected failure re-add them so
  // the heap (which still holds the row) and the indexes agree.
  Status fault = SOPR_FAILPOINT("table.erase.mid");
  if (!fault.ok()) {
    for (ColumnIndex& index : indexes_) {
      index.Insert(it->second.at(index.column()), handle);
    }
    return fault;
  }
  if (mvcc_ != nullptr) {
    // The deleted image stays readable for snapshots that predate the
    // deleting commit.
    RowVersion version;
    auto begin_it = mvcc_->live_begin.find(handle);
    version.begin_lsn =
        begin_it == mvcc_->live_begin.end() ? 0 : begin_it->second;
    version.end_lsn = kPendingLsn;
    version.row = std::move(it->second);
    mvcc_->chains[handle].push_back(std::move(version));
    if (begin_it != mvcc_->live_begin.end()) {
      mvcc_->live_begin.erase(begin_it);
    }
  }
  rows_.erase(it);
  return Status::OK();
}

Status Table::Replace(TupleHandle handle, Row row) {
  auto lock = MaybeLock(mvcc_ == nullptr ? nullptr : &mvcc_->mu);
  auto it = rows_.find(handle);
  if (it == rows_.end()) {
    return Status::Internal("no tuple with handle " + std::to_string(handle) +
                            " in table " + schema_.name());
  }
  for (ColumnIndex& index : indexes_) {
    index.Erase(it->second.at(index.column()), handle);
  }
  Status fault = SOPR_FAILPOINT("table.replace.mid");
  if (!fault.ok()) {
    for (ColumnIndex& index : indexes_) {
      index.Insert(it->second.at(index.column()), handle);
    }
    return fault;
  }
  if (mvcc_ != nullptr) {
    RowVersion version;
    auto begin_it = mvcc_->live_begin.find(handle);
    version.begin_lsn =
        begin_it == mvcc_->live_begin.end() ? 0 : begin_it->second;
    version.end_lsn = kPendingLsn;
    version.row = it->second;
    mvcc_->chains[handle].push_back(std::move(version));
    mvcc_->live_begin[handle] = kPendingLsn;
  }
  it->second = std::move(row);
  for (ColumnIndex& index : indexes_) {
    index.Insert(it->second.at(index.column()), handle);
  }
  return Status::OK();
}

Status Table::RollbackInsert(TupleHandle handle) {
  if (mvcc_ == nullptr) return Erase(handle);
  std::unique_lock<std::shared_mutex> lock(mvcc_->mu);
  auto it = rows_.find(handle);
  if (it == rows_.end()) {
    return Status::Internal("rollback-insert: no tuple with handle " +
                            std::to_string(handle) + " in table " +
                            schema_.name());
  }
  for (ColumnIndex& index : indexes_) {
    index.Erase(it->second.at(index.column()), handle);
  }
  rows_.erase(it);
  // Structural undo: the insert created the live_begin sentinel, so the
  // undo removes it rather than recording the rollback as a deletion.
  mvcc_->live_begin.erase(handle);
  return Status::OK();
}

Status Table::RollbackDelete(TupleHandle handle, Row old_row) {
  if (mvcc_ == nullptr) return Insert(handle, std::move(old_row));
  std::unique_lock<std::shared_mutex> lock(mvcc_->mu);
  auto [it, inserted] = rows_.emplace(handle, std::move(old_row));
  if (!inserted) {
    return Status::Internal("rollback-delete: handle " +
                            std::to_string(handle) +
                            " already present in table " + schema_.name());
  }
  for (ColumnIndex& index : indexes_) {
    index.Insert(it->second.at(index.column()), handle);
  }
  auto chain_it = mvcc_->chains.find(handle);
  if (chain_it == mvcc_->chains.end() || chain_it->second.empty() ||
      chain_it->second.back().end_lsn != kPendingLsn) {
    return Status::Internal("rollback-delete: no pending version for handle " +
                            std::to_string(handle) + " in table " +
                            schema_.name());
  }
  const uint64_t begin = chain_it->second.back().begin_lsn;
  chain_it->second.pop_back();
  if (chain_it->second.empty()) mvcc_->chains.erase(chain_it);
  if (begin == 0) {
    mvcc_->live_begin.erase(handle);
  } else {
    mvcc_->live_begin[handle] = begin;
  }
  return Status::OK();
}

Status Table::RollbackUpdate(TupleHandle handle, Row old_row) {
  if (mvcc_ == nullptr) return Replace(handle, std::move(old_row));
  std::unique_lock<std::shared_mutex> lock(mvcc_->mu);
  auto it = rows_.find(handle);
  if (it == rows_.end()) {
    return Status::Internal("rollback-update: no tuple with handle " +
                            std::to_string(handle) + " in table " +
                            schema_.name());
  }
  for (ColumnIndex& index : indexes_) {
    index.Erase(it->second.at(index.column()), handle);
  }
  it->second = std::move(old_row);
  for (ColumnIndex& index : indexes_) {
    index.Insert(it->second.at(index.column()), handle);
  }
  auto chain_it = mvcc_->chains.find(handle);
  if (chain_it == mvcc_->chains.end() || chain_it->second.empty() ||
      chain_it->second.back().end_lsn != kPendingLsn) {
    return Status::Internal("rollback-update: no pending version for handle " +
                            std::to_string(handle) + " in table " +
                            schema_.name());
  }
  const uint64_t begin = chain_it->second.back().begin_lsn;
  chain_it->second.pop_back();
  if (chain_it->second.empty()) mvcc_->chains.erase(chain_it);
  if (begin == 0) {
    mvcc_->live_begin.erase(handle);
  } else {
    mvcc_->live_begin[handle] = begin;
  }
  return Status::OK();
}

void Table::StampVersions(TupleHandle handle, uint64_t commit_lsn) {
  if (mvcc_ == nullptr) return;
  std::unique_lock<std::shared_mutex> lock(mvcc_->mu);
  auto begin_it = mvcc_->live_begin.find(handle);
  if (begin_it != mvcc_->live_begin.end() &&
      begin_it->second == kPendingLsn) {
    begin_it->second = commit_lsn;
  }
  auto chain_it = mvcc_->chains.find(handle);
  if (chain_it == mvcc_->chains.end()) return;
  // Pending entries are a suffix of the chain: everything older was
  // stamped by the commit that superseded it.
  for (auto v = chain_it->second.rbegin();
       v != chain_it->second.rend() && v->end_lsn == kPendingLsn; ++v) {
    v->end_lsn = commit_lsn;
    // An insert superseded within its own transaction yields the empty
    // interval [C, C): correctly visible to nobody.
    if (v->begin_lsn == kPendingLsn) v->begin_lsn = commit_lsn;
  }
}

const Row* Table::VisibleChainRow(const std::vector<RowVersion>& chain,
                                  uint64_t lsn) {
  for (const RowVersion& v : chain) {
    if (v.begin_lsn <= lsn && lsn < v.end_lsn) return &v.row;
  }
  return nullptr;
}

bool Table::LiveVisibleLocked(TupleHandle handle, uint64_t lsn) const {
  auto it = mvcc_->live_begin.find(handle);
  return it == mvcc_->live_begin.end() || it->second <= lsn;
}

void Table::SnapshotScan(
    uint64_t lsn, std::vector<std::pair<TupleHandle, Row>>* out) const {
  if (mvcc_ == nullptr) {
    for (const auto& [handle, row] : rows_) out->emplace_back(handle, row);
    return;
  }
  std::shared_lock<std::shared_mutex> lock(mvcc_->mu);
  SnapshotScanLocked(lsn, out);
}

void Table::SnapshotScanLocked(
    uint64_t lsn, std::vector<std::pair<TupleHandle, Row>>* out) const {
  // Handle-ordered merge of the heap and the version chains. The
  // intervals of a handle's versions (chain entries plus the live row)
  // are disjoint, so at most one of the two merge arms emits it.
  auto live = rows_.begin();
  auto chain = mvcc_->chains.begin();
  while (live != rows_.end() || chain != mvcc_->chains.end()) {
    if (chain == mvcc_->chains.end() ||
        (live != rows_.end() && live->first < chain->first)) {
      if (LiveVisibleLocked(live->first, lsn)) {
        out->emplace_back(live->first, live->second);
      }
      ++live;
    } else if (live == rows_.end() || chain->first < live->first) {
      if (const Row* row = VisibleChainRow(chain->second, lsn)) {
        out->emplace_back(chain->first, *row);
      }
      ++chain;
    } else {
      if (LiveVisibleLocked(live->first, lsn)) {
        out->emplace_back(live->first, live->second);
      } else if (const Row* row = VisibleChainRow(chain->second, lsn)) {
        out->emplace_back(chain->first, *row);
      }
      ++live;
      ++chain;
    }
  }
}

void Table::SnapshotProbeEq(
    uint64_t lsn, size_t column, const Value& value,
    std::vector<std::pair<TupleHandle, Row>>* out) const {
  if (mvcc_ == nullptr) {
    SnapshotScan(lsn, out);
    return;
  }
  std::shared_lock<std::shared_mutex> lock(mvcc_->mu);
  const ColumnIndex* index = GetIndex(column);
  if (index == nullptr) {
    SnapshotScanLocked(lsn, out);
    return;
  }
  std::vector<std::pair<TupleHandle, Row>> matches;
  // Live rows come straight from the index (it tracks the heap, i.e. the
  // write-side head), filtered down to what the snapshot may see.
  if (const std::set<TupleHandle>* bucket = index->Lookup(value)) {
    for (TupleHandle handle : *bucket) {
      if (!LiveVisibleLocked(handle, lsn)) continue;
      auto it = rows_.find(handle);
      if (it != rows_.end()) matches.emplace_back(handle, it->second);
    }
  }
  // Superseded versions are not indexed; scan the chains with the same
  // key equivalence the index uses. A handle never matches both arms:
  // its version intervals are disjoint.
  const Value key = ColumnIndex::NormalizeKey(value);
  for (const auto& [handle, chain] : mvcc_->chains) {
    const Row* row = VisibleChainRow(chain, lsn);
    if (row == nullptr) continue;
    const Value& stored = row->at(column);
    if (stored.is_null()) continue;  // SQL equality with NULL never holds
    const Value normalized = ColumnIndex::NormalizeKey(stored);
    if (normalized.StructurallyLess(key) || key.StructurallyLess(normalized)) {
      continue;
    }
    matches.emplace_back(handle, *row);
  }
  std::sort(matches.begin(), matches.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out->insert(out->end(), std::make_move_iterator(matches.begin()),
              std::make_move_iterator(matches.end()));
}

size_t Table::PruneVersions(uint64_t floor) {
  if (mvcc_ == nullptr) return 0;
  std::unique_lock<std::shared_mutex> lock(mvcc_->mu);
  size_t pruned = 0;
  for (auto it = mvcc_->chains.begin(); it != mvcc_->chains.end();) {
    std::vector<RowVersion>& chain = it->second;
    auto dead_end = std::find_if(
        chain.begin(), chain.end(), [floor](const RowVersion& v) {
          // kPendingLsn compares greater than any floor: in-flight
          // versions always survive.
          return v.end_lsn > floor;
        });
    pruned += static_cast<size_t>(dead_end - chain.begin());
    chain.erase(chain.begin(), dead_end);
    it = chain.empty() ? mvcc_->chains.erase(it) : std::next(it);
  }
  // A live_begin at or below the floor is indistinguishable from the
  // absent-means-0 default for every surviving snapshot.
  for (auto it = mvcc_->live_begin.begin(); it != mvcc_->live_begin.end();) {
    it = (it->second != kPendingLsn && it->second <= floor)
             ? mvcc_->live_begin.erase(it)
             : std::next(it);
  }
  return pruned;
}

size_t Table::PruneChainPinned(TupleHandle handle,
                               const std::vector<uint64_t>& pins,
                               uint64_t floor) {
  if (mvcc_ == nullptr) return 0;
  std::unique_lock<std::shared_mutex> lock(mvcc_->mu);
  size_t pruned = 0;
  auto chain_it = mvcc_->chains.find(handle);
  if (chain_it != mvcc_->chains.end()) {
    std::vector<RowVersion>& chain = chain_it->second;
    auto keep = [&](const RowVersion& v) {
      // kPendingLsn end compares greater than any floor.
      if (v.end_lsn > floor) return true;
      // Some live pin inside [begin, end)?
      auto pin = std::lower_bound(pins.begin(), pins.end(), v.begin_lsn);
      return pin != pins.end() && *pin < v.end_lsn;
    };
    auto dead = std::stable_partition(chain.begin(), chain.end(), keep);
    pruned = static_cast<size_t>(chain.end() - dead);
    chain.erase(dead, chain.end());
    if (chain.empty()) mvcc_->chains.erase(chain_it);
  }
  // The live_begin entry can retire once every pin — present (pins) or
  // future (LSN >= floor) — sees the live row anyway, making the entry
  // indistinguishable from the absent-means-0 default.
  auto begin_it = mvcc_->live_begin.find(handle);
  if (begin_it != mvcc_->live_begin.end() &&
      begin_it->second != kPendingLsn && begin_it->second <= floor &&
      (pins.empty() || pins.front() >= begin_it->second)) {
    mvcc_->live_begin.erase(begin_it);
  }
  return pruned;
}

bool Table::VerifyNoPending(TupleHandle handle) const {
  if (mvcc_ == nullptr) return true;
  std::shared_lock<std::shared_mutex> lock(mvcc_->mu);
  auto begin_it = mvcc_->live_begin.find(handle);
  if (begin_it != mvcc_->live_begin.end() &&
      begin_it->second == kPendingLsn) {
    return false;
  }
  auto chain_it = mvcc_->chains.find(handle);
  if (chain_it == mvcc_->chains.end()) return true;
  for (const RowVersion& v : chain_it->second) {
    if (v.begin_lsn == kPendingLsn || v.end_lsn == kPendingLsn) return false;
  }
  return true;
}

size_t Table::version_count() const {
  if (mvcc_ == nullptr) return 0;
  std::shared_lock<std::shared_mutex> lock(mvcc_->mu);
  size_t n = 0;
  for (const auto& [handle, chain] : mvcc_->chains) n += chain.size();
  return n;
}

Status Table::CreateIndex(size_t column) {
  if (column >= schema_.num_columns()) {
    return Status::InvalidArgument("no column #" + std::to_string(column) +
                                   " in table " + schema_.name());
  }
  auto lock = MaybeLock(mvcc_ == nullptr ? nullptr : &mvcc_->mu);
  if (GetIndex(column) != nullptr) return Status::OK();  // idempotent
  indexes_.emplace_back(column);
  ColumnIndex& index = indexes_.back();
  for (const auto& [handle, row] : rows_) {
    index.Insert(row.at(column), handle);
  }
  return Status::OK();
}

const ColumnIndex* Table::GetIndex(size_t column) const {
  for (const ColumnIndex& index : indexes_) {
    if (index.column() == column) return &index;
  }
  return nullptr;
}

Result<Row> Table::GetCopy(TupleHandle handle) const {
  auto lock = mvcc_ == nullptr
                  ? std::shared_lock<std::shared_mutex>()
                  : std::shared_lock<std::shared_mutex>(mvcc_->mu);
  auto it = rows_.find(handle);
  if (it == rows_.end()) {
    return Status::ExecutionError("no tuple with handle " +
                                  std::to_string(handle) + " in table " +
                                  schema_.name());
  }
  return it->second;
}

Status Table::GetCopyBatch(const std::vector<TupleHandle>& handles,
                           std::vector<Row>* out) const {
  auto lock = mvcc_ == nullptr
                  ? std::shared_lock<std::shared_mutex>()
                  : std::shared_lock<std::shared_mutex>(mvcc_->mu);
  out->reserve(out->size() + handles.size());
  for (TupleHandle handle : handles) {
    auto it = rows_.find(handle);
    if (it == rows_.end()) {
      return Status::ExecutionError("no tuple with handle " +
                                    std::to_string(handle) + " in table " +
                                    schema_.name());
    }
    out->push_back(it->second);
  }
  return Status::OK();
}

void Table::CopyRows(std::vector<std::pair<TupleHandle, Row>>* out) const {
  auto lock = mvcc_ == nullptr
                  ? std::shared_lock<std::shared_mutex>()
                  : std::shared_lock<std::shared_mutex>(mvcc_->mu);
  for (const auto& [handle, row] : rows_) out->emplace_back(handle, row);
}

void Table::CopyRowsColumnar(std::vector<std::pair<TupleHandle, Row>>* out,
                             const std::vector<size_t>& hot_cols,
                             std::vector<exec::ColumnVector>* cols,
                             std::vector<char>* built) const {
  auto lock = mvcc_ == nullptr
                  ? std::shared_lock<std::shared_mutex>()
                  : std::shared_lock<std::shared_mutex>(mvcc_->mu);
  out->reserve(rows_.size());
  for (const auto& [handle, row] : rows_) out->emplace_back(handle, row);
  // Decompose after the copy so string entries borrow from the final,
  // stable row storage in `out`.
  cols->resize(hot_cols.size());
  built->assign(hot_cols.size(), 0);
  for (size_t k = 0; k < hot_cols.size(); ++k) {
    const size_t col = hot_cols[k];
    if (col >= schema_.num_columns()) continue;
    (*built)[k] = exec::BuildColumnFrom(
        out->size(),
        [out](size_t i) -> const Row& { return (*out)[i].second; }, col,
        schema_.columns()[col].type, &(*cols)[k]);
  }
}

bool Table::IndexLookupCopy(size_t column, const Value& value,
                            std::vector<TupleHandle>* out) const {
  auto lock = mvcc_ == nullptr
                  ? std::shared_lock<std::shared_mutex>()
                  : std::shared_lock<std::shared_mutex>(mvcc_->mu);
  const ColumnIndex* index = GetIndex(column);
  if (index == nullptr) return false;
  if (const std::set<TupleHandle>* bucket = index->Lookup(value)) {
    out->insert(out->end(), bucket->begin(), bucket->end());
  }
  return true;
}

Result<const Row*> Table::Get(TupleHandle handle) const {
  auto it = rows_.find(handle);
  if (it == rows_.end()) {
    return Status::ExecutionError("no tuple with handle " +
                                  std::to_string(handle) + " in table " +
                                  schema_.name());
  }
  return &it->second;
}

}  // namespace sopr
