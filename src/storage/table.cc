#include "storage/table.h"

#include "common/failpoint.h"

namespace sopr {

Status Table::Insert(TupleHandle handle, Row row) {
  if (handle == kInvalidHandle) {
    return Status::Internal("attempt to insert with invalid handle");
  }
  auto [it, inserted] = rows_.emplace(handle, std::move(row));
  if (!inserted) {
    return Status::Internal("duplicate tuple handle " +
                            std::to_string(handle) + " in table " +
                            schema_.name());
  }
  // A failure between the heap mutation and index maintenance must not
  // leave the two disagreeing: revert the heap insert before returning.
  Status fault = SOPR_FAILPOINT("table.insert.mid");
  if (!fault.ok()) {
    rows_.erase(it);
    return fault;
  }
  for (ColumnIndex& index : indexes_) {
    index.Insert(it->second.at(index.column()), handle);
  }
  return Status::OK();
}

Status Table::Erase(TupleHandle handle) {
  auto it = rows_.find(handle);
  if (it == rows_.end()) {
    return Status::Internal("no tuple with handle " + std::to_string(handle) +
                            " in table " + schema_.name());
  }
  for (ColumnIndex& index : indexes_) {
    index.Erase(it->second.at(index.column()), handle);
  }
  // Index entries are already gone; on an injected failure re-add them so
  // the heap (which still holds the row) and the indexes agree.
  Status fault = SOPR_FAILPOINT("table.erase.mid");
  if (!fault.ok()) {
    for (ColumnIndex& index : indexes_) {
      index.Insert(it->second.at(index.column()), handle);
    }
    return fault;
  }
  rows_.erase(it);
  return Status::OK();
}

Status Table::Replace(TupleHandle handle, Row row) {
  auto it = rows_.find(handle);
  if (it == rows_.end()) {
    return Status::Internal("no tuple with handle " + std::to_string(handle) +
                            " in table " + schema_.name());
  }
  for (ColumnIndex& index : indexes_) {
    index.Erase(it->second.at(index.column()), handle);
  }
  Status fault = SOPR_FAILPOINT("table.replace.mid");
  if (!fault.ok()) {
    for (ColumnIndex& index : indexes_) {
      index.Insert(it->second.at(index.column()), handle);
    }
    return fault;
  }
  it->second = std::move(row);
  for (ColumnIndex& index : indexes_) {
    index.Insert(it->second.at(index.column()), handle);
  }
  return Status::OK();
}

Status Table::CreateIndex(size_t column) {
  if (column >= schema_.num_columns()) {
    return Status::InvalidArgument("no column #" + std::to_string(column) +
                                   " in table " + schema_.name());
  }
  if (GetIndex(column) != nullptr) return Status::OK();  // idempotent
  indexes_.emplace_back(column);
  ColumnIndex& index = indexes_.back();
  for (const auto& [handle, row] : rows_) {
    index.Insert(row.at(column), handle);
  }
  return Status::OK();
}

const ColumnIndex* Table::GetIndex(size_t column) const {
  for (const ColumnIndex& index : indexes_) {
    if (index.column() == column) return &index;
  }
  return nullptr;
}

Result<const Row*> Table::Get(TupleHandle handle) const {
  auto it = rows_.find(handle);
  if (it == rows_.end()) {
    return Status::ExecutionError("no tuple with handle " +
                                  std::to_string(handle) + " in table " +
                                  schema_.name());
  }
  return &it->second;
}

}  // namespace sopr
