#ifndef SOPR_STORAGE_INDEX_H_
#define SOPR_STORAGE_INDEX_H_

#include <map>
#include <set>

#include "storage/tuple_handle.h"
#include "types/value.h"

namespace sopr {

/// An equality index over one column of a table: normalized key value →
/// handles of rows holding it. Numeric keys are normalized to double so
/// `int 2` and `double 2.0` land in the same bucket (SQL equality).
/// NULLs are not indexed — SQL equality with NULL never holds.
class ColumnIndex {
 public:
  explicit ColumnIndex(size_t column) : column_(column) {}

  size_t column() const { return column_; }

  /// Normalization applied to keys on both insert and lookup.
  static Value NormalizeKey(const Value& v) {
    return v.IsNumeric() ? Value::Double(v.NumericAsDouble()) : v;
  }

  void Insert(const Value& key, TupleHandle handle);
  void Erase(const Value& key, TupleHandle handle);

  /// Handles whose (normalized) column value equals `key`, or nullptr.
  const std::set<TupleHandle>* Lookup(const Value& key) const;

  size_t num_keys() const { return buckets_.size(); }

  /// Total (key, handle) entries across all buckets.
  size_t num_entries() const;

  /// Visits every (key, handle) entry in key order (for checksums).
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (const auto& [key, handles] : buckets_) {
      for (TupleHandle handle : handles) fn(key, handle);
    }
  }

 private:
  struct KeyLess {
    bool operator()(const Value& a, const Value& b) const {
      return a.StructurallyLess(b);
    }
  };

  size_t column_;
  std::map<Value, std::set<TupleHandle>, KeyLess> buckets_;
};

}  // namespace sopr

#endif  // SOPR_STORAGE_INDEX_H_
