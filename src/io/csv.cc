#include "io/csv.h"

#include <cstdlib>

#include "common/string_util.h"

namespace sopr {

Result<std::vector<std::string>> SplitCsvLine(const std::string& line,
                                              char delimiter,
                                              std::vector<bool>* was_quoted) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted_field = false;
  bool in_quotes = false;
  size_t i = 0;
  while (i <= line.size()) {
    if (i == line.size()) {
      if (in_quotes) {
        return Status::ParseError("unterminated quoted CSV field");
      }
      fields.push_back(std::move(current));
      if (was_quoted != nullptr) was_quoted->push_back(quoted_field);
      break;
    }
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current += c;
      ++i;
      continue;
    }
    if (c == '"' && current.empty()) {
      in_quotes = true;
      quoted_field = true;
      ++i;
      continue;
    }
    if (c == delimiter) {
      fields.push_back(std::move(current));
      if (was_quoted != nullptr) was_quoted->push_back(quoted_field);
      current.clear();
      quoted_field = false;
      ++i;
      continue;
    }
    current += c;
    ++i;
  }
  return fields;
}

namespace {

/// Coerces one CSV field to a column type.
Result<Value> FieldToValue(const std::string& field, bool quoted,
                           ValueType type, bool empty_is_null) {
  if (field.empty() && !quoted && empty_is_null) return Value::Null();
  switch (type) {
    case ValueType::kInt: {
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == field.c_str() || *end != '\0') {
        return Status::TypeError("not an int: '" + field + "'");
      }
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') {
        return Status::TypeError("not a double: '" + field + "'");
      }
      return Value::Double(v);
    }
    case ValueType::kBool: {
      std::string lower = ToLower(field);
      if (lower == "true" || lower == "1") return Value::Bool(true);
      if (lower == "false" || lower == "0") return Value::Bool(false);
      return Status::TypeError("not a bool: '" + field + "'");
    }
    case ValueType::kString:
    case ValueType::kNull:
      return Value::String(field);
  }
  return Status::TypeError("unsupported column type");
}

/// Renders one value as a CSV field.
std::string ValueToField(const Value& v, char delimiter) {
  if (v.is_null()) return "";
  std::string raw;
  switch (v.type()) {
    case ValueType::kString:
      raw = v.AsString();
      break;
    case ValueType::kBool:
      return v.AsBool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(v.AsInt());
    case ValueType::kDouble: {
      std::string s = v.ToString();  // renders e.g. 2.0
      return s;
    }
    default:
      raw = v.ToString();
      break;
  }
  bool needs_quotes = raw.empty() || raw.find(delimiter) != std::string::npos ||
                      raw.find('"') != std::string::npos ||
                      raw.find('\n') != std::string::npos;
  if (!needs_quotes) return raw;
  std::string out = "\"";
  for (char c : raw) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

Result<size_t> ImportCsv(Engine* engine, const std::string& table,
                         const std::string& csv, const CsvOptions& options) {
  SOPR_ASSIGN_OR_RETURN(const Table* t, engine->db().GetTable(table));
  const TableSchema& schema = t->schema();

  // Split into physical lines, respecting quoted newlines.
  std::vector<std::string> lines;
  {
    std::string current;
    bool in_quotes = false;
    for (char c : csv) {
      if (c == '"') in_quotes = !in_quotes;
      if (c == '\n' && !in_quotes) {
        lines.push_back(std::move(current));
        current.clear();
        continue;
      }
      if (c != '\r' || in_quotes) current += c;
    }
    if (!current.empty()) lines.push_back(std::move(current));
  }

  size_t imported = 0;
  size_t line_no = 0;
  std::vector<Row> batch;

  auto flush = [&]() -> Status {
    if (batch.empty()) return Status::OK();
    // One multi-row insert = one operation block = one transaction, so
    // rules see the whole batch as a single set-oriented transition.
    InsertStmt stmt;
    stmt.table = table;
    for (Row& row : batch) {
      std::vector<ExprPtr> exprs;
      exprs.reserve(row.size());
      for (size_t c = 0; c < row.size(); ++c) {
        exprs.push_back(
            std::make_unique<LiteralExpr>(std::move(row.at(c))));
      }
      stmt.rows.push_back(std::move(exprs));
    }
    std::vector<const Stmt*> ops{&stmt};
    SOPR_ASSIGN_OR_RETURN(ExecutionTrace trace,
                          engine->rules().ExecuteBlock(ops));
    if (trace.rolled_back) {
      return Status::RolledBack("CSV batch vetoed by rule " +
                                trace.rollback_rule + " after " +
                                std::to_string(imported) + " committed rows");
    }
    imported += batch.size();
    batch.clear();
    return Status::OK();
  };

  bool first = true;
  for (const std::string& line : lines) {
    ++line_no;
    if (line.empty()) continue;
    if (first && options.has_header) {
      first = false;
      continue;
    }
    first = false;
    std::vector<bool> quoted;
    auto fields = SplitCsvLine(line, options.delimiter, &quoted);
    if (!fields.ok()) {
      return Status(fields.status().code(),
                    "line " + std::to_string(line_no) + ": " +
                        fields.status().message());
    }
    if (fields.value().size() != schema.num_columns()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": expected " +
          std::to_string(schema.num_columns()) + " fields, got " +
          std::to_string(fields.value().size()));
    }
    Row row;
    for (size_t c = 0; c < fields.value().size(); ++c) {
      auto v = FieldToValue(fields.value()[c], quoted[c],
                            schema.columns()[c].type, options.empty_is_null);
      if (!v.ok()) {
        return Status(v.status().code(), "line " + std::to_string(line_no) +
                                             ", column " +
                                             schema.columns()[c].name + ": " +
                                             v.status().message());
      }
      row.Append(std::move(v).value());
    }
    batch.push_back(std::move(row));
    if (batch.size() >= options.batch_rows) {
      SOPR_RETURN_NOT_OK(flush());
    }
  }
  SOPR_RETURN_NOT_OK(flush());
  return imported;
}

Result<std::string> ExportCsv(Engine* engine, const std::string& select_sql,
                              const CsvOptions& options) {
  SOPR_ASSIGN_OR_RETURN(QueryResult result, engine->Query(select_sql));
  std::string out;
  if (options.has_header) {
    for (size_t c = 0; c < result.columns.size(); ++c) {
      if (c > 0) out += options.delimiter;
      out += result.columns[c];
    }
    out += "\n";
  }
  for (const Row& row : result.rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += options.delimiter;
      out += ValueToField(row.at(c), options.delimiter);
    }
    out += "\n";
  }
  return out;
}

}  // namespace sopr
