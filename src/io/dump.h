#ifndef SOPR_IO_DUMP_H_
#define SOPR_IO_DUMP_H_

#include <string>

#include "common/status.h"
#include "engine/engine.h"

namespace sopr {

/// Serializes the whole database — table schemas, indexes, data, rules,
/// and priorities — as a SQL script that `RestoreDatabase` (or any
/// sequence of Engine::Execute calls) replays into an empty engine.
/// Data is emitted as multi-row inserts in handle order. Rules are
/// emitted last and deactivated-rule state is preserved via
/// `deactivate rule`. Note: tuple handles themselves are NOT preserved
/// (they are an engine-internal identity), and runtime-only settings
/// (procedures, detached flags, reset policies) are not serializable.
Result<std::string> DumpDatabase(Engine* engine);

/// The schema section of a dump alone: `create table` + `create index`
/// statements in catalog order. Reused by the WAL checkpoint writer,
/// whose snapshots carry the schema logically (as SQL) but the data
/// physically (as redo records, preserving tuple handles).
Result<std::string> DumpSchemaSql(Engine* engine);

/// The rule-catalog section of a dump alone: `create rule` definitions,
/// `deactivate rule` for disabled rules, and priority statements.
Result<std::string> DumpRulesSql(Engine* engine);

/// Replays a dump into `engine`. Rules are created after the data is
/// loaded, so loading does not trigger them (matching the state at dump
/// time). The engine should be empty; name collisions fail cleanly.
Status RestoreDatabase(Engine* engine, const std::string& dump);

}  // namespace sopr

#endif  // SOPR_IO_DUMP_H_
