#ifndef SOPR_IO_CSV_H_
#define SOPR_IO_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"

namespace sopr {

struct CsvOptions {
  char delimiter = ',';
  /// Skip the first line (column headers).
  bool has_header = true;
  /// Unquoted empty fields become NULL.
  bool empty_is_null = true;
  /// Rows per transaction during import; rules fire per batch (one
  /// set-oriented transition per batch, demonstrating the paper's model
  /// on bulk loads).
  size_t batch_rows = 1024;
};

/// Splits one CSV line into fields. Supports RFC-4180-style quoting:
/// fields may be wrapped in double quotes; "" inside quotes is a literal
/// quote; delimiters and newlines inside quotes are data. `was_quoted`
/// (optional, parallel to the result) reports per-field quoting, so
/// `""` (quoted empty) can be distinguished from an empty field.
Result<std::vector<std::string>> SplitCsvLine(
    const std::string& line, char delimiter,
    std::vector<bool>* was_quoted = nullptr);

/// Imports CSV text into an existing table. Fields are coerced to the
/// table's column types (int/double parsed, bool accepts true/false/0/1,
/// strings taken verbatim). Each batch of rows is one transaction /
/// operation block, so production rules see set-oriented transitions.
/// Returns the number of rows inserted. Any error (parse, arity, type,
/// rule rollback) aborts the current batch and stops the import,
/// reporting rows successfully committed so far in the error message.
Result<size_t> ImportCsv(Engine* engine, const std::string& table,
                         const std::string& csv, const CsvOptions& options = {});

/// Exports a table (or any query result) as CSV text with a header line.
/// NULL becomes an empty field; strings are quoted when necessary.
Result<std::string> ExportCsv(Engine* engine, const std::string& select_sql,
                              const CsvOptions& options = {});

}  // namespace sopr

#endif  // SOPR_IO_CSV_H_
