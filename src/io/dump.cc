#include "io/dump.h"

#include "common/string_util.h"
#include "sql/parser.h"

namespace sopr {

Result<std::string> DumpSchemaSql(Engine* engine) {
  std::string out;
  for (const std::string& name : engine->db().catalog().TableNames()) {
    SOPR_ASSIGN_OR_RETURN(const TableSchema* schema,
                          engine->db().catalog().GetTable(name));
    out += "create table " + schema->name() + " (";
    for (size_t i = 0; i < schema->num_columns(); ++i) {
      if (i > 0) out += ", ";
      out += schema->columns()[i].name;
      out += " ";
      out += ValueTypeName(schema->columns()[i].type);
    }
    out += ");\n";

    SOPR_ASSIGN_OR_RETURN(const Table* table, engine->db().GetTable(name));
    for (size_t c = 0; c < schema->num_columns(); ++c) {
      if (table->GetIndex(c) != nullptr) {
        out += "create index on " + schema->name() + " (" +
               schema->columns()[c].name + ");\n";
      }
    }
  }
  return out;
}

Result<std::string> DumpRulesSql(Engine* engine) {
  std::string out;
  for (const std::string& name : engine->rules().RuleNames()) {
    SOPR_ASSIGN_OR_RETURN(const Rule* rule, engine->rules().GetRule(name));
    out += rule->def().ToString() + ";\n";
  }
  for (const std::string& name : engine->rules().RuleNames()) {
    auto enabled = engine->rules().IsRuleEnabled(name);
    if (enabled.ok() && !enabled.value()) {
      out += "deactivate rule " + name + ";\n";
    }
  }
  std::vector<std::string> names = engine->rules().RuleNames();
  for (const std::string& higher : names) {
    for (const std::string& lower : names) {
      // Emit only DIRECT pairs? The partial order only exposes Higher();
      // emitting the transitive closure is semantically equivalent (it
      // induces the same partial order) and keeps the API small.
      if (engine->rules().priorities().Higher(higher, lower)) {
        out += "create rule priority " + higher + " before " + lower + ";\n";
      }
    }
  }
  return out;
}

Result<std::string> DumpDatabase(Engine* engine) {
  std::string out = "-- sopr dump\n";

  // 1. Schemas and indexes.
  SOPR_ASSIGN_OR_RETURN(std::string schema_sql, DumpSchemaSql(engine));
  out += schema_sql;

  // 2. Data, in handle order, chunked to keep statements manageable.
  constexpr size_t kRowsPerInsert = 256;
  for (const std::string& name : engine->db().catalog().TableNames()) {
    SOPR_ASSIGN_OR_RETURN(const Table* table, engine->db().GetTable(name));
    size_t emitted = 0;
    for (const auto& [handle, row] : table->rows()) {
      (void)handle;
      if (emitted % kRowsPerInsert == 0) {
        if (emitted > 0) out += ";\n";
        out += "insert into " + name + " values ";
      } else {
        out += ", ";
      }
      out += "(";
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) out += ", ";
        out += row.at(c).ToString();
      }
      out += ")";
      ++emitted;
    }
    if (emitted > 0) out += ";\n";
  }

  // 3. Rules, priorities, and activation state.
  SOPR_ASSIGN_OR_RETURN(std::string rules_sql, DumpRulesSql(engine));
  out += rules_sql;
  return out;
}

Status RestoreDatabase(Engine* engine, const std::string& dump) {
  // The dump is a sequence of `;`-terminated statements. Execute them one
  // at a time (the engine disallows mixing DDL and DML in one script, and
  // the dump interleaves them).
  SOPR_ASSIGN_OR_RETURN(std::vector<StmtPtr> stmts,
                        Parser::ParseScript(dump));
  for (StmtPtr& stmt : stmts) {
    SOPR_RETURN_NOT_OK(engine->Execute(stmt->ToString()));
  }
  return Status::OK();
}

}  // namespace sopr
