#ifndef SOPR_TYPES_VALUE_H_
#define SOPR_TYPES_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

#include "common/status.h"

namespace sopr {

/// Column / value types supported by the engine. The paper's examples use
/// strings and numbers; we add booleans for predicate plumbing.
enum class ValueType {
  kNull = 0,  // the type of the NULL literal before coercion
  kBool,
  kInt,     // 64-bit signed
  kDouble,  // IEEE double
  kString,
};

const char* ValueTypeName(ValueType type);

/// SQL three-valued logic truth value.
enum class TriBool { kFalse = 0, kTrue = 1, kUnknown = 2 };

TriBool TriNot(TriBool v);
TriBool TriAnd(TriBool a, TriBool b);
TriBool TriOr(TriBool a, TriBool b);

/// A single SQL value: NULL or a typed scalar. Values are immutable once
/// constructed and cheap to copy for numerics; strings are owned.
class Value {
 public:
  /// NULL of indeterminate type.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Data(v)); }
  static Value Int(int64_t v) { return Value(Data(v)); }
  static Value Double(double v) { return Value(Data(v)); }
  static Value String(std::string v) { return Value(Data(std::move(v))); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  ValueType type() const;

  /// Accessors. Caller must check type first; wrong-type access aborts in
  /// debug builds via std::get.
  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric value widened to double (valid for kInt and kDouble).
  double NumericAsDouble() const;
  bool IsNumeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }

  /// SQL equality: NULL compared to anything is kUnknown. Numeric values
  /// compare across int/double; other cross-type comparisons are an error
  /// reported as kUnknown (the engine type-checks earlier).
  TriBool SqlEquals(const Value& other) const;
  /// SQL ordering: returns kUnknown if either side is NULL.
  TriBool SqlLess(const Value& other) const;

  /// Exact structural equality used by containers and tests: NULL == NULL,
  /// no cross-numeric coercion.
  bool StructurallyEquals(const Value& other) const;

  /// Total order for sorting result sets deterministically: NULLs first,
  /// then by type, then by value (numerics compared as doubles).
  bool StructurallyLess(const Value& other) const;

  /// SQL literal rendering: NULL, true, 42, 3.5, 'text'.
  std::string ToString() const;

  /// Arithmetic with SQL NULL propagation. Division by zero is an error.
  static Result<Value> Add(const Value& a, const Value& b);
  static Result<Value> Subtract(const Value& a, const Value& b);
  static Result<Value> Multiply(const Value& a, const Value& b);
  static Result<Value> Divide(const Value& a, const Value& b);
  static Result<Value> Negate(const Value& a);

 private:
  using Data =
      std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Data data) : data_(std::move(data)) {}

  Data data_;
};

inline std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

/// gtest-friendly operator: structural equality.
inline bool operator==(const Value& a, const Value& b) {
  return a.StructurallyEquals(b);
}
inline bool operator!=(const Value& a, const Value& b) { return !(a == b); }

}  // namespace sopr

#endif  // SOPR_TYPES_VALUE_H_
