#include "types/value.h"

#include <cmath>
#include <cstdint>
#include <sstream>

namespace sopr {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

TriBool TriNot(TriBool v) {
  switch (v) {
    case TriBool::kTrue:
      return TriBool::kFalse;
    case TriBool::kFalse:
      return TriBool::kTrue;
    case TriBool::kUnknown:
      return TriBool::kUnknown;
  }
  return TriBool::kUnknown;
}

TriBool TriAnd(TriBool a, TriBool b) {
  if (a == TriBool::kFalse || b == TriBool::kFalse) return TriBool::kFalse;
  if (a == TriBool::kTrue && b == TriBool::kTrue) return TriBool::kTrue;
  return TriBool::kUnknown;
}

TriBool TriOr(TriBool a, TriBool b) {
  if (a == TriBool::kTrue || b == TriBool::kTrue) return TriBool::kTrue;
  if (a == TriBool::kFalse && b == TriBool::kFalse) return TriBool::kFalse;
  return TriBool::kUnknown;
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kBool;
    case 2:
      return ValueType::kInt;
    case 3:
      return ValueType::kDouble;
    case 4:
      return ValueType::kString;
  }
  return ValueType::kNull;
}

double Value::NumericAsDouble() const {
  if (type() == ValueType::kInt) return static_cast<double>(AsInt());
  return AsDouble();
}

TriBool Value::SqlEquals(const Value& other) const {
  if (is_null() || other.is_null()) return TriBool::kUnknown;
  if (IsNumeric() && other.IsNumeric()) {
    if (type() == ValueType::kInt && other.type() == ValueType::kInt) {
      return AsInt() == other.AsInt() ? TriBool::kTrue : TriBool::kFalse;
    }
    return NumericAsDouble() == other.NumericAsDouble() ? TriBool::kTrue
                                                        : TriBool::kFalse;
  }
  if (type() != other.type()) return TriBool::kUnknown;
  bool eq = false;
  switch (type()) {
    case ValueType::kBool:
      eq = AsBool() == other.AsBool();
      break;
    case ValueType::kString:
      eq = AsString() == other.AsString();
      break;
    default:
      return TriBool::kUnknown;
  }
  return eq ? TriBool::kTrue : TriBool::kFalse;
}

TriBool Value::SqlLess(const Value& other) const {
  if (is_null() || other.is_null()) return TriBool::kUnknown;
  if (IsNumeric() && other.IsNumeric()) {
    if (type() == ValueType::kInt && other.type() == ValueType::kInt) {
      return AsInt() < other.AsInt() ? TriBool::kTrue : TriBool::kFalse;
    }
    return NumericAsDouble() < other.NumericAsDouble() ? TriBool::kTrue
                                                       : TriBool::kFalse;
  }
  if (type() == ValueType::kString && other.type() == ValueType::kString) {
    return AsString() < other.AsString() ? TriBool::kTrue : TriBool::kFalse;
  }
  return TriBool::kUnknown;
}

bool Value::StructurallyEquals(const Value& other) const {
  return data_ == other.data_;
}

bool Value::StructurallyLess(const Value& other) const {
  ValueType ta = type();
  ValueType tb = other.type();
  // Numerics of different widths compare by value so that 2 == 2.0 sorts
  // stably next to each other; ties broken by type tag.
  if ((ta == ValueType::kInt || ta == ValueType::kDouble) &&
      (tb == ValueType::kInt || tb == ValueType::kDouble)) {
    double da = NumericAsDouble();
    double db = other.NumericAsDouble();
    if (da != db) return da < db;
    return static_cast<int>(ta) < static_cast<int>(tb);
  }
  if (ta != tb) return static_cast<int>(ta) < static_cast<int>(tb);
  switch (ta) {
    case ValueType::kNull:
      return false;
    case ValueType::kBool:
      return AsBool() < other.AsBool();
    case ValueType::kString:
      return AsString() < other.AsString();
    default:
      return false;
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::ostringstream os;
      double d = AsDouble();
      if (d == static_cast<int64_t>(d) && std::abs(d) < 1e15) {
        os << static_cast<int64_t>(d) << ".0";
      } else {
        os << d;
      }
      return os.str();
    }
    case ValueType::kString: {
      // SQL-literal rendering: '' escapes an embedded quote, so ToString
      // output re-parses (dumps, AST round-trips).
      std::string out = "'";
      for (char c : AsString()) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
  }
  return "?";
}

namespace {

Status NumericOperandError(const char* op, const Value& a, const Value& b) {
  return Status::TypeError(std::string("operator ") + op +
                           " requires numeric operands, got " +
                           ValueTypeName(a.type()) + " and " +
                           ValueTypeName(b.type()));
}

}  // namespace

Result<Value> Value::Add(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.IsNumeric() || !b.IsNumeric()) {
    // String concatenation via `+` is a convenience extension.
    if (a.type() == ValueType::kString && b.type() == ValueType::kString) {
      return Value::String(a.AsString() + b.AsString());
    }
    return NumericOperandError("+", a, b);
  }
  if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
    int64_t sum;
    // Overflow promotes to double rather than invoking UB.
    if (!__builtin_add_overflow(a.AsInt(), b.AsInt(), &sum)) {
      return Value::Int(sum);
    }
  }
  return Value::Double(a.NumericAsDouble() + b.NumericAsDouble());
}

Result<Value> Value::Subtract(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.IsNumeric() || !b.IsNumeric()) return NumericOperandError("-", a, b);
  if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
    int64_t difference;
    if (!__builtin_sub_overflow(a.AsInt(), b.AsInt(), &difference)) {
      return Value::Int(difference);
    }
  }
  return Value::Double(a.NumericAsDouble() - b.NumericAsDouble());
}

Result<Value> Value::Multiply(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.IsNumeric() || !b.IsNumeric()) return NumericOperandError("*", a, b);
  if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
    int64_t product;
    if (!__builtin_mul_overflow(a.AsInt(), b.AsInt(), &product)) {
      return Value::Int(product);
    }
  }
  return Value::Double(a.NumericAsDouble() * b.NumericAsDouble());
}

Result<Value> Value::Divide(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.IsNumeric() || !b.IsNumeric()) return NumericOperandError("/", a, b);
  if (b.NumericAsDouble() == 0.0) {
    return Status::ExecutionError("division by zero");
  }
  if (a.type() == ValueType::kInt && b.type() == ValueType::kInt &&
      // INT64_MIN / -1 overflows; let the double path take it.
      !(a.AsInt() == INT64_MIN && b.AsInt() == -1) &&
      a.AsInt() % b.AsInt() == 0) {
    return Value::Int(a.AsInt() / b.AsInt());
  }
  return Value::Double(a.NumericAsDouble() / b.NumericAsDouble());
}

Result<Value> Value::Negate(const Value& a) {
  if (a.is_null()) return Value::Null();
  if (a.type() == ValueType::kInt) {
    if (a.AsInt() == INT64_MIN) return Value::Double(-a.NumericAsDouble());
    return Value::Int(-a.AsInt());
  }
  if (a.type() == ValueType::kDouble) return Value::Double(-a.AsDouble());
  return Status::TypeError(std::string("unary - requires a numeric operand, got ") +
                           ValueTypeName(a.type()));
}

}  // namespace sopr
