#ifndef SOPR_TYPES_ROW_H_
#define SOPR_TYPES_ROW_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "types/value.h"

namespace sopr {

/// A tuple: one Value per column of its table, in schema order.
class Row {
 public:
  Row() = default;
  explicit Row(std::vector<Value> values) : values_(std::move(values)) {}
  Row(std::initializer_list<Value> values) : values_(values) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// "(v1, v2, ...)" rendering for traces and error messages.
  std::string ToString() const;

  bool operator==(const Row& other) const { return values_ == other.values_; }
  bool operator!=(const Row& other) const { return !(*this == other); }

  /// Lexicographic structural order; used to sort result sets
  /// deterministically in tests.
  bool operator<(const Row& other) const;

 private:
  std::vector<Value> values_;
};

std::ostream& operator<<(std::ostream& os, const Row& row);

}  // namespace sopr

#endif  // SOPR_TYPES_ROW_H_
