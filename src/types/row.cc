#include "types/row.h"

namespace sopr {

std::string Row::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

bool Row::operator<(const Row& other) const {
  size_t n = std::min(values_.size(), other.values_.size());
  for (size_t i = 0; i < n; ++i) {
    if (values_[i].StructurallyLess(other.values_[i])) return true;
    if (other.values_[i].StructurallyLess(values_[i])) return false;
  }
  return values_.size() < other.values_.size();
}

std::ostream& operator<<(std::ostream& os, const Row& row) {
  return os << row.ToString();
}

}  // namespace sopr
