// The paper's full running example (§4.5, Example 4.3): two interacting
// rules — the recursive manager cascade of Example 4.1 and the salary
// guard of Example 4.2 — with a priority ordering, executed against the
// Jane/Mary/Jim/Bill/Sam/Sue organization. The program prints the
// consideration/firing trace so you can follow the paper's walkthrough
// line by line.
//
// Build & run:  cmake --build build && ./build/examples/salary_policies

#include <iostream>

#include "engine/engine.h"
#include "query/result_set.h"

namespace {

void Check(const sopr::Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    std::exit(1);
  }
}

void PrintTrace(const sopr::ExecutionTrace& trace) {
  std::cout << "  considered:\n";
  for (const sopr::Consideration& c : trace.considered) {
    std::cout << "    " << c.rule << "  condition "
              << (c.condition_held ? "HELD -> action executed" : "false")
              << "\n";
  }
  std::cout << "  firings:\n";
  for (const sopr::RuleFiring& f : trace.firings) {
    std::cout << "    " << f.rule << "  effect: "
              << f.effect.ToEffect().ToString() << "\n";
  }
  if (trace.rolled_back) {
    std::cout << "  ROLLED BACK by rule " << trace.rollback_rule << "\n";
  }
}

}  // namespace

int main() {
  sopr::Engine engine;

  Check(engine.Execute(
      "create table emp (name string, emp_no int, salary double, "
      "dept_no int)"));
  Check(engine.Execute("create table dept (dept_no int, mgr_no int)"));

  // Example 4.3's management structure: Jane manages Mary and Jim; Mary
  // manages Bill; Jim manages Sam and Sue.
  Check(engine.Execute(
      "insert into dept values (0, -1), (1, 10), (2, 20), (3, 30)"));
  Check(engine.Execute(
      "insert into emp values "
      "('Jane', 10, 90000, 0), ('Mary', 20, 70000, 1), "
      "('Jim', 30, 65000, 1), ('Bill', 40, 25000, 2), "
      "('Sam', 50, 40000, 3), ('Sue', 60, 42000, 3)"));

  // R1 (Example 4.1): recursive manager cascade.
  Check(engine.Execute(
      "create rule mgr_cascade "
      "when deleted from emp "
      "then delete from emp "
      "     where dept_no in (select dept_no from dept "
      "                       where mgr_no in "
      "                         (select emp_no from deleted emp)); "
      "     delete from dept "
      "     where mgr_no in (select emp_no from deleted emp)"));

  // R2 (Example 4.2): salary guard over the set of updated salaries.
  Check(engine.Execute(
      "create rule salary_guard "
      "when updated emp.salary "
      "if (select avg(salary) from new updated emp.salary) > 50K "
      "then delete from emp "
      "     where emp_no in (select emp_no from new updated emp.salary) "
      "       and salary > 80K"));

  // "Let the rules be ordered so that rule R2 has priority over rule R1."
  Check(engine.Execute(
      "create rule priority salary_guard before mgr_cascade"));

  std::cout << "Initial org chart:\n"
            << sopr::FormatResult(
                   engine.Query("select * from emp order by emp_no").value())
            << "\n";

  // The paper's triggering block: delete Jane; raise salaries so the
  // average updated salary exceeds 50K and Mary's exceeds 80K.
  std::cout << "Executing block: delete Jane; Mary -> 85K; Jim -> 60K\n";
  auto trace = engine.ExecuteBlock(
      "delete from emp where name = 'Jane'; "
      "update emp set salary = 85000 where name = 'Mary'; "
      "update emp set salary = 60000 where name = 'Jim'");
  Check(trace.status());
  PrintTrace(trace.value());

  std::cout << "\nFinal emp ("
            << engine.TableSize("emp").ValueOr(0) << " rows) and dept ("
            << engine.TableSize("dept").ValueOr(0) << " rows):\n";
  std::cout << sopr::FormatResult(
      engine.Query("select * from dept order by dept_no").value());

  std::cout << "\nAs the paper traces: salary_guard fires first (deleting "
               "Mary),\nthen mgr_cascade repeatedly fires on the composite "
               "sets of deleted\nmanagers {Jane, Mary} -> {Bill, Jim} -> "
               "{Sam, Sue} until quiescent.\n";
  return 0;
}
