// Command-line client for the network front-end (docs/NETWORK.md).
// Speaks the length-prefixed binary wire protocol through net::Client:
// connect + handshake, execute scripts (single or pipelined), snapshot
// reads against a pinned LSN, KILL a session, and dump server stats.
//
// Build & run:
//   cmake --build build
//   ./build/examples/sopr_client --port 5432 exec "insert into t values (1)"
//
// Commands:
//   exec SQL...           each SQL argument is one autocommit script,
//                         pipelined in one burst (one group-commit cohort)
//   query SQL             snapshot read, printed as a table
//   pinned SQL...         pin a snapshot, run every SQL at that LSN
//   kill SESSION_ID       cancel a session (its statement rolls back)
//   stats                 front-end + group-commit counters
//   ping                  round-trip check

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "net/client.h"
#include "query/result_set.h"

namespace {

void Usage() {
  std::cerr
      << "usage: sopr_client [--host H] [--port P] COMMAND [ARGS...]\n"
         "  exec SQL...     pipelined autocommit scripts\n"
         "  query SQL       snapshot read\n"
         "  pinned SQL...   repeated reads at one pinned snapshot\n"
         "  kill SESSION_ID cancel a session\n"
         "  stats           server counters\n"
         "  ping            round-trip check\n";
  std::exit(2);
}

int Fail(const sopr::Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  sopr::net::Client::Options options;
  options.client_name = "sopr_client-cli";

  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      options.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else {
      args.push_back(std::move(arg));
    }
  }
  if (options.port == 0 || args.empty()) Usage();

  auto client = sopr::net::Client::Connect(options);
  if (!client.ok()) return Fail(client.status());
  sopr::net::Client& c = *client.value();

  const std::string command = args.front();
  args.erase(args.begin());
  int rc = 0;

  if (command == "exec") {
    if (args.empty()) Usage();
    auto outcomes = c.ExecutePipelined(args);
    if (!outcomes.ok()) return Fail(outcomes.status());
    for (size_t i = 0; i < outcomes.value().size(); ++i) {
      const auto& o = outcomes.value()[i];
      if (o.status.ok()) {
        std::cout << "[" << i << "] ok";
        if (o.commit_lsn != 0) std::cout << " commit_lsn=" << o.commit_lsn;
        std::cout << "\n";
      } else {
        std::cout << "[" << i << "] " << o.status << "\n";
        rc = 1;
      }
    }
  } else if (command == "query") {
    if (args.size() != 1) Usage();
    auto result = c.Query(args[0]);
    if (!result.ok()) return Fail(result.status());
    std::cout << sopr::FormatResult(result.value());
  } else if (command == "pinned") {
    if (args.empty()) Usage();
    auto lsn = c.Pin();
    if (!lsn.ok()) return Fail(lsn.status());
    std::cout << "pinned snapshot at lsn " << lsn.value() << "\n";
    for (const std::string& sql : args) {
      auto result = c.QueryAt(sql);
      if (!result.ok()) return Fail(result.status());
      std::cout << sopr::FormatResult(result.value());
    }
    (void)c.Unpin();
  } else if (command == "kill") {
    if (args.size() != 1) Usage();
    sopr::Status killed =
        c.Kill(std::strtoull(args[0].c_str(), nullptr, 10), "sopr_client kill");
    if (!killed.ok()) return Fail(killed);
    std::cout << "killed session " << args[0] << "\n";
  } else if (command == "stats") {
    auto stats = c.Stats();
    if (!stats.ok()) return Fail(stats.status());
    const auto& s = stats.value();
    std::cout << "sessions: " << s.num_sessions << "/" << s.max_sessions
              << "\nconnections: active=" << s.connections_active
              << " accepted=" << s.connections_accepted
              << " protocol_errors=" << s.protocol_errors
              << "\nadmission: admitted=" << s.admitted
              << " shed_queue_full=" << s.shed_queue_full
              << " shed_queue_deadline=" << s.shed_queue_deadline
              << " inflight=" << s.admission_inflight
              << " queued=" << s.admission_queued
              << "\ngroup_commit: cohorts=" << s.group_commit.cohorts
              << " batches=" << s.group_commit.batches
              << " largest_cohort=" << s.group_commit.largest_cohort << "\n";
    for (const auto& sess : s.sessions) {
      std::cout << "  session " << sess.id << ": commits=" << sess.commits
                << " aborts=" << sess.aborts
                << " statements=" << sess.statements
                << " inflight=" << sess.inflight_statements
                << (sess.killed ? " KILLED" : "") << "\n";
    }
  } else if (command == "ping") {
    sopr::Status pong = c.Ping();
    if (!pong.ok()) return Fail(pong);
    std::cout << "pong (session " << c.session_id() << ")\n";
  } else {
    Usage();
  }

  c.Close();
  return rc;
}
