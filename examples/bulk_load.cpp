// Bulk loading with active rules: CSV import runs in set-oriented
// batches (each batch = one operation block = one transition), so
// validation and derived-data rules fire once per batch instead of once
// per row — the paper's set-orientation argument applied to ETL. Also
// shows `create index` speeding up the enrichment rule's lookups and
// CSV export of the derived table.
//
// Build & run:  cmake --build build && ./build/examples/bulk_load

#include <iostream>

#include "engine/engine.h"
#include "io/csv.h"
#include "query/result_set.h"

namespace {

void Check(const sopr::Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  sopr::Engine engine;

  Check(engine.Execute(
      "create table readings (sensor_id int, temp double, ts int)"));
  Check(engine.Execute(
      "create table sensors (sensor_id int, location string)"));
  Check(engine.Execute(
      "create table alerts (location string, temp double, ts int)"));
  Check(engine.Execute("create table stats (batch_size int)"));

  Check(engine.Execute(
      "insert into sensors values (1, 'reactor'), (2, 'turbine'), "
      "(3, 'cooling')"));
  // Index for the enrichment join below.
  Check(engine.Execute("create index on sensors (sensor_id)"));

  // Rule 1: overheated readings (joined against the sensor registry)
  // produce alerts — one set-oriented join per batch.
  Check(engine.Execute(
      "create rule overheat "
      "when inserted into readings "
      "if exists (select * from inserted readings where temp > 90) "
      "then insert into alerts "
      "  (select s.location, r.temp, r.ts "
      "   from inserted readings r, sensors s "
      "   where r.sensor_id = s.sensor_id and r.temp > 90)"));

  // Rule 2: record how many readings each batch contained (visible proof
  // that the loader is set-oriented).
  Check(engine.Execute(
      "create rule batch_stats when inserted into readings "
      "then insert into stats (select count(*) from inserted readings)"));

  // Rule 3: readings from unknown sensors veto the whole batch.
  Check(engine.Execute(
      "create rule unknown_sensor when inserted into readings "
      "if exists (select * from inserted readings "
      "           where sensor_id not in (select sensor_id from sensors)) "
      "then rollback"));

  // Build a CSV feed: 10 readings, two of them hot.
  std::string csv = "sensor_id,temp,ts\n";
  for (int i = 0; i < 10; ++i) {
    int sensor = i % 3 + 1;
    double temp = (i == 4 || i == 9) ? 95.5 : 60.0 + i;
    csv += std::to_string(sensor) + "," + std::to_string(temp) + "," +
           std::to_string(1000 + i) + "\n";
  }

  sopr::CsvOptions options;
  options.batch_rows = 4;  // 10 rows -> batches of 4, 4, 2
  auto imported = sopr::ImportCsv(&engine, "readings", csv, options);
  Check(imported.status());
  std::cout << "Imported " << imported.value() << " readings in batches of "
            << options.batch_rows << ".\n\nBatch sizes the rules saw:\n"
            << sopr::FormatResult(
                   engine.Query("select batch_size from stats").value())
            << "\nAlerts raised (joined against the indexed sensor table):\n"
            << sopr::FormatResult(
                   engine.Query("select * from alerts order by ts").value());

  // A bad feed: sensor 99 is unknown; the batch rolls back atomically.
  std::cout << "\nImporting a feed with an unknown sensor:\n";
  auto bad = sopr::ImportCsv(&engine, "readings",
                             "sensor_id,temp,ts\n1,70,2000\n99,71,2001\n");
  std::cout << "  -> " << bad.status() << "\n";
  std::cout << "  readings table still has "
            << engine.TableSize("readings").ValueOr(0) << " rows\n";

  // Export the alerts as CSV.
  auto exported = sopr::ExportCsv(&engine, "select * from alerts order by ts");
  Check(exported.status());
  std::cout << "\nAlerts exported as CSV:\n" << exported.value();
  return 0;
}
