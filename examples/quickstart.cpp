// Quickstart: define a table, a set-oriented production rule, and watch
// it fire. This is the paper's Example 3.1 ("cascaded delete") in a dozen
// lines of API.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <iostream>

#include "engine/engine.h"
#include "query/result_set.h"

int main() {
  sopr::Engine engine;

  // The paper's §3.1 schema: emp(name, emp_no, salary, dept_no),
  // dept(dept_no, mgr_no).
  auto check = [](const sopr::Status& status) {
    if (!status.ok()) {
      std::cerr << "error: " << status << "\n";
      std::exit(1);
    }
  };

  check(engine.Execute(
      "create table emp (name string, emp_no int, salary double, "
      "dept_no int)"));
  check(engine.Execute("create table dept (dept_no int, mgr_no int)"));

  check(engine.Execute("insert into dept values (1, 10), (2, 20)"));
  check(engine.Execute(
      "insert into emp values ('Jane', 10, 90000, 1), "
      "('Mary', 20, 70000, 1), ('Bill', 40, 25000, 2)"));

  // Example 3.1: whenever departments are deleted, delete all employees
  // in the deleted departments. Note `deleted dept`: the rule's condition
  // and action can query the SET of deleted tuples (a transition table).
  check(engine.Execute(
      "create rule cascade_delete "
      "when deleted from dept "
      "then delete from emp "
      "     where dept_no in (select dept_no from deleted dept)"));

  std::cout << "Before:\n";
  std::cout << sopr::FormatResult(
      engine.Query("select * from emp order by name").value());

  // Deleting department 2 automatically deletes Bill.
  check(engine.Execute("delete from dept where dept_no = 2"));

  std::cout << "\nAfter `delete from dept where dept_no = 2` "
               "(rule fired automatically):\n";
  std::cout << sopr::FormatResult(
      engine.Query("select * from emp order by name").value());

  return 0;
}
