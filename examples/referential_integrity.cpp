// Constraint-maintenance example (§6 / [CW90]): declare high-level
// integrity constraints and let the compiler derive enforcing production
// rules. Shows the generated `create rule` SQL, then demonstrates
// cascade, rollback-on-violation, and an aggregate payroll cap.
//
// Build & run:  cmake --build build && ./build/examples/referential_integrity

#include <iostream>

#include "constraints/compiler.h"
#include "engine/engine.h"
#include "query/result_set.h"

namespace {

void Check(const sopr::Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    std::exit(1);
  }
}

void Attempt(sopr::Engine& engine, const std::string& sql) {
  std::cout << "  " << sql << "\n    -> ";
  sopr::Status s = engine.Execute(sql);
  if (s.ok()) {
    std::cout << "committed\n";
  } else {
    std::cout << s << "\n";
  }
}

}  // namespace

int main() {
  sopr::Engine engine;
  Check(engine.Execute(
      "create table emp (name string, emp_no int, salary double, "
      "dept_no int)"));
  Check(engine.Execute("create table dept (dept_no int, mgr_no int)"));
  Check(engine.Execute("insert into dept values (1, 10), (2, 20)"));
  Check(engine.Execute(
      "insert into emp values ('Jane', 10, 90000, 1), "
      "('Mary', 20, 70000, 1), ('Bill', 40, 25000, 2)"));

  sopr::ConstraintCompiler compiler(&engine);

  // 1. emp.dept_no references dept.dept_no, cascade on parent delete.
  sopr::ReferentialConstraint fk;
  fk.name = "emp_dept";
  fk.child_table = "emp";
  fk.child_column = "dept_no";
  fk.parent_table = "dept";
  fk.parent_column = "dept_no";
  fk.on_parent_delete = sopr::ViolationAction::kCascade;
  Check(compiler.AddReferential(fk).status());

  // 2. Salaries must be non-negative.
  sopr::DomainConstraint dom;
  dom.name = "salary_pos";
  dom.table = "emp";
  dom.column = "salary";
  dom.predicate_sql = "salary >= 0";
  Check(compiler.AddDomain(dom).status());

  // 3. emp_no is unique.
  sopr::UniqueConstraint uniq;
  uniq.name = "emp_no";
  uniq.table = "emp";
  uniq.column = "emp_no";
  Check(compiler.AddUnique(uniq).status());

  // 4. Total payroll stays under 250K.
  sopr::AggregateConstraint cap;
  cap.name = "payroll";
  cap.table = "emp";
  cap.predicate_sql = "(select sum(salary) from emp) < 250000";
  Check(compiler.AddAggregate(cap).status());

  std::cout << "Compiled " << compiler.generated_sql().size()
            << " production rules from 4 declarative constraints:\n\n";
  for (const std::string& sql : compiler.generated_sql()) {
    std::cout << "  " << sql << "\n\n";
  }

  std::cout << "Demonstration:\n";
  // Violations roll back...
  Attempt(engine, "insert into emp values ('Dup', 10, 100, 1)");
  Attempt(engine, "insert into emp values ('Neg', 77, -5, 1)");
  Attempt(engine, "insert into emp values ('Orphan', 78, 100, 99)");
  Attempt(engine, "update emp set salary = salary * 2");
  // ...legal changes commit, and parent deletes cascade.
  Attempt(engine, "insert into emp values ('Okay', 79, 30000, 2)");
  Attempt(engine, "delete from dept where dept_no = 2");

  std::cout << "\nFinal emp table (Bill and Okay cascaded away with dept 2):\n"
            << sopr::FormatResult(
                   engine.Query("select * from emp order by emp_no").value());
  return 0;
}
