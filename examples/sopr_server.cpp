// Standalone network server (docs/NETWORK.md): opens (or recovers) a
// WAL-backed engine and serves it over the TCP wire protocol until
// SIGINT/SIGTERM. The minimal deployment shape — everything interesting
// lives in net::Server and server::SessionManager; this binary only
// parses flags and waits.
//
// Build & run:
//   cmake --build build
//   ./build/examples/sopr_server --port 5432 --wal-dir /tmp/sopr
//   ./build/examples/sopr_client --port 5432 exec "create table t (id int)"
//
// Flags:
//   --port P          listen port (0 = ephemeral, printed on stdout)
//   --wal-dir DIR     WAL directory (created/recovered; required)
//   --workers N       SQL worker threads (default 4)
//   --max-sessions N  session-pool bound (default 256)
//   --fsync-off       skip WAL fsyncs (benchmarks / throwaway data)

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <semaphore.h>
#include <string>

#include "engine/engine.h"
#include "net/server.h"
#include "server/session_manager.h"

namespace {

sem_t g_stop;

void OnSignal(int) { sem_post(&g_stop); }

void Usage() {
  std::cerr << "usage: sopr_server --wal-dir DIR [--port P] [--workers N]\n"
               "                   [--max-sessions N] [--fsync-off]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  sopr::RuleEngineOptions engine_options;
  sopr::net::Server::Options server_options;
  size_t max_sessions = 256;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      server_options.loop.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--wal-dir" && i + 1 < argc) {
      engine_options.wal_dir = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      server_options.workers = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--max-sessions" && i + 1 < argc) {
      max_sessions = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--fsync-off") {
      engine_options.wal_fsync = sopr::WalFsyncPolicy::kOff;
    } else {
      Usage();
    }
  }
  if (engine_options.wal_dir.empty()) Usage();

  auto manager = sopr::server::SessionManager::Open(engine_options);
  if (!manager.ok()) {
    std::cerr << "open: " << manager.status() << "\n";
    return 1;
  }
  manager.value()->set_max_sessions(max_sessions);

  auto server =
      sopr::net::Server::Start(manager.value().get(), server_options);
  if (!server.ok()) {
    std::cerr << "listen: " << server.status() << "\n";
    return 1;
  }
  std::cout << "sopr_server listening on port " << server.value()->port()
            << " (wal-dir " << engine_options.wal_dir << ", "
            << server_options.workers << " workers, " << max_sessions
            << " max sessions)\n"
            << std::flush;

  sem_init(&g_stop, 0, 0);
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (sem_wait(&g_stop) != 0) {
  }

  std::cout << "shutting down\n";
  server.value()->Shutdown();
  return 0;
}
