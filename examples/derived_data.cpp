// Derived-data maintenance (§1 cites [Esw76]: production rules are
// useful for "maintenance of derived data"): a per-department statistics
// table kept incrementally consistent with emp by three set-oriented
// rules — effectively an incrementally-maintained materialized view.
//
// The key set-oriented trick: each rule folds the *aggregate of the
// transition set* into the stats in ONE statement, no matter how many
// employees a transaction touched.
//
// Build & run:  cmake --build build && ./build/examples/derived_data

#include <iostream>

#include "engine/engine.h"
#include "query/result_set.h"

namespace {

void Check(const sopr::Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    std::exit(1);
  }
}

void Show(sopr::Engine& engine, const char* label) {
  std::cout << label << "\n"
            << sopr::FormatResult(
                   engine
                       .Query("select * from dept_stats order by dept_no")
                       .value())
            << "\n";
}

}  // namespace

int main() {
  sopr::Engine engine;
  Check(engine.Execute(
      "create table emp (name string, salary double, dept_no int)"));
  Check(engine.Execute(
      "create table dept_stats (dept_no int, headcount int, "
      "total_salary double)"));
  Check(engine.Execute(
      "insert into dept_stats values (1, 0, 0), (2, 0, 0)"));

  // View-maintenance rules. Inserts add the transition set's per-dept
  // contributions; deletes subtract them; salary updates apply the delta
  // sum(new) - sum(old) per department.
  Check(engine.Execute(
      "create rule dd_ins when inserted into emp "
      "then update dept_stats set "
      "  headcount = headcount + (select count(*) from inserted emp i "
      "                           where i.dept_no = dept_stats.dept_no), "
      "  total_salary = total_salary + "
      "    (select sum(i.salary) from inserted emp i "
      "     where i.dept_no = dept_stats.dept_no) "
      "where dept_no in (select dept_no from inserted emp)"));
  Check(engine.Execute(
      "create rule dd_del when deleted from emp "
      "then update dept_stats set "
      "  headcount = headcount - (select count(*) from deleted emp d "
      "                           where d.dept_no = dept_stats.dept_no), "
      "  total_salary = total_salary - "
      "    (select sum(d.salary) from deleted emp d "
      "     where d.dept_no = dept_stats.dept_no) "
      "where dept_no in (select dept_no from deleted emp)"));
  Check(engine.Execute(
      "create rule dd_upd when updated emp.salary "
      "then update dept_stats set total_salary = total_salary "
      "  + (select sum(n.salary) from new updated emp.salary n "
      "     where n.dept_no = dept_stats.dept_no) "
      "  - (select sum(o.salary) from old updated emp.salary o "
      "     where o.dept_no = dept_stats.dept_no) "
      "where dept_no in (select dept_no from new updated emp.salary)"));

  std::cout << "Each transaction below maintains dept_stats with ONE rule\n"
               "firing per rule, regardless of how many rows it touched.\n\n";

  Check(engine.Execute(
      "insert into emp values ('a', 1000, 1), ('b', 2000, 1), "
      "('c', 3000, 2)"));
  Show(engine, "After hiring a, b (dept 1) and c (dept 2) in one block:");

  Check(engine.Execute("update emp set salary = salary * 1.10"));
  Show(engine, "After a 10% raise for everyone (one set-oriented update):");

  Check(engine.Execute("delete from emp where dept_no = 1"));
  Show(engine, "After dissolving department 1's staff:");

  // Cross-check against recomputation from scratch.
  std::cout << "Recomputed from emp directly (must match dept_stats):\n"
            << sopr::FormatResult(
                   engine
                       .Query("select dept_no, count(*), sum(salary) "
                              "from emp group by dept_no order by dept_no")
                       .value());
  return 0;
}
