// Active-database scenario (the style of application §1 motivates):
// an inventory system where set-oriented rules monitor stock levels,
// generate purchase orders, and audit large shipments — plus the §5.3
// explicit rule triggering point and the §6 static analysis facility.
//
// Build & run:  cmake --build build && ./build/examples/inventory_reorder

#include <iostream>

#include "engine/engine.h"
#include "query/result_set.h"
#include "rules/analysis.h"

namespace {

void Check(const sopr::Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  sopr::Engine engine;

  Check(engine.Execute(
      "create table stock (sku int, on_hand int, reorder_point int)"));
  Check(engine.Execute("create table purchase_orders (sku int, qty int)"));
  Check(engine.Execute("create table shipments (sku int, qty int)"));
  Check(engine.Execute("create table audit (sku int, qty int)"));

  Check(engine.Execute(
      "insert into stock values (1, 100, 20), (2, 50, 10), (3, 15, 25)"));

  // Rule 1: a shipment decrements stock — one set-oriented update handles
  // any number of shipments recorded in a transaction.
  Check(engine.Execute(
      "create rule apply_shipments "
      "when inserted into shipments "
      "then update stock set on_hand = on_hand - "
      "       (select sum(qty) from inserted shipments s "
      "        where s.sku = stock.sku) "
      "     where sku in (select sku from inserted shipments)"));

  // Rule 2: when stock drops below its reorder point, cut a purchase
  // order for twice the reorder quantity (only for SKUs not already on
  // order).
  Check(engine.Execute(
      "create rule reorder "
      "when updated stock.on_hand "
      "if exists (select * from new updated stock.on_hand "
      "           where on_hand < reorder_point) "
      "then insert into purchase_orders "
      "       (select sku, 2 * reorder_point from new updated stock.on_hand "
      "        where on_hand < reorder_point "
      "          and sku not in (select sku from purchase_orders))"));

  // Rule 3: audit any single-transaction shipment total above 40 units.
  Check(engine.Execute(
      "create rule audit_big "
      "when inserted into shipments "
      "if exists (select * from inserted shipments where qty > 40) "
      "then insert into audit "
      "       (select sku, qty from inserted shipments where qty > 40)"));

  Check(engine.Execute("create rule priority audit_big before apply_shipments"));

  // Static analysis (§6): the triggering graph flags apply_shipments ->
  // reorder, and reorder's self-check.
  std::vector<const sopr::Rule*> rules;
  for (const std::string& name : engine.rules().RuleNames()) {
    rules.push_back(engine.rules().GetRule(name).value());
  }
  sopr::RuleAnalyzer analyzer(rules, &engine.rules().priorities());
  std::cout << "Static analysis of the rule set:\n";
  for (const sopr::TriggerEdge& e : analyzer.edges()) {
    std::cout << "  may-trigger: " << e.from << " -> " << e.to << "  ["
              << e.via << "]\n";
  }
  for (const sopr::AnalysisWarning& w : analyzer.Analyze()) {
    std::cout << "  warning: " << w.ToString() << "\n";
  }

  // One transaction records three shipments; the rules cascade:
  // audit_big logs the 60-unit shipment, apply_shipments decrements all
  // three SKUs in one statement, reorder kicks in for SKUs now below
  // their reorder points.
  std::cout << "\nRecording shipments (sku 1 x60, sku 2 x45, sku 3 x5)...\n";
  auto trace = engine.ExecuteBlock(
      "insert into shipments values (1, 60); "
      "insert into shipments values (2, 45); "
      "insert into shipments values (3, 5)");
  Check(trace.status());
  for (const sopr::RuleFiring& f : trace.value().firings) {
    std::cout << "  fired: " << f.rule << "\n";
  }

  std::cout << "\nStock after rules:\n"
            << sopr::FormatResult(
                   engine.Query("select * from stock order by sku").value())
            << "\nPurchase orders (auto-generated):\n"
            << sopr::FormatResult(
                   engine.Query("select * from purchase_orders order by sku")
                       .value())
            << "\nAudit log (shipments over 40 units):\n"
            << sopr::FormatResult(
                   engine.Query("select * from audit order by sku").value());

  // §5.3 triggering point: batch two shipment waves in ONE transaction
  // but force rule processing between them.
  std::cout << "\nManual transaction with a mid-point rule triggering "
               "point (§5.3):\n";
  Check(engine.Begin());
  Check(engine.Run("insert into shipments values (1, 10)"));
  auto mid = engine.ProcessRules();
  Check(mid.status());
  std::cout << "  after wave 1: " << mid.value().firings.size()
            << " rule firings\n";
  Check(engine.Run("insert into shipments values (1, 10)"));
  auto fin = engine.Commit();
  Check(fin.status());
  std::cout << "  after wave 2: " << fin.value().firings.size()
            << " rule firings\n";

  std::cout << "\nFinal stock for sku 1: "
            << engine.Query("select on_hand from stock where sku = 1")
                   .value()
                   .rows[0]
                   .at(0)
                   .ToString()
            << "\n";
  return 0;
}
