// Interactive shell for the sopr engine: type SQL (tables, rules,
// queries, operation blocks) and watch rules fire. Meta-commands:
//
//   \tables            list tables
//   \rules             list rules with their definitions
//   \analyze           run static rule analysis (§6): trigger graph +
//                      loop / order-sensitivity warnings
//   \trace on|off      print rule consideration/firing traces per block
//   \begin \commit \rollback \process
//                      explicit transaction control (§5.3 triggering
//                      points)
//   \help \quit
//
// Statements end with ';'. Multiple DML statements before the ';' form
// one operation block (= one transaction), e.g.:
//
//   sopr> delete from emp where name = 'Jane'
//    ...>   ; -- executes the block, fires rules, commits
//
// Build & run:  cmake --build build && ./build/examples/sopr_shell
//
// Concurrent driver mode: pass script files plus --jobs to run them as
// parallel sessions against one shared engine (docs/CONCURRENCY.md):
//
//   ./build/examples/sopr_shell --wal /tmp/w --jobs 4 a.sql b.sql c.sql
//
// Each script becomes one session on its own thread; statements are
// split on ';' and executed in order. A summary (commits/aborts per
// session, throughput, group-commit cohort stats) prints at the end.

#include <cctype>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "engine/explain.h"
#include "io/dump.h"
#include "query/result_set.h"
#include "rules/analysis.h"
#include "rules/trace_format.h"
#include "server/session_manager.h"
#include "wal/wal_writer.h"

namespace {

bool g_trace = true;

void PrintTrace(const sopr::ExecutionTrace& trace) {
  if (!g_trace) return;
  sopr::TraceFormatOptions options;
  options.show_retrieved = true;
  options.indent = "-- ";
  std::cout << sopr::FormatTrace(trace, options);
}

void ListTables(sopr::Engine& engine) {
  for (const std::string& name : engine.db().catalog().TableNames()) {
    auto schema = engine.db().catalog().GetTable(name);
    if (schema.ok()) {
      std::cout << "  " << schema.value()->ToString() << "  ("
                << engine.TableSize(name).ValueOr(0) << " rows)\n";
    }
  }
}

void ListRules(sopr::Engine& engine) {
  for (const std::string& name : engine.rules().RuleNames()) {
    auto rule = engine.rules().GetRule(name);
    if (rule.ok()) {
      std::cout << "  " << rule.value()->def().ToString() << "\n";
    }
  }
}

void Analyze(sopr::Engine& engine) {
  std::vector<const sopr::Rule*> rules;
  for (const std::string& name : engine.rules().RuleNames()) {
    auto rule = engine.rules().GetRule(name);
    if (rule.ok()) rules.push_back(rule.value());
  }
  sopr::RuleAnalyzer analyzer(rules, &engine.rules().priorities());
  if (analyzer.edges().empty()) {
    std::cout << "  no may-trigger edges\n";
  }
  for (const sopr::TriggerEdge& e : analyzer.edges()) {
    std::cout << "  " << e.from << " -> " << e.to << "  [" << e.via << "]\n";
  }
  for (const sopr::AnalysisWarning& w : analyzer.Analyze()) {
    std::cout << "  warning: " << w.ToString() << "\n";
  }
}

void Help() {
  std::cout
      << "Statements end with ';'. DML statements before the ';' form one\n"
         "operation block (one transaction). Meta-commands:\n"
         "  \\tables  \\rules  \\analyze  \\explain <select>\n"
         "  \\dump  \\trace on|off\n"
         "  \\begin  \\process  \\commit  \\rollback\n"
         "  \\help  \\quit\n";
}

/// Handles a meta-command line; returns false for \quit.
bool HandleMeta(sopr::Engine& engine, const std::string& line) {
  std::istringstream in(line);
  std::string cmd, arg;
  in >> cmd >> arg;
  if (cmd == "\\quit" || cmd == "\\q") return false;
  if (cmd == "\\help") {
    Help();
  } else if (cmd == "\\tables") {
    ListTables(engine);
  } else if (cmd == "\\rules") {
    ListRules(engine);
  } else if (cmd == "\\analyze") {
    Analyze(engine);
  } else if (cmd == "\\explain") {
    std::string rest;
    std::getline(in, rest);
    auto plan = sopr::ExplainSelect(&engine, arg + rest);
    std::cout << (plan.ok() ? plan.value() : plan.status().ToString() + "\n");
  } else if (cmd == "\\dump") {
    auto dump = sopr::DumpDatabase(&engine);
    std::cout << (dump.ok() ? dump.value() : dump.status().ToString() + "\n");
  } else if (cmd == "\\trace") {
    g_trace = (arg != "off");
    std::cout << "trace " << (g_trace ? "on" : "off") << "\n";
  } else if (cmd == "\\begin") {
    sopr::Status s = engine.Begin();
    std::cout << (s.ok() ? "transaction started" : s.ToString()) << "\n";
  } else if (cmd == "\\process") {
    auto trace = engine.ProcessRules();
    if (trace.ok()) {
      PrintTrace(trace.value());
      std::cout << "rules processed\n";
    } else {
      std::cout << trace.status() << "\n";
    }
  } else if (cmd == "\\commit") {
    auto trace = engine.Commit();
    if (trace.ok()) {
      PrintTrace(trace.value());
      std::cout << "committed\n";
    } else {
      std::cout << trace.status() << "\n";
    }
  } else if (cmd == "\\rollback") {
    sopr::Status s = engine.Rollback();
    std::cout << (s.ok() ? "rolled back" : s.ToString()) << "\n";
  } else {
    std::cout << "unknown command " << cmd << " (try \\help)\n";
  }
  return true;
}

void ExecuteSql(sopr::Engine& engine, const std::string& sql) {
  // Single select outside a transaction -> plain query.
  auto query = engine.Query(sql);
  if (query.ok()) {
    std::cout << sopr::FormatResult(query.value());
    return;
  }

  if (engine.in_transaction()) {
    sopr::Status s = engine.Run(sql);
    std::cout << (s.ok() ? "staged (rules run at \\process or \\commit)"
                         : s.ToString())
              << "\n";
    return;
  }

  // DDL or an operation block.
  auto trace = engine.ExecuteBlock(sql);
  if (trace.ok()) {
    PrintTrace(trace.value());
    std::cout << (trace.value().rolled_back ? "rolled back" : "ok") << "\n";
    return;
  }
  // Fall back to the DDL path only when the block was rejected for being
  // DDL — a genuinely failed DML block must surface its error, not be
  // silently re-executed.
  if (trace.status().code() == sopr::StatusCode::kInvalidArgument &&
      trace.status().message().find("expects DML") != std::string::npos) {
    sopr::Status ddl = engine.Execute(sql);
    std::cout << (ddl.ok() ? "ok" : ddl.ToString()) << "\n";
    return;
  }
  std::cout << trace.status().ToString() << "\n";
}

/// Splits a script into ';'-terminated statements (a trailing unterminated
/// fragment is kept too). Comment lines starting with "--" are dropped.
std::vector<std::string> SplitStatements(const std::string& script) {
  std::string cleaned;
  std::istringstream in(script);
  std::string line;
  while (std::getline(in, line)) {
    size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line.compare(first, 2, "--") == 0) {
      continue;
    }
    cleaned += line;
    cleaned += "\n";
  }
  std::vector<std::string> stmts;
  size_t start = 0;
  while (start < cleaned.size()) {
    size_t semi = cleaned.find(';', start);
    std::string piece = cleaned.substr(
        start, semi == std::string::npos ? std::string::npos : semi - start);
    size_t a = piece.find_first_not_of(" \t\n");
    if (a != std::string::npos) {
      stmts.push_back(piece.substr(a, piece.find_last_not_of(" \t\n") - a + 1));
    }
    if (semi == std::string::npos) break;
    start = semi + 1;
  }
  return stmts;
}

/// One worker: drives a session through its script, counting outcomes.
struct DriverReport {
  std::string script;
  uint64_t commits = 0;
  uint64_t rollbacks = 0;
  uint64_t errors = 0;
};

void DriveScript(sopr::server::Session* session,
                 const std::vector<std::string>* stmts, DriverReport* report) {
  for (const std::string& stmt : *stmts) {
    std::string head = stmt.substr(0, stmt.find_first_of(" \t\n"));
    for (char& c : head) c = static_cast<char>(std::tolower(c));
    if (head == "select") {
      auto result = session->Query(stmt);
      if (!result.ok()) ++report->errors;
      continue;
    }
    sopr::Status s = session->Execute(stmt);
    if (s.ok()) {
      ++report->commits;
    } else if (s.code() == sopr::StatusCode::kRolledBack) {
      ++report->rollbacks;
    } else {
      ++report->errors;
      std::ostringstream msg;
      msg << "[" << report->script << "] " << s << "\n";
      std::cerr << msg.str();
    }
  }
}

/// --jobs mode: each script file is a session on its own thread.
int RunConcurrent(sopr::RuleEngineOptions options,
                  const std::vector<std::string>& scripts, size_t jobs) {
  auto opened = sopr::server::SessionManager::Open(std::move(options));
  if (!opened.ok()) {
    std::cerr << "cannot open engine: " << opened.status().ToString() << "\n";
    return 1;
  }
  sopr::server::SessionManager& manager = *opened.value();

  std::vector<std::vector<std::string>> stmt_lists;
  std::vector<DriverReport> reports;
  for (const std::string& path : scripts) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot read script " << path << "\n";
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    stmt_lists.push_back(SplitStatements(text.str()));
    reports.push_back(DriverReport{path, 0, 0, 0});
  }

  const auto start = std::chrono::steady_clock::now();
  // Run at most `jobs` scripts at a time, each on its own session/thread.
  for (size_t base = 0; base < scripts.size(); base += jobs) {
    std::vector<std::thread> threads;
    for (size_t i = base; i < scripts.size() && i < base + jobs; ++i) {
      auto session = manager.CreateSession();
      if (!session.ok()) {
        std::cerr << session.status().ToString() << "\n";
        return 1;
      }
      threads.emplace_back(DriveScript, session.value(), &stmt_lists[i],
                           &reports[i]);
    }
    for (std::thread& t : threads) t.join();
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  uint64_t commits = 0, rollbacks = 0, errors = 0;
  for (const DriverReport& r : reports) {
    std::cout << r.script << ": " << r.commits << " committed, "
              << r.rollbacks << " rolled back, " << r.errors << " errors\n";
    commits += r.commits;
    rollbacks += r.rollbacks;
    errors += r.errors;
  }
  std::cout << "total: " << commits << " commits in " << secs << "s ("
            << (secs > 0 ? static_cast<uint64_t>(commits / secs) : commits)
            << " commits/sec, jobs=" << jobs << ")\n";
  if (manager.engine().durable()) {
    const sopr::wal::GroupCommitStats stats =
        manager.engine().wal()->group_stats();
    std::cout << "group commit: " << stats.batches << " batches in "
              << stats.cohorts << " fsync cohorts (largest cohort "
              << stats.largest_cohort << ")\n";
  }
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  sopr::RuleEngineOptions options;
  size_t jobs = 0;
  std::vector<std::string> scripts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--wal" && i + 1 < argc) {
      options.wal_dir = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<size_t>(std::stoul(argv[++i]));
    } else if (!arg.empty() && arg[0] != '-') {
      scripts.push_back(arg);
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--wal DIR] [--jobs N script.sql...]\n";
      return 2;
    }
  }
  if (!scripts.empty()) {
    return RunConcurrent(std::move(options), scripts,
                         jobs == 0 ? scripts.size() : jobs);
  }
  // Open() runs crash recovery on --wal DIR (and surfaces malformed
  // SOPR_FAILPOINTS specs) before the prompt appears.
  auto opened = sopr::Engine::Open(options);
  if (!opened.ok()) {
    std::cerr << "cannot open engine: " << opened.status().ToString() << "\n";
    return 1;
  }
  sopr::Engine& engine = *opened.value();
  std::cout << "sopr shell — set-oriented production rules "
               "(Widom & Finkelstein, SIGMOD 1990)\n"
               "Type \\help for commands, \\quit to exit.\n";
  if (engine.durable()) {
    std::cout << "durable: logging to " << options.wal_dir
              << " (docs/DURABILITY.md)\n";
  }

  std::string buffer;
  std::string line;
  while (true) {
    std::cout << (buffer.empty() ? "sopr> " : " ...> ") << std::flush;
    if (!std::getline(std::cin, line)) break;
    // Meta-commands act immediately (only at statement start).
    if (buffer.empty() && !line.empty() && line[0] == '\\') {
      if (!HandleMeta(engine, line)) break;
      continue;
    }
    buffer += line;
    buffer += "\n";
    // Execute once the buffer ends with ';' (ignoring trailing blanks).
    size_t end = buffer.find_last_not_of(" \t\n");
    if (end != std::string::npos && buffer[end] == ';') {
      std::string sql = buffer.substr(0, end);  // strip the terminator
      buffer.clear();
      if (!sql.empty()) ExecuteSql(engine, sql);
    }
  }
  return 0;
}
