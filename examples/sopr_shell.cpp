// Interactive shell for the sopr engine: type SQL (tables, rules,
// queries, operation blocks) and watch rules fire. Meta-commands:
//
//   \tables            list tables
//   \rules             list rules with their definitions
//   \analyze           run static rule analysis (§6): trigger graph +
//                      loop / order-sensitivity warnings
//   \trace on|off      print rule consideration/firing traces per block
//   \begin \commit \rollback \process
//                      explicit transaction control (§5.3 triggering
//                      points)
//   \help \quit
//
// Statements end with ';'. Multiple DML statements before the ';' form
// one operation block (= one transaction), e.g.:
//
//   sopr> delete from emp where name = 'Jane'
//    ...>   ; -- executes the block, fires rules, commits
//
// Build & run:  cmake --build build && ./build/examples/sopr_shell

#include <iostream>
#include <sstream>
#include <string>

#include "engine/engine.h"
#include "engine/explain.h"
#include "io/dump.h"
#include "query/result_set.h"
#include "rules/analysis.h"
#include "rules/trace_format.h"

namespace {

bool g_trace = true;

void PrintTrace(const sopr::ExecutionTrace& trace) {
  if (!g_trace) return;
  sopr::TraceFormatOptions options;
  options.show_retrieved = true;
  options.indent = "-- ";
  std::cout << sopr::FormatTrace(trace, options);
}

void ListTables(sopr::Engine& engine) {
  for (const std::string& name : engine.db().catalog().TableNames()) {
    auto schema = engine.db().catalog().GetTable(name);
    if (schema.ok()) {
      std::cout << "  " << schema.value()->ToString() << "  ("
                << engine.TableSize(name).ValueOr(0) << " rows)\n";
    }
  }
}

void ListRules(sopr::Engine& engine) {
  for (const std::string& name : engine.rules().RuleNames()) {
    auto rule = engine.rules().GetRule(name);
    if (rule.ok()) {
      std::cout << "  " << rule.value()->def().ToString() << "\n";
    }
  }
}

void Analyze(sopr::Engine& engine) {
  std::vector<const sopr::Rule*> rules;
  for (const std::string& name : engine.rules().RuleNames()) {
    auto rule = engine.rules().GetRule(name);
    if (rule.ok()) rules.push_back(rule.value());
  }
  sopr::RuleAnalyzer analyzer(rules, &engine.rules().priorities());
  if (analyzer.edges().empty()) {
    std::cout << "  no may-trigger edges\n";
  }
  for (const sopr::TriggerEdge& e : analyzer.edges()) {
    std::cout << "  " << e.from << " -> " << e.to << "  [" << e.via << "]\n";
  }
  for (const sopr::AnalysisWarning& w : analyzer.Analyze()) {
    std::cout << "  warning: " << w.ToString() << "\n";
  }
}

void Help() {
  std::cout
      << "Statements end with ';'. DML statements before the ';' form one\n"
         "operation block (one transaction). Meta-commands:\n"
         "  \\tables  \\rules  \\analyze  \\explain <select>\n"
         "  \\dump  \\trace on|off\n"
         "  \\begin  \\process  \\commit  \\rollback\n"
         "  \\help  \\quit\n";
}

/// Handles a meta-command line; returns false for \quit.
bool HandleMeta(sopr::Engine& engine, const std::string& line) {
  std::istringstream in(line);
  std::string cmd, arg;
  in >> cmd >> arg;
  if (cmd == "\\quit" || cmd == "\\q") return false;
  if (cmd == "\\help") {
    Help();
  } else if (cmd == "\\tables") {
    ListTables(engine);
  } else if (cmd == "\\rules") {
    ListRules(engine);
  } else if (cmd == "\\analyze") {
    Analyze(engine);
  } else if (cmd == "\\explain") {
    std::string rest;
    std::getline(in, rest);
    auto plan = sopr::ExplainSelect(&engine, arg + rest);
    std::cout << (plan.ok() ? plan.value() : plan.status().ToString() + "\n");
  } else if (cmd == "\\dump") {
    auto dump = sopr::DumpDatabase(&engine);
    std::cout << (dump.ok() ? dump.value() : dump.status().ToString() + "\n");
  } else if (cmd == "\\trace") {
    g_trace = (arg != "off");
    std::cout << "trace " << (g_trace ? "on" : "off") << "\n";
  } else if (cmd == "\\begin") {
    sopr::Status s = engine.Begin();
    std::cout << (s.ok() ? "transaction started" : s.ToString()) << "\n";
  } else if (cmd == "\\process") {
    auto trace = engine.ProcessRules();
    if (trace.ok()) {
      PrintTrace(trace.value());
      std::cout << "rules processed\n";
    } else {
      std::cout << trace.status() << "\n";
    }
  } else if (cmd == "\\commit") {
    auto trace = engine.Commit();
    if (trace.ok()) {
      PrintTrace(trace.value());
      std::cout << "committed\n";
    } else {
      std::cout << trace.status() << "\n";
    }
  } else if (cmd == "\\rollback") {
    sopr::Status s = engine.Rollback();
    std::cout << (s.ok() ? "rolled back" : s.ToString()) << "\n";
  } else {
    std::cout << "unknown command " << cmd << " (try \\help)\n";
  }
  return true;
}

void ExecuteSql(sopr::Engine& engine, const std::string& sql) {
  // Single select outside a transaction -> plain query.
  auto query = engine.Query(sql);
  if (query.ok()) {
    std::cout << sopr::FormatResult(query.value());
    return;
  }

  if (engine.in_transaction()) {
    sopr::Status s = engine.Run(sql);
    std::cout << (s.ok() ? "staged (rules run at \\process or \\commit)"
                         : s.ToString())
              << "\n";
    return;
  }

  // DDL or an operation block.
  auto trace = engine.ExecuteBlock(sql);
  if (trace.ok()) {
    PrintTrace(trace.value());
    std::cout << (trace.value().rolled_back ? "rolled back" : "ok") << "\n";
    return;
  }
  // Fall back to the DDL path only when the block was rejected for being
  // DDL — a genuinely failed DML block must surface its error, not be
  // silently re-executed.
  if (trace.status().code() == sopr::StatusCode::kInvalidArgument &&
      trace.status().message().find("expects DML") != std::string::npos) {
    sopr::Status ddl = engine.Execute(sql);
    std::cout << (ddl.ok() ? "ok" : ddl.ToString()) << "\n";
    return;
  }
  std::cout << trace.status().ToString() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  sopr::RuleEngineOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--wal" && i + 1 < argc) {
      options.wal_dir = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--wal DIR]\n";
      return 2;
    }
  }
  // Open() runs crash recovery on --wal DIR (and surfaces malformed
  // SOPR_FAILPOINTS specs) before the prompt appears.
  auto opened = sopr::Engine::Open(options);
  if (!opened.ok()) {
    std::cerr << "cannot open engine: " << opened.status().ToString() << "\n";
    return 1;
  }
  sopr::Engine& engine = *opened.value();
  std::cout << "sopr shell — set-oriented production rules "
               "(Widom & Finkelstein, SIGMOD 1990)\n"
               "Type \\help for commands, \\quit to exit.\n";
  if (engine.durable()) {
    std::cout << "durable: logging to " << options.wal_dir
              << " (docs/DURABILITY.md)\n";
  }

  std::string buffer;
  std::string line;
  while (true) {
    std::cout << (buffer.empty() ? "sopr> " : " ...> ") << std::flush;
    if (!std::getline(std::cin, line)) break;
    // Meta-commands act immediately (only at statement start).
    if (buffer.empty() && !line.empty() && line[0] == '\\') {
      if (!HandleMeta(engine, line)) break;
      continue;
    }
    buffer += line;
    buffer += "\n";
    // Execute once the buffer ends with ';' (ignoring trailing blanks).
    size_t end = buffer.find_last_not_of(" \t\n");
    if (end != std::string::npos && buffer[end] == ';') {
      std::string sql = buffer.substr(0, end);  // strip the terminator
      buffer.clear();
      if (!sql.empty()) ExecuteSql(engine, sql);
    }
  }
  return 0;
}
