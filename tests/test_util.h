#ifndef SOPR_TESTS_TEST_UTIL_H_
#define SOPR_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/engine.h"
#include "query/result_set.h"

namespace sopr {

#define ASSERT_OK(expr)                                        \
  do {                                                         \
    const ::sopr::Status _st = (expr);                         \
    ASSERT_TRUE(_st.ok()) << "expected OK, got " << _st;       \
  } while (0)

#define EXPECT_OK(expr)                                        \
  do {                                                         \
    const ::sopr::Status _st = (expr);                         \
    EXPECT_TRUE(_st.ok()) << "expected OK, got " << _st;       \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                        \
  SOPR_ASSERT_OK_AND_ASSIGN_IMPL(                              \
      SOPR_CONCAT(_test_result_, __LINE__), lhs, expr)

#define SOPR_ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, expr)         \
  auto tmp = (expr);                                           \
  ASSERT_TRUE(tmp.ok()) << "expected OK, got " << tmp.status(); \
  lhs = std::move(tmp).value()

/// Creates the paper's two-table schema (§3.1):
///   emp(name, emp_no, salary, dept_no)
///   dept(dept_no, mgr_no)
inline void CreatePaperSchema(Engine* engine) {
  ASSERT_OK(engine->Execute(
      "create table emp (name string, emp_no int, salary double, "
      "dept_no int)"));
  ASSERT_OK(engine->Execute("create table dept (dept_no int, mgr_no int)"));
}

/// Loads the Example 4.3 organization: Jane manages Mary and Jim; Mary
/// manages Bill; Jim manages Sam and Sue. Departments 1..4; dept d is
/// managed by mgr m.
///   dept 1: mgr Jane(10)  — members Mary(20), Jim(30)
///   dept 2: mgr Mary(20)  — members Bill(40)
///   dept 3: mgr Jim(30)   — members Sam(50), Sue(60)
///   dept 0: mgr nobody    — members Jane(10)
inline void LoadOrgChart(Engine* engine) {
  ASSERT_OK(engine->Execute(
      "insert into dept values (0, -1); "
      "insert into dept values (1, 10); "
      "insert into dept values (2, 20); "
      "insert into dept values (3, 30)"));
  ASSERT_OK(engine->Execute(
      "insert into emp values ('Jane', 10, 90000, 0); "
      "insert into emp values ('Mary', 20, 70000, 1); "
      "insert into emp values ('Jim', 30, 65000, 1); "
      "insert into emp values ('Bill', 40, 25000, 2); "
      "insert into emp values ('Sam', 50, 40000, 3); "
      "insert into emp values ('Sue', 60, 42000, 3)"));
}

/// Names currently in emp, sorted (for order-independent comparison).
inline std::vector<std::string> EmpNames(Engine* engine) {
  auto result = engine->Query("select name from emp order by name");
  EXPECT_TRUE(result.ok()) << result.status();
  std::vector<std::string> names;
  if (result.ok()) {
    for (const Row& row : result.value().rows) {
      names.push_back(row.at(0).AsString());
    }
  }
  return names;
}

/// Single scalar query helper.
inline Value QueryScalar(Engine* engine, const std::string& sql) {
  auto result = engine->Query(sql);
  EXPECT_TRUE(result.ok()) << result.status();
  if (!result.ok() || result.value().rows.size() != 1 ||
      result.value().rows[0].size() != 1) {
    ADD_FAILURE() << "expected a 1x1 result for: " << sql;
    return Value::Null();
  }
  return result.value().rows[0].at(0);
}

}  // namespace sopr

#endif  // SOPR_TESTS_TEST_UTIL_H_
