// Unit tests for the value-carrying trans-info structure of the Figure 1
// algorithm: old-value capture across insert/update/delete chains.

#include "rules/trans_info.h"

#include <gtest/gtest.h>

namespace sopr {
namespace {

Row R(const char* name, double salary) {
  return Row{Value::String(name), Value::Double(salary)};
}

DmlEffect InsertOp(TupleHandle h) {
  DmlEffect op;
  op.table = "emp";
  op.inserted.push_back(h);
  return op;
}

DmlEffect DeleteOp(TupleHandle h, Row old_row) {
  DmlEffect op;
  op.table = "emp";
  op.deleted.emplace_back(h, std::move(old_row));
  return op;
}

DmlEffect UpdateOp(TupleHandle h, std::vector<size_t> cols, Row old_row) {
  DmlEffect op;
  op.table = "emp";
  DmlEffect::UpdatedTuple u;
  u.handle = h;
  u.columns = std::move(cols);
  u.old_row = std::move(old_row);
  op.updated.push_back(u);
  return op;
}

TEST(TransInfo, ApplySingleOps) {
  TransInfo info;
  info.ApplyOp(InsertOp(1));
  info.ApplyOp(DeleteOp(2, R("bob", 5)));
  info.ApplyOp(UpdateOp(3, {1}, R("carol", 7)));

  const TableTransInfo& t = info.ForTable("emp");
  EXPECT_EQ(t.ins, (std::set<TupleHandle>{1}));
  ASSERT_EQ(t.del.count(2), 1u);
  EXPECT_EQ(t.del.at(2), R("bob", 5));
  ASSERT_EQ(t.upd.count(3), 1u);
  EXPECT_EQ(t.upd.at(3).old_row, R("carol", 7));
  EXPECT_EQ(t.upd.at(3).columns, (std::set<size_t>{1}));
}

TEST(TransInfo, InsertThenDeleteVanishes) {
  TransInfo info;
  info.ApplyOp(InsertOp(1));
  info.ApplyOp(DeleteOp(1, R("temp", 1)));
  EXPECT_TRUE(info.Empty());
}

TEST(TransInfo, InsertThenUpdateStaysInsert) {
  TransInfo info;
  info.ApplyOp(InsertOp(1));
  info.ApplyOp(UpdateOp(1, {0}, R("v0", 1)));
  const TableTransInfo& t = info.ForTable("emp");
  EXPECT_EQ(t.ins, (std::set<TupleHandle>{1}));
  EXPECT_TRUE(t.upd.empty());
}

TEST(TransInfo, UpdateThenDeleteKeepsOriginalValue) {
  // The deleted transition table must show the value from *before* the
  // whole composite transition (Figure 1's get-old-value).
  TransInfo info;
  info.ApplyOp(UpdateOp(7, {1}, R("orig", 100)));
  info.ApplyOp(DeleteOp(7, R("orig", 150)));  // current value at delete time
  const TableTransInfo& t = info.ForTable("emp");
  EXPECT_TRUE(t.upd.empty());
  ASSERT_EQ(t.del.count(7), 1u);
  EXPECT_EQ(t.del.at(7), R("orig", 100));  // pre-transition value
}

TEST(TransInfo, UpdateTwiceKeepsFirstOldValueAndMergesColumns) {
  TransInfo info;
  info.ApplyOp(UpdateOp(7, {1}, R("a", 100)));
  info.ApplyOp(UpdateOp(7, {0}, R("a", 110)));
  const TableTransInfo& t = info.ForTable("emp");
  ASSERT_EQ(t.upd.count(7), 1u);
  EXPECT_EQ(t.upd.at(7).old_row, R("a", 100));
  EXPECT_EQ(t.upd.at(7).columns, (std::set<size_t>{0, 1}));
}

TEST(TransInfo, ComposeMatchesSequentialApply) {
  // Folding ops one-by-one must equal folding into two blocks and
  // composing (modify-trans-info).
  std::vector<DmlEffect> ops;
  ops.push_back(InsertOp(1));
  ops.push_back(UpdateOp(2, {0}, R("b", 2)));
  ops.push_back(UpdateOp(1, {1}, R("a", 1)));
  ops.push_back(DeleteOp(2, R("b2", 3)));
  ops.push_back(InsertOp(3));
  ops.push_back(DeleteOp(3, R("c", 4)));
  ops.push_back(UpdateOp(4, {0, 1}, R("d", 9)));

  TransInfo sequential;
  for (const DmlEffect& op : ops) sequential.ApplyOp(op);

  for (size_t split = 0; split <= ops.size(); ++split) {
    TransInfo left, right;
    for (size_t i = 0; i < split; ++i) left.ApplyOp(ops[i]);
    for (size_t i = split; i < ops.size(); ++i) right.ApplyOp(ops[i]);
    TransInfo composed = left;
    composed.Compose(right);
    EXPECT_EQ(composed, sequential) << "split at " << split;
  }
}

TEST(TransInfo, ToEffectProjectsHandles) {
  TransInfo info;
  info.ApplyOp(InsertOp(1));
  info.ApplyOp(DeleteOp(2, R("x", 1)));
  info.ApplyOp(UpdateOp(3, {1}, R("y", 2)));
  TransitionEffect e = info.ToEffect();
  EXPECT_EQ(e.ForTable("emp").inserted, (std::set<TupleHandle>{1}));
  EXPECT_EQ(e.ForTable("emp").deleted, (std::set<TupleHandle>{2}));
  ASSERT_EQ(e.ForTable("emp").updated.count(3), 1u);
  EXPECT_TRUE(e.WellFormed());
}

TEST(TransInfo, SelectTrackingComposes) {
  TransInfo info;
  info.ApplySelect({{"emp", 1}, {"emp", 2}});
  TransInfo later;
  later.ApplyOp(DeleteOp(2, R("x", 1)));
  later.ApplySelect({{"emp", 3}});
  info.Compose(later);
  EXPECT_EQ(info.ForTable("emp").sel, (std::set<TupleHandle>{1, 3}));
}

TEST(TransInfo, ClearResets) {
  TransInfo info;
  info.ApplyOp(InsertOp(1));
  EXPECT_FALSE(info.Empty());
  info.Clear();
  EXPECT_TRUE(info.Empty());
}

}  // namespace
}  // namespace sopr
