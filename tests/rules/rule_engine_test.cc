// Deep semantics tests for the §4 execution model: composite effects
// across rule firings, re-triggering, rollback, cascade limits, rule
// management, and the per-rule vs shared-log maintenance ablation.

#include "rules/rule_engine.h"

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "test_util.h"

namespace sopr {
namespace {

class RuleEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CreatePaperSchema(&engine_);
    LoadOrgChart(&engine_);
  }
  Engine engine_;
};

TEST_F(RuleEngineTest, RuleDdlValidation) {
  // Unknown table in when clause.
  EXPECT_EQ(engine_
                .Execute("create rule r when inserted into nosuch "
                         "then delete from emp")
                .code(),
            StatusCode::kCatalogError);
  // Unknown column in `updated t.c`.
  EXPECT_EQ(engine_
                .Execute("create rule r when updated emp.nosuch "
                         "then delete from emp")
                .code(),
            StatusCode::kCatalogError);
  // Transition table not covered by the when list (§3 restriction).
  EXPECT_EQ(engine_
                .Execute("create rule r when inserted into emp "
                         "then delete from emp where dept_no in "
                         "(select dept_no from deleted dept)")
                .code(),
            StatusCode::kInvalidArgument);
  // `updated t` covers `old updated t.c`.
  EXPECT_OK(engine_.Execute(
      "create rule cover when updated emp "
      "if exists (select * from old updated emp.salary) "
      "then delete from dept where dept_no = -999"));
  // `updated t.c` does NOT cover a different column's transition table.
  EXPECT_EQ(engine_
                .Execute("create rule r2 when updated emp.salary "
                         "if exists (select * from old updated emp.dept_no) "
                         "then delete from dept where dept_no = -999")
                .code(),
            StatusCode::kInvalidArgument);
  // Duplicate rule name.
  EXPECT_EQ(engine_
                .Execute("create rule cover when inserted into emp "
                         "then delete from dept where dept_no = -999")
                .code(),
            StatusCode::kCatalogError);
}

TEST_F(RuleEngineTest, DropRuleStopsTriggering) {
  ASSERT_OK(engine_.Execute(
      "create rule audit when deleted from dept "
      "then delete from emp where dept_no in "
      "(select dept_no from deleted dept)"));
  ASSERT_OK(engine_.Execute("drop rule audit"));
  ASSERT_OK(engine_.Execute("delete from dept where dept_no = 3"));
  EXPECT_EQ(EmpNames(&engine_).size(), 6u);  // nothing cascaded
  EXPECT_EQ(engine_.Execute("drop rule audit").code(),
            StatusCode::kCatalogError);
}

TEST_F(RuleEngineTest, DisabledRuleDoesNotFire) {
  ASSERT_OK(engine_.Execute(
      "create rule cascade when deleted from dept "
      "then delete from emp where dept_no in "
      "(select dept_no from deleted dept)"));
  ASSERT_OK(engine_.rules().SetRuleEnabled("cascade", false));
  ASSERT_OK(engine_.Execute("delete from dept where dept_no = 3"));
  EXPECT_EQ(EmpNames(&engine_).size(), 6u);

  ASSERT_OK(engine_.rules().SetRuleEnabled("cascade", true));
  ASSERT_OK(engine_.Execute("delete from dept where dept_no = 2"));
  EXPECT_EQ(EmpNames(&engine_).size(), 5u);  // Bill cascaded
}

TEST_F(RuleEngineTest, RollbackActionUndoesWholeTransaction) {
  // No employee may earn more than 100K: rollback on violation.
  ASSERT_OK(engine_.Execute(
      "create rule cap when inserted into emp or updated emp.salary "
      "if exists (select * from emp where salary > 100000) "
      "then rollback"));

  Status s = engine_.Execute(
      "insert into emp values ('Cheap', 70, 10000, 1); "
      "insert into emp values ('Pricey', 71, 500000, 1)");
  EXPECT_EQ(s.code(), StatusCode::kRolledBack);
  // BOTH inserts undone (the whole transaction).
  EXPECT_EQ(EmpNames(&engine_).size(), 6u);

  // A legal block commits normally afterwards.
  ASSERT_OK(engine_.Execute("insert into emp values ('Cheap', 70, 10000, 1)"));
  EXPECT_EQ(EmpNames(&engine_).size(), 7u);
}

TEST_F(RuleEngineTest, RollbackAfterRuleActionsUndoesThoseToo) {
  // First rule moves everyone from a deleted dept to dept 0; second rule
  // rolls back if dept 0 exceeds 4 members. The rollback must undo both
  // the external delete AND the first rule's updates.
  ASSERT_OK(engine_.Execute(
      "create rule rehome when deleted from dept "
      "then update emp set dept_no = 0 where dept_no in "
      "(select dept_no from deleted dept)"));
  ASSERT_OK(engine_.Execute(
      "create rule capacity when updated emp.dept_no "
      "if (select count(*) from emp where dept_no = 0) > 2 "
      "then rollback"));

  // Deleting dept 1 rehomes Mary and Jim: dept 0 then has Jane+2 = 3 > 2.
  auto trace = engine_.ExecuteBlock("delete from dept where dept_no = 1");
  ASSERT_TRUE(trace.ok()) << trace.status();
  EXPECT_TRUE(trace.value().rolled_back);
  EXPECT_EQ(trace.value().rollback_rule, "capacity");
  // Everything restored: dept 1 exists, Mary still in dept 1.
  EXPECT_EQ(QueryScalar(&engine_, "select count(*) from dept"), Value::Int(4));
  EXPECT_EQ(QueryScalar(&engine_,
                        "select dept_no from emp where name = 'Mary'"),
            Value::Int(1));
}

TEST_F(RuleEngineTest, CascadeLimitAborts) {
  RuleEngineOptions options;
  options.max_rule_firings = 25;
  Engine engine(options);
  ASSERT_OK(engine.Execute("create table counter (n int)"));
  // A rule that always re-triggers itself: inserts feed inserts.
  ASSERT_OK(engine.Execute(
      "create rule loop when inserted into counter "
      "then insert into counter (select n + 1 from inserted counter)"));
  Status s = engine.Execute("insert into counter values (0)");
  EXPECT_EQ(s.code(), StatusCode::kLimitExceeded);
  // Transaction rolled back entirely.
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from counter"),
            Value::Int(0));
}

TEST_F(RuleEngineTest, RuleSeesCompositeEffectSinceItsLastExecution) {
  // A logging rule fires on emp deletions; a second rule deletes more
  // employees. The logging rule's second firing must see ONLY the
  // deletions since its own previous firing (§4.2).
  ASSERT_OK(engine_.Execute("create table log (name string)"));
  ASSERT_OK(engine_.Execute(
      "create rule logger when deleted from emp "
      "then insert into log (select name from deleted emp)"));
  ASSERT_OK(engine_.Execute(
      "create rule chain when deleted from emp "
      "then delete from emp where dept_no in "
      "(select dept_no from dept where mgr_no in "
      " (select emp_no from deleted emp)); "
      "delete from dept where mgr_no in (select emp_no from deleted emp)"));
  ASSERT_OK(engine_.Execute("create rule priority logger before chain"));

  ASSERT_OK(engine_.Execute("delete from emp where name = 'Jane'"));

  // Every deleted employee logged exactly once.
  auto result = engine_.Query("select name from log order by name");
  ASSERT_TRUE(result.ok());
  std::vector<std::string> logged;
  for (const Row& row : result.value().rows) {
    logged.push_back(row.at(0).AsString());
  }
  EXPECT_EQ(logged, (std::vector<std::string>{"Bill", "Jane", "Jim", "Mary",
                                              "Sam", "Sue"}));
}

TEST_F(RuleEngineTest, ConditionFalseRuleReconsideredAfterNewTransition) {
  // Rule A's condition is false initially; rule B's action changes the
  // database so A's condition becomes true; A must be reconsidered (§4.2:
  // "a rule that was triggered in S1 but whose condition was found to be
  // false may be reconsidered in S2").
  ASSERT_OK(engine_.Execute("create table flag (v int)"));
  ASSERT_OK(engine_.Execute(
      "create rule a when inserted into emp "
      "if exists (select * from flag where v = 1) "
      "then update emp set salary = 0 where name = 'Probe'"));
  ASSERT_OK(engine_.Execute(
      "create rule b when inserted into emp "
      "then insert into flag values (1)"));
  ASSERT_OK(engine_.Execute("create rule priority a before b"));

  ASSERT_OK(engine_.Execute("insert into emp values ('Probe', 77, 1234, 1)"));
  // a was considered first (condition false), then b fired, then a was
  // reconsidered and fired.
  EXPECT_EQ(QueryScalar(&engine_,
                        "select salary from emp where name = 'Probe'"),
            Value::Double(0));
}

TEST_F(RuleEngineTest, RuleNotRetriggeredByItsOwnIrrelevantTransition) {
  // After firing, a rule's trans-info is reset to its own transition; if
  // that transition does not satisfy its predicate it must not re-fire.
  ASSERT_OK(engine_.Execute("create table log (name string)"));
  ASSERT_OK(engine_.Execute(
      "create rule once when inserted into emp "
      "then insert into log values ('x')"));
  ASSERT_OK_AND_ASSIGN(
      ExecutionTrace trace,
      engine_.ExecuteBlock("insert into emp values ('N', 90, 1, 1)"));
  EXPECT_EQ(trace.firings.size(), 1u);
  EXPECT_EQ(QueryScalar(&engine_, "select count(*) from log"), Value::Int(1));
}

TEST_F(RuleEngineTest, UndoOfTriggeringChangeUntriggersPendingRule) {
  // §4.2: "Rule Rj is still triggered in state S2 as long as transition
  // T2 does not undo the changes that initially caused Rj to be
  // triggered." Rule hi (priority) deletes the tuple whose insertion
  // triggered rule lo; lo must not fire.
  ASSERT_OK(engine_.Execute("create table log (name string)"));
  ASSERT_OK(engine_.Execute(
      "create rule lo when inserted into emp "
      "then insert into log values ('lo fired')"));
  ASSERT_OK(engine_.Execute(
      "create rule hi when inserted into emp "
      "then delete from emp where emp_no in "
      "(select emp_no from inserted emp)"));
  ASSERT_OK(engine_.Execute("create rule priority hi before lo"));

  ASSERT_OK_AND_ASSIGN(
      ExecutionTrace trace,
      engine_.ExecuteBlock("insert into emp values ('Temp', 91, 1, 1)"));

  // hi fired, the insert+delete cancel in lo's composite effect, so lo
  // never fires.
  ASSERT_EQ(trace.firings.size(), 1u);
  EXPECT_EQ(trace.firings[0].rule, "hi");
  EXPECT_EQ(QueryScalar(&engine_, "select count(*) from log"), Value::Int(0));
}

TEST_F(RuleEngineTest, MultipleBasicPredicatesAreDisjunction) {
  ASSERT_OK(engine_.Execute("create table log (name string)"));
  ASSERT_OK(engine_.Execute(
      "create rule either when inserted into emp or deleted from dept "
      "then insert into log values ('hit')"));
  ASSERT_OK(engine_.Execute("insert into emp values ('X', 92, 1, 1)"));
  ASSERT_OK(engine_.Execute("delete from dept where dept_no = 3"));
  ASSERT_OK(engine_.Execute("update emp set salary = 2 where name = 'X'"));
  EXPECT_EQ(QueryScalar(&engine_, "select count(*) from log"), Value::Int(2));
}

TEST_F(RuleEngineTest, UpdatedColumnPredicateIsColumnSensitive) {
  ASSERT_OK(engine_.Execute("create table log (name string)"));
  ASSERT_OK(engine_.Execute(
      "create rule salary_only when updated emp.salary "
      "then insert into log values ('s')"));
  ASSERT_OK(engine_.Execute("update emp set dept_no = 1 where name = 'Bill'"));
  EXPECT_EQ(QueryScalar(&engine_, "select count(*) from log"), Value::Int(0));
  ASSERT_OK(engine_.Execute("update emp set salary = 1 where name = 'Bill'"));
  EXPECT_EQ(QueryScalar(&engine_, "select count(*) from log"), Value::Int(1));
}

TEST_F(RuleEngineTest, EmptyExternalEffectTriggersNothing) {
  ASSERT_OK(engine_.Execute("create table log (name string)"));
  ASSERT_OK(engine_.Execute(
      "create rule r when deleted from emp "
      "then insert into log values ('x')"));
  // Block whose net effect is empty: insert + delete of the same tuple.
  ASSERT_OK_AND_ASSIGN(
      ExecutionTrace trace,
      engine_.ExecuteBlock("insert into emp values ('T', 93, 1, 1); "
                           "delete from emp where emp_no = 93"));
  EXPECT_TRUE(trace.considered.empty());
  EXPECT_TRUE(trace.firings.empty());
}

TEST_F(RuleEngineTest, FailedActionAbortsTransaction) {
  // Division by zero inside a rule action must roll back everything.
  ASSERT_OK(engine_.Execute(
      "create rule bad when inserted into emp "
      "then update emp set salary = salary / 0 where name = 'Jane'"));
  Status s = engine_.Execute("insert into emp values ('X', 94, 1, 1)");
  EXPECT_EQ(s.code(), StatusCode::kExecutionError);
  EXPECT_EQ(EmpNames(&engine_).size(), 6u);  // insert rolled back
}

TEST_F(RuleEngineTest, DdlForbiddenInsideTransaction) {
  ASSERT_OK(engine_.Begin());
  auto def = std::make_shared<CreateRuleStmt>();
  def->name = "r";
  EXPECT_EQ(engine_.rules()
                .DefineRule(std::shared_ptr<const CreateRuleStmt>(def))
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine_.rules().DropRule("anything").code(),
            StatusCode::kInvalidArgument);
  ASSERT_OK(engine_.Rollback());
}

// --- Maintenance-mode ablation: both modes produce identical behavior ---

class MaintenanceModes
    : public ::testing::TestWithParam<MaintenanceMode> {};

TEST_P(MaintenanceModes, CascadeSemanticsIdentical) {
  RuleEngineOptions options;
  options.maintenance = GetParam();
  Engine engine(options);
  CreatePaperSchema(&engine);
  LoadOrgChart(&engine);
  ASSERT_OK(engine.Execute(
      "create rule chain when deleted from emp "
      "then delete from emp where dept_no in "
      "(select dept_no from dept where mgr_no in "
      " (select emp_no from deleted emp)); "
      "delete from dept where mgr_no in (select emp_no from deleted emp)"));

  ASSERT_OK(engine.Execute("delete from emp where name = 'Jane'"));
  EXPECT_TRUE(EmpNames(&engine).empty());
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from dept"), Value::Int(1));
}

TEST_P(MaintenanceModes, CompositeAndResetSemanticsIdentical) {
  RuleEngineOptions options;
  options.maintenance = GetParam();
  Engine engine(options);
  CreatePaperSchema(&engine);
  LoadOrgChart(&engine);
  ASSERT_OK(engine.Execute("create table log (name string)"));
  ASSERT_OK(engine.Execute(
      "create rule logger when deleted from emp "
      "then insert into log (select name from deleted emp)"));
  ASSERT_OK(engine.Execute(
      "create rule chain when deleted from emp "
      "then delete from emp where dept_no in "
      "(select dept_no from dept where mgr_no in "
      " (select emp_no from deleted emp)); "
      "delete from dept where mgr_no in (select emp_no from deleted emp)"));
  ASSERT_OK(engine.Execute("create rule priority logger before chain"));

  ASSERT_OK(engine.Execute("delete from emp where name = 'Jim'"));
  auto result = engine.Query("select name from log order by name");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 3u);  // Jim, Sam, Sue logged once
}

INSTANTIATE_TEST_SUITE_P(Modes, MaintenanceModes,
                         ::testing::Values(MaintenanceMode::kPerRule,
                                           MaintenanceMode::kSharedLog));

}  // namespace
}  // namespace sopr
