// Property test for the Figure 1 algorithm (experiment FIG1 in
// EXPERIMENTS.md): random DML runs against a real database while
// trans-info is maintained incrementally; the materialized transition
// tables must match an oracle computed from full before/after snapshots.

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "query/executor.h"
#include "rules/transition_tables.h"
#include "storage/database.h"
#include "test_util.h"

namespace sopr {
namespace {

class TransInfoProperty : public ::testing::TestWithParam<uint32_t> {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.CreateTable(TableSchema(
        "t", {{"a", ValueType::kInt}, {"b", ValueType::kInt}})));
  }

  std::map<TupleHandle, Row> Snapshot() {
    auto table = db_.GetTable("t");
    EXPECT_TRUE(table.ok());
    std::map<TupleHandle, Row> snap;
    for (const auto& [h, row] : table.value()->rows()) snap.emplace(h, row);
    return snap;
  }

  Database db_;
};

TEST_P(TransInfoProperty, TransitionTablesMatchSnapshotOracle) {
  std::mt19937 rng(GetParam());
  DatabaseResolver base(&db_);
  Executor executor(&db_, &base);

  // Seed rows.
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(
        db_.InsertRow("t", Row{Value::Int(i), Value::Int(100 + i)}).status());
  }
  db_.CommitAll();

  std::map<TupleHandle, Row> before = Snapshot();

  // Random DML ops, folding each affected set into the trans-info.
  TransInfo info;
  std::map<TupleHandle, std::set<size_t>> updated_cols;  // ground truth
  for (int step = 0; step < 40; ++step) {
    int what = std::uniform_int_distribution<int>(0, 2)(rng);
    int key = std::uniform_int_distribution<int>(0, 14)(rng);
    DmlEffect effect;
    if (what == 0) {
      InsertStmt ins;
      ins.table = "t";
      ins.rows.emplace_back();
      ins.rows[0].push_back(
          std::make_unique<LiteralExpr>(Value::Int(100 + step)));
      ins.rows[0].push_back(std::make_unique<LiteralExpr>(Value::Int(step)));
      ASSERT_OK_AND_ASSIGN(effect, executor.ExecuteInsert(ins));
    } else if (what == 1) {
      DeleteStmt del;
      del.table = "t";
      del.where = std::make_unique<BinaryExpr>(
          BinaryOp::kEq, std::make_unique<ColumnRefExpr>("", "a"),
          std::make_unique<LiteralExpr>(Value::Int(key)));
      ASSERT_OK_AND_ASSIGN(effect, executor.ExecuteDelete(del));
    } else {
      UpdateStmt upd;
      upd.table = "t";
      UpdateStmt::Assignment assign;
      assign.column = "b";
      assign.value = std::make_unique<BinaryExpr>(
          BinaryOp::kAdd, std::make_unique<ColumnRefExpr>("", "b"),
          std::make_unique<LiteralExpr>(Value::Int(1)));
      upd.assignments.push_back(std::move(assign));
      upd.where = std::make_unique<BinaryExpr>(
          BinaryOp::kLt, std::make_unique<ColumnRefExpr>("", "a"),
          std::make_unique<LiteralExpr>(Value::Int(key)));
      ASSERT_OK_AND_ASSIGN(effect, executor.ExecuteUpdate(upd));
      for (const auto& u : effect.updated) {
        updated_cols[u.handle].insert(u.columns.begin(), u.columns.end());
      }
    }
    info.ApplyOp(effect);
  }

  std::map<TupleHandle, Row> after = Snapshot();

  // Oracle sets.
  std::set<TupleHandle> oracle_inserted, oracle_deleted;
  for (const auto& [h, row] : after) {
    (void)row;
    if (before.count(h) == 0) oracle_inserted.insert(h);
  }
  for (const auto& [h, row] : before) {
    (void)row;
    if (after.count(h) == 0) oracle_deleted.insert(h);
  }
  std::set<TupleHandle> oracle_updated;
  for (const auto& [h, cols] : updated_cols) {
    (void)cols;
    if (before.count(h) > 0 && after.count(h) > 0) oracle_updated.insert(h);
  }

  // 1. The projected effect matches the oracle.
  TransitionEffect effect = info.ToEffect();
  EXPECT_EQ(effect.ForTable("t").inserted, oracle_inserted);
  EXPECT_EQ(effect.ForTable("t").deleted, oracle_deleted);
  std::set<TupleHandle> info_updated;
  for (const auto& [h, cols] : effect.ForTable("t").updated) {
    (void)cols;
    info_updated.insert(h);
  }
  EXPECT_EQ(info_updated, oracle_updated);
  EXPECT_TRUE(effect.WellFormed());

  // 2. Materialized transition tables carry the right values.
  TransitionTableResolver resolver(&db_, &info);

  TableRef inserted_ref{TableRefKind::kInserted, "t", "", ""};
  ASSERT_OK_AND_ASSIGN(Relation ins_rel, resolver.Resolve(inserted_ref));
  ASSERT_EQ(ins_rel.rows.size(), oracle_inserted.size());
  for (size_t i = 0; i < ins_rel.rows.size(); ++i) {
    EXPECT_EQ(ins_rel.rows[i], after.at(ins_rel.handles[i]));
  }

  TableRef deleted_ref{TableRefKind::kDeleted, "t", "", ""};
  ASSERT_OK_AND_ASSIGN(Relation del_rel, resolver.Resolve(deleted_ref));
  ASSERT_EQ(del_rel.rows.size(), oracle_deleted.size());
  for (size_t i = 0; i < del_rel.rows.size(); ++i) {
    // Deleted transition table shows the *pre-transition* value.
    EXPECT_EQ(del_rel.rows[i], before.at(del_rel.handles[i]));
  }

  TableRef old_upd_ref{TableRefKind::kOldUpdated, "t", "", ""};
  ASSERT_OK_AND_ASSIGN(Relation old_rel, resolver.Resolve(old_upd_ref));
  ASSERT_EQ(old_rel.rows.size(), oracle_updated.size());
  for (size_t i = 0; i < old_rel.rows.size(); ++i) {
    EXPECT_EQ(old_rel.rows[i], before.at(old_rel.handles[i]));
  }

  TableRef new_upd_ref{TableRefKind::kNewUpdated, "t", "", ""};
  ASSERT_OK_AND_ASSIGN(Relation new_rel, resolver.Resolve(new_upd_ref));
  ASSERT_EQ(new_rel.rows.size(), oracle_updated.size());
  for (size_t i = 0; i < new_rel.rows.size(); ++i) {
    EXPECT_EQ(new_rel.rows[i], after.at(new_rel.handles[i]));
  }
}

TEST_P(TransInfoProperty, BlockSplitComposeEqualsDirectFold) {
  // Split the same op stream into random blocks; folding blocks with
  // Compose must equal folding ops directly (Definition 2.1 lifted to
  // values, i.e. modify-trans-info correctness).
  std::mt19937 rng(GetParam() * 2654435761u + 1);
  DatabaseResolver base(&db_);
  Executor executor(&db_, &base);
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(
        db_.InsertRow("t", Row{Value::Int(i), Value::Int(100 + i)}).status());
  }
  db_.CommitAll();

  TransInfo direct;
  TransInfo blocked;
  TransInfo current_block;
  for (int step = 0; step < 30; ++step) {
    int what = std::uniform_int_distribution<int>(0, 2)(rng);
    int key = std::uniform_int_distribution<int>(0, 12)(rng);
    DmlEffect effect;
    if (what == 0) {
      InsertStmt ins;
      ins.table = "t";
      ins.rows.emplace_back();
      ins.rows[0].push_back(
          std::make_unique<LiteralExpr>(Value::Int(200 + step)));
      ins.rows[0].push_back(std::make_unique<LiteralExpr>(Value::Int(step)));
      ASSERT_OK_AND_ASSIGN(effect, executor.ExecuteInsert(ins));
    } else if (what == 1) {
      DeleteStmt del;
      del.table = "t";
      del.where = std::make_unique<BinaryExpr>(
          BinaryOp::kEq, std::make_unique<ColumnRefExpr>("", "a"),
          std::make_unique<LiteralExpr>(Value::Int(key)));
      ASSERT_OK_AND_ASSIGN(effect, executor.ExecuteDelete(del));
    } else {
      UpdateStmt upd;
      upd.table = "t";
      UpdateStmt::Assignment assign;
      assign.column = "a";
      assign.value = std::make_unique<BinaryExpr>(
          BinaryOp::kAdd, std::make_unique<ColumnRefExpr>("", "a"),
          std::make_unique<LiteralExpr>(Value::Int(0)));
      upd.assignments.push_back(std::move(assign));
      upd.where = std::make_unique<BinaryExpr>(
          BinaryOp::kGt, std::make_unique<ColumnRefExpr>("", "a"),
          std::make_unique<LiteralExpr>(Value::Int(key)));
      ASSERT_OK_AND_ASSIGN(effect, executor.ExecuteUpdate(upd));
    }
    direct.ApplyOp(effect);
    current_block.ApplyOp(effect);
    // Randomly close the block.
    if (std::uniform_int_distribution<int>(0, 3)(rng) == 0) {
      blocked.Compose(current_block);
      current_block.Clear();
    }
  }
  blocked.Compose(current_block);
  EXPECT_EQ(blocked, direct);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransInfoProperty, ::testing::Range(0u, 20u));

}  // namespace
}  // namespace sopr
