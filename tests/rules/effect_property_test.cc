// Property-based tests for Definition 2.1 (experiment DEF2.1 in
// EXPERIMENTS.md): random operation sequences are composed in different
// groupings and checked against an independent state-based oracle.

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "rules/effect.h"

namespace sopr {
namespace {

/// A primitive operation on the simulated database.
struct SimOp {
  enum class Kind { kInsert, kDelete, kUpdate } kind;
  TupleHandle handle;
  size_t column = 0;  // update only
};

/// Simulates a single-table tuple universe: generates a random valid
/// operation sequence (deletes/updates only touch live tuples, handles
/// never reused) and tracks live sets.
class Simulator {
 public:
  explicit Simulator(uint32_t seed) : rng_(seed) {}

  std::vector<SimOp> GenerateOps(size_t n) {
    std::vector<SimOp> ops;
    ops.reserve(n);
    // Start with some pre-existing tuples.
    for (int i = 0; i < 8; ++i) live_.insert(next_handle_++);
    initial_live_ = live_;
    for (size_t i = 0; i < n; ++i) {
      int what = std::uniform_int_distribution<int>(0, 2)(rng_);
      if (what == 0 || live_.empty()) {
        TupleHandle h = next_handle_++;
        live_.insert(h);
        ops.push_back(SimOp{SimOp::Kind::kInsert, h, 0});
      } else if (what == 1) {
        TupleHandle h = PickLive();
        live_.erase(h);
        ops.push_back(SimOp{SimOp::Kind::kDelete, h, 0});
      } else {
        TupleHandle h = PickLive();
        size_t col = std::uniform_int_distribution<size_t>(0, 3)(rng_);
        updated_[h].insert(col);
        ops.push_back(SimOp{SimOp::Kind::kUpdate, h, col});
      }
    }
    return ops;
  }

  /// Singleton effect of one op (the base case of E(B) in §2.2).
  static TransitionEffect OpEffect(const SimOp& op) {
    TransitionEffect e;
    TableEffect& t = e.tables["t"];
    switch (op.kind) {
      case SimOp::Kind::kInsert:
        t.inserted.insert(op.handle);
        break;
      case SimOp::Kind::kDelete:
        t.deleted.insert(op.handle);
        break;
      case SimOp::Kind::kUpdate:
        t.updated[op.handle].insert(op.column);
        break;
    }
    return e;
  }

  /// Effect of a subsequence by left-fold composition.
  static TransitionEffect FoldEffect(const std::vector<SimOp>& ops,
                                     size_t begin, size_t end) {
    TransitionEffect acc;
    for (size_t i = begin; i < end; ++i) {
      acc = TransitionEffect::Compose(acc, OpEffect(ops[i]));
    }
    return acc;
  }

  /// Independent oracle: the net effect derived from start/end live sets
  /// plus the update trace (the paper: I and D are derivable from the
  /// states; U needs the operations).
  TransitionEffect Oracle() const {
    TransitionEffect e;
    TableEffect& t = e.tables["t"];
    for (TupleHandle h : live_) {
      if (initial_live_.count(h) == 0) t.inserted.insert(h);
    }
    for (TupleHandle h : initial_live_) {
      if (live_.count(h) == 0) t.deleted.insert(h);
    }
    for (const auto& [h, cols] : updated_) {
      // Updated tuples count only if they existed before and still exist.
      if (initial_live_.count(h) > 0 && live_.count(h) > 0) {
        t.updated[h] = cols;
      }
    }
    if (t.Empty()) e.tables.clear();
    return e;
  }

 private:
  TupleHandle PickLive() {
    size_t k =
        std::uniform_int_distribution<size_t>(0, live_.size() - 1)(rng_);
    auto it = live_.begin();
    std::advance(it, k);
    return *it;
  }

  std::mt19937 rng_;
  TupleHandle next_handle_ = 1;
  std::set<TupleHandle> live_;
  std::set<TupleHandle> initial_live_;
  std::map<TupleHandle, std::set<size_t>> updated_;
};

class CompositionProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CompositionProperty, FoldMatchesOracle) {
  Simulator sim(GetParam());
  std::vector<SimOp> ops = sim.GenerateOps(60);
  TransitionEffect folded = Simulator::FoldEffect(ops, 0, ops.size());
  // Drop empty table entries for comparison symmetry.
  if (folded.ForTable("t").Empty()) folded.tables.clear();
  EXPECT_EQ(folded, sim.Oracle());
  EXPECT_TRUE(folded.WellFormed());
}

TEST_P(CompositionProperty, SplitInvariance) {
  // E(B1;B2) = E(B1) ∘ E(B2) for every split point.
  Simulator sim(GetParam() * 7919 + 1);
  std::vector<SimOp> ops = sim.GenerateOps(40);
  TransitionEffect whole = Simulator::FoldEffect(ops, 0, ops.size());
  for (size_t split = 0; split <= ops.size(); split += 5) {
    TransitionEffect left = Simulator::FoldEffect(ops, 0, split);
    TransitionEffect right = Simulator::FoldEffect(ops, split, ops.size());
    EXPECT_EQ(TransitionEffect::Compose(left, right), whole)
        << "split at " << split;
  }
}

TEST_P(CompositionProperty, Associativity) {
  // (E1 ∘ E2) ∘ E3 = E1 ∘ (E2 ∘ E3) over thirds of the sequence.
  Simulator sim(GetParam() * 104729 + 3);
  std::vector<SimOp> ops = sim.GenerateOps(45);
  size_t a = ops.size() / 3;
  size_t b = 2 * ops.size() / 3;
  TransitionEffect e1 = Simulator::FoldEffect(ops, 0, a);
  TransitionEffect e2 = Simulator::FoldEffect(ops, a, b);
  TransitionEffect e3 = Simulator::FoldEffect(ops, b, ops.size());
  EXPECT_EQ(
      TransitionEffect::Compose(TransitionEffect::Compose(e1, e2), e3),
      TransitionEffect::Compose(e1, TransitionEffect::Compose(e2, e3)));
}

TEST_P(CompositionProperty, WellFormednessPreserved) {
  Simulator sim(GetParam() * 31 + 17);
  std::vector<SimOp> ops = sim.GenerateOps(50);
  TransitionEffect acc;
  for (const SimOp& op : ops) {
    acc = TransitionEffect::Compose(acc, Simulator::OpEffect(op));
    ASSERT_TRUE(acc.WellFormed()) << acc.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompositionProperty,
                         ::testing::Range(0u, 25u));

}  // namespace
}  // namespace sopr
