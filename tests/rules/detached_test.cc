// §5.3 detached rules: "the ability to specify that a rule's action
// should be executed in a separate transaction."

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "engine/engine.h"
#include "test_util.h"

namespace sopr {
namespace {

class DetachedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(engine_.Execute("create table t (a int)"));
    ASSERT_OK(engine_.Execute("create table log (a int)"));
  }
  Engine engine_;
};

TEST_F(DetachedTest, ActionRunsAfterCommitWithSnapshotTables) {
  ASSERT_OK(engine_.Execute(
      "create rule audit when inserted into t "
      "then insert into log (select a from inserted t)"));
  ASSERT_OK(engine_.rules().SetDetached("audit", true));

  ASSERT_OK_AND_ASSIGN(ExecutionTrace trace,
                       engine_.ExecuteBlock("insert into t values (1), (2)"));
  // The firing is marked detached and still saw the full inserted set.
  ASSERT_EQ(trace.firings.size(), 1u);
  EXPECT_TRUE(trace.firings[0].detached);
  EXPECT_EQ(QueryScalar(&engine_, "select count(*) from log"), Value::Int(2));
}

TEST_F(DetachedTest, FailureDoesNotUndoTriggeringTransaction) {
  // The detached action divides by zero; the insert that triggered it
  // must survive.
  ASSERT_OK(engine_.Execute(
      "create rule bad when inserted into t "
      "then insert into log (select a / 0 from inserted t)"));
  ASSERT_OK(engine_.rules().SetDetached("bad", true));

  ASSERT_OK_AND_ASSIGN(ExecutionTrace trace,
                       engine_.ExecuteBlock("insert into t values (1)"));
  ASSERT_EQ(trace.detached_errors.size(), 1u);
  EXPECT_NE(trace.detached_errors[0].find("bad"), std::string::npos);
  // Triggering transaction committed; detached one rolled back.
  EXPECT_EQ(QueryScalar(&engine_, "select count(*) from t"), Value::Int(1));
  EXPECT_EQ(QueryScalar(&engine_, "select count(*) from log"), Value::Int(0));
}

TEST_F(DetachedTest, DetachedActionTriggersOtherRulesInItsOwnTransaction) {
  ASSERT_OK(engine_.Execute("create table echo (a int)"));
  ASSERT_OK(engine_.Execute(
      "create rule audit when inserted into t "
      "then insert into log (select a from inserted t)"));
  ASSERT_OK(engine_.Execute(
      "create rule chain when inserted into log "
      "then insert into echo (select a from inserted log)"));
  ASSERT_OK(engine_.rules().SetDetached("audit", true));

  ASSERT_OK(engine_.Execute("insert into t values (7)"));
  EXPECT_EQ(QueryScalar(&engine_, "select a from echo"), Value::Int(7));
}

TEST_F(DetachedTest, RollbackOfTriggeringTransactionCancelsDeferral) {
  ASSERT_OK(engine_.Execute(
      "create rule audit when inserted into t "
      "then insert into log (select a from inserted t)"));
  ASSERT_OK(engine_.Execute(
      "create rule veto when inserted into t "
      "if exists (select * from inserted t where a < 0) then rollback"));
  ASSERT_OK(engine_.rules().SetDetached("audit", true));
  ASSERT_OK(engine_.Execute("create rule priority audit before veto"));

  // audit is deferred first, then veto rolls the transaction back: the
  // deferred action must never run.
  Status s = engine_.Execute("insert into t values (-5)");
  EXPECT_EQ(s.code(), StatusCode::kRolledBack);
  EXPECT_EQ(QueryScalar(&engine_, "select count(*) from log"), Value::Int(0));
}

TEST_F(DetachedTest, RollbackInDetachedCascadeOnlyUndoesItself) {
  // The detached action's own transaction contains a cascade that gets
  // vetoed — only that transaction is undone.
  ASSERT_OK(engine_.Execute(
      "create rule audit when inserted into t "
      "then insert into log (select a from inserted t)"));
  ASSERT_OK(engine_.Execute(
      "create rule cap when inserted into log "
      "if (select count(*) from log) > 0 then rollback"));
  ASSERT_OK(engine_.rules().SetDetached("audit", true));

  ASSERT_OK_AND_ASSIGN(ExecutionTrace trace,
                       engine_.ExecuteBlock("insert into t values (1)"));
  (void)trace;
  EXPECT_EQ(QueryScalar(&engine_, "select count(*) from t"), Value::Int(1));
  EXPECT_EQ(QueryScalar(&engine_, "select count(*) from log"), Value::Int(0));
}

TEST_F(DetachedTest, RunawayDetachedChainIsLimited) {
  RuleEngineOptions options;
  options.max_rule_firings = 20;
  Engine engine(options);
  ASSERT_OK(engine.Execute("create table t (a int)"));
  // Self-perpetuating detached rule: each detached transaction inserts
  // again, deferring itself forever.
  ASSERT_OK(engine.Execute(
      "create rule forever when inserted into t "
      "then insert into t (select a + 1 from inserted t)"));
  ASSERT_OK(engine.rules().SetDetached("forever", true));

  auto trace = engine.ExecuteBlock("insert into t values (0)");
  // The limit fires somewhere in the detached chain.
  EXPECT_EQ(trace.status().code(), StatusCode::kLimitExceeded);
}

TEST_F(DetachedTest, RollbackRuleCannotBeDetached) {
  ASSERT_OK(engine_.Execute(
      "create rule veto when inserted into t then rollback"));
  EXPECT_EQ(engine_.rules().SetDetached("veto", true).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine_.rules().SetDetached("nosuch", true).code(),
            StatusCode::kCatalogError);
}

// --- Failure paths and the retry/backoff policy ---

class DetachedRetryTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisarmAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }

  /// Engine with `retries` detached retries and an audit-style detached
  /// rule wired up.
  std::unique_ptr<Engine> MakeEngine(size_t retries) {
    RuleEngineOptions options;
    options.detached_retries = retries;
    options.detached_retry_backoff = std::chrono::milliseconds(1);
    options.verify_rollback_integrity = true;
    auto engine = std::make_unique<Engine>(options);
    EXPECT_OK(engine->Execute("create table t (a int)"));
    EXPECT_OK(engine->Execute("create table log (a int)"));
    EXPECT_OK(engine->Execute(
        "create rule audit when inserted into t "
        "then insert into log (select a from inserted t)"));
    EXPECT_OK(engine->rules().SetDetached("audit", true));
    return engine;
  }
};

TEST_F(DetachedRetryTest, TransientFaultSucceedsOnRetry) {
  auto engine = MakeEngine(/*retries=*/2);
  // First dispatch attempt fails; the retry goes through.
  FailpointRegistry::Instance().Arm(
      "rules.deferred.dispatch",
      {FailpointRegistry::Mode::kOnce, 1, StatusCode::kInjectedFault});
  ASSERT_OK_AND_ASSIGN(ExecutionTrace trace,
                       engine->ExecuteBlock("insert into t values (4)"));
  EXPECT_TRUE(trace.detached_errors.empty());
  ASSERT_EQ(trace.firings.size(), 1u);
  EXPECT_TRUE(trace.firings[0].detached);
  EXPECT_EQ(QueryScalar(engine.get(), "select count(*) from log"),
            Value::Int(1));
}

TEST_F(DetachedRetryTest, PersistentFaultGivesUpAfterCap) {
  auto engine = MakeEngine(/*retries=*/2);
  FailpointRegistry::Instance().Arm(
      "rules.deferred.dispatch",
      {FailpointRegistry::Mode::kAlways, 1, StatusCode::kInjectedFault});
  ASSERT_OK_AND_ASSIGN(ExecutionTrace trace,
                       engine->ExecuteBlock("insert into t values (4)"));
  // 1 initial attempt + 2 retries, then the error is recorded; the
  // committed triggering transaction is untouched.
  ASSERT_EQ(trace.detached_errors.size(), 1u);
  EXPECT_NE(trace.detached_errors[0].find("after 3 attempts"),
            std::string::npos)
      << trace.detached_errors[0];
  EXPECT_TRUE(trace.firings.empty());
  EXPECT_EQ(FailpointRegistry::Instance().HitCount("rules.deferred.dispatch"),
            3u);
  FailpointRegistry::Instance().DisarmAll();
  EXPECT_EQ(QueryScalar(engine.get(), "select count(*) from t"),
            Value::Int(1));
  EXPECT_EQ(QueryScalar(engine.get(), "select count(*) from log"),
            Value::Int(0));
}

TEST_F(DetachedRetryTest, ActionFailureIsRetriedNotJustDispatch) {
  auto engine = MakeEngine(/*retries=*/1);
  // The failure lands inside the detached action's own transaction (on
  // its storage path), not at dispatch; the retry must still happen.
  FailpointRegistry::Instance().Arm(
      "storage.insert.pre",
      {FailpointRegistry::Mode::kNth, 2, StatusCode::kResourceExhausted});
  ASSERT_OK_AND_ASSIGN(ExecutionTrace trace,
                       engine->ExecuteBlock("insert into t values (4)"));
  // Hit 1: the triggering insert (passes). Hit 2: the detached action's
  // insert into log (fails, rolls back its transaction). The retry's
  // insert is hit 3 (passes).
  EXPECT_TRUE(trace.detached_errors.empty());
  EXPECT_EQ(QueryScalar(engine.get(), "select count(*) from log"),
            Value::Int(1));
}

TEST_F(DetachedRetryTest, ZeroRetriesPreservesSingleAttemptSemantics) {
  auto engine = MakeEngine(/*retries=*/0);
  FailpointRegistry::Instance().Arm(
      "rules.deferred.dispatch",
      {FailpointRegistry::Mode::kAlways, 1, StatusCode::kInjectedFault});
  ASSERT_OK_AND_ASSIGN(ExecutionTrace trace,
                       engine->ExecuteBlock("insert into t values (4)"));
  ASSERT_EQ(trace.detached_errors.size(), 1u);
  // No "(after N attempts)" annotation for a single attempt.
  EXPECT_EQ(trace.detached_errors[0].find("attempts"), std::string::npos);
  EXPECT_EQ(FailpointRegistry::Instance().HitCount("rules.deferred.dispatch"),
            1u);
}

TEST_F(DetachedTest, DetachBothWaysRestoresImmediateSemantics) {
  ASSERT_OK(engine_.Execute(
      "create rule audit when inserted into t "
      "then insert into log (select a from inserted t)"));
  ASSERT_OK(engine_.rules().SetDetached("audit", true));
  ASSERT_OK(engine_.rules().SetDetached("audit", false));
  ASSERT_OK_AND_ASSIGN(ExecutionTrace trace,
                       engine_.ExecuteBlock("insert into t values (1)"));
  ASSERT_EQ(trace.firings.size(), 1u);
  EXPECT_FALSE(trace.firings[0].detached);
}

}  // namespace
}  // namespace sopr
