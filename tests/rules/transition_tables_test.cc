// TransitionTableResolver unit tests: each §3 transition table kind,
// column filtering, base-table passthrough, and SQL-level usage.

#include "rules/transition_tables.h"

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "test_util.h"

namespace sopr {
namespace {

class TransitionTablesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.CreateTable(TableSchema(
        "emp", {{"name", ValueType::kString},
                {"salary", ValueType::kDouble},
                {"dept_no", ValueType::kInt}})));
  }

  Result<TupleHandle> Insert(const char* name, double salary, int dept) {
    return db_.InsertRow("emp", Row{Value::String(name), Value::Double(salary),
                                    Value::Int(dept)});
  }

  Database db_;
  TransInfo info_;
};

TEST_F(TransitionTablesTest, InsertedShowsCurrentValues) {
  ASSERT_OK_AND_ASSIGN(TupleHandle h, Insert("a", 100, 1));
  DmlEffect op;
  op.table = "emp";
  op.inserted.push_back(h);
  info_.ApplyOp(op);
  // A later (non-tracked) update changes the current value; `inserted t`
  // must show the CURRENT value (tuples "in the current state", §3).
  ASSERT_OK(db_.UpdateRow("emp", h, Row{Value::String("a"),
                                        Value::Double(999), Value::Int(1)}));

  TransitionTableResolver resolver(&db_, &info_);
  ASSERT_OK_AND_ASSIGN(Relation rel,
                       resolver.Resolve({TableRefKind::kInserted, "emp", "", ""}));
  ASSERT_EQ(rel.rows.size(), 1u);
  EXPECT_EQ(rel.rows[0].at(1), Value::Double(999));
  EXPECT_EQ(rel.handles[0], h);
}

TEST_F(TransitionTablesTest, DeletedShowsPreTransitionValues) {
  ASSERT_OK_AND_ASSIGN(TupleHandle h, Insert("victim", 50, 2));
  db_.CommitAll();
  Row old_row{Value::String("victim"), Value::Double(50), Value::Int(2)};
  ASSERT_OK(db_.DeleteRow("emp", h));
  DmlEffect op;
  op.table = "emp";
  op.deleted.emplace_back(h, old_row);
  info_.ApplyOp(op);

  TransitionTableResolver resolver(&db_, &info_);
  ASSERT_OK_AND_ASSIGN(Relation rel,
                       resolver.Resolve({TableRefKind::kDeleted, "emp", "", ""}));
  ASSERT_EQ(rel.rows.size(), 1u);
  EXPECT_EQ(rel.rows[0], old_row);
}

TEST_F(TransitionTablesTest, UpdatedColumnFilter) {
  ASSERT_OK_AND_ASSIGN(TupleHandle h1, Insert("a", 100, 1));
  ASSERT_OK_AND_ASSIGN(TupleHandle h2, Insert("b", 200, 2));
  db_.CommitAll();

  // h1's salary (col 1) updated; h2's dept_no (col 2) updated.
  DmlEffect op;
  op.table = "emp";
  op.updated.push_back(
      {h1, {1}, Row{Value::String("a"), Value::Double(100), Value::Int(1)}});
  op.updated.push_back(
      {h2, {2}, Row{Value::String("b"), Value::Double(200), Value::Int(2)}});
  info_.ApplyOp(op);
  ASSERT_OK(db_.UpdateRow("emp", h1, Row{Value::String("a"),
                                         Value::Double(111), Value::Int(1)}));
  ASSERT_OK(db_.UpdateRow("emp", h2, Row{Value::String("b"),
                                         Value::Double(200), Value::Int(9)}));

  TransitionTableResolver resolver(&db_, &info_);

  // `old updated emp.salary`: only h1.
  ASSERT_OK_AND_ASSIGN(
      Relation old_sal,
      resolver.Resolve({TableRefKind::kOldUpdated, "emp", "salary", ""}));
  ASSERT_EQ(old_sal.rows.size(), 1u);
  EXPECT_EQ(old_sal.handles[0], h1);
  EXPECT_EQ(old_sal.rows[0].at(1), Value::Double(100));

  // `new updated emp.salary`: current value of h1.
  ASSERT_OK_AND_ASSIGN(
      Relation new_sal,
      resolver.Resolve({TableRefKind::kNewUpdated, "emp", "salary", ""}));
  ASSERT_EQ(new_sal.rows.size(), 1u);
  EXPECT_EQ(new_sal.rows[0].at(1), Value::Double(111));

  // Unfiltered `old updated emp`: both tuples.
  ASSERT_OK_AND_ASSIGN(
      Relation all_old,
      resolver.Resolve({TableRefKind::kOldUpdated, "emp", "", ""}));
  EXPECT_EQ(all_old.rows.size(), 2u);

  // Unknown column in the filter is an error.
  EXPECT_FALSE(
      resolver.Resolve({TableRefKind::kOldUpdated, "emp", "nosuch", ""}).ok());
}

TEST_F(TransitionTablesTest, SelectedShowsCurrentValues) {
  ASSERT_OK_AND_ASSIGN(TupleHandle h, Insert("read", 75, 3));
  info_.ApplySelect({{"emp", h}});
  TransitionTableResolver resolver(&db_, &info_);
  ASSERT_OK_AND_ASSIGN(
      Relation rel, resolver.Resolve({TableRefKind::kSelectedTt, "emp", "", ""}));
  ASSERT_EQ(rel.rows.size(), 1u);
  EXPECT_EQ(rel.rows[0].at(0), Value::String("read"));
}

TEST_F(TransitionTablesTest, BaseTablePassthrough) {
  ASSERT_OK(Insert("x", 1, 1).status());
  ASSERT_OK(Insert("y", 2, 2).status());
  TransitionTableResolver resolver(&db_, &info_);
  ASSERT_OK_AND_ASSIGN(Relation rel,
                       resolver.Resolve({TableRefKind::kBase, "emp", "", ""}));
  EXPECT_EQ(rel.rows.size(), 2u);
}

TEST_F(TransitionTablesTest, EmptyInfoYieldsEmptyRelations) {
  ASSERT_OK(Insert("x", 1, 1).status());
  TransitionTableResolver resolver(&db_, &info_);
  for (TableRefKind kind :
       {TableRefKind::kInserted, TableRefKind::kDeleted,
        TableRefKind::kOldUpdated, TableRefKind::kNewUpdated,
        TableRefKind::kSelectedTt}) {
    ASSERT_OK_AND_ASSIGN(Relation rel, resolver.Resolve({kind, "emp", "", ""}));
    EXPECT_TRUE(rel.rows.empty());
  }
}

TEST_F(TransitionTablesTest, UnknownTableFails) {
  TransitionTableResolver resolver(&db_, &info_);
  EXPECT_FALSE(
      resolver.Resolve({TableRefKind::kInserted, "nosuch", "", ""}).ok());
}

TEST(TransitionTablesSql, JoinTransitionTableWithBaseTable) {
  // A rule condition can join a transition table against base tables —
  // the §3 design point that makes set-oriented rules composable with
  // ordinary SQL. Verified through the full engine.
  Engine engine;
  CreatePaperSchema(&engine);
  LoadOrgChart(&engine);
  ASSERT_OK(engine.Execute("create table log (name string, mgr int)"));
  ASSERT_OK(engine.Execute(
      "create rule r when deleted from emp "
      "then insert into log "
      "  (select d.name, dept.mgr_no from deleted emp d, dept "
      "   where d.dept_no = dept.dept_no)"));
  ASSERT_OK(engine.Execute(
      "delete from emp where name = 'Sam' or name = 'Bill'"));
  ASSERT_OK_AND_ASSIGN(QueryResult r,
                       engine.Query("select name, mgr from log order by name"));
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].at(0), Value::String("Bill"));
  EXPECT_EQ(r.rows[0].at(1), Value::Int(20));  // Bill's dept 2 mgr = Mary
  EXPECT_EQ(r.rows[1].at(1), Value::Int(30));  // Sam's dept 3 mgr = Jim
}

TEST(TransitionTablesSql, AliasedTransitionTables) {
  Engine engine;
  CreatePaperSchema(&engine);
  LoadOrgChart(&engine);
  ASSERT_OK(engine.Execute("create table pairs (a string, b string)"));
  // Self-join of a transition table via aliases.
  ASSERT_OK(engine.Execute(
      "create rule r when deleted from emp "
      "then insert into pairs "
      "  (select d1.name, d2.name from deleted emp d1, deleted emp d2 "
      "   where d1.emp_no < d2.emp_no)"));
  ASSERT_OK(engine.Execute(
      "delete from emp where name = 'Sam' or name = 'Sue'"));
  ASSERT_OK_AND_ASSIGN(QueryResult r, engine.Query("select * from pairs"));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].at(0), Value::String("Sam"));
  EXPECT_EQ(r.rows[0].at(1), Value::String("Sue"));
}

}  // namespace
}  // namespace sopr
