// Rule selection (§4.4): priority partial order with cycle rejection, and
// the three tie-breaking strategies.

#include "rules/selection.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sopr {
namespace {

TEST(PriorityGraph, DirectAndTransitiveOrder) {
  PriorityGraph g;
  ASSERT_OK(g.AddEdge("a", "b"));
  ASSERT_OK(g.AddEdge("b", "c"));
  EXPECT_TRUE(g.Higher("a", "b"));
  EXPECT_TRUE(g.Higher("b", "c"));
  EXPECT_TRUE(g.Higher("a", "c"));  // transitive
  EXPECT_FALSE(g.Higher("c", "a"));
  EXPECT_FALSE(g.Higher("b", "a"));
  EXPECT_FALSE(g.Higher("a", "a"));
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(PriorityGraph, RejectsCycles) {
  PriorityGraph g;
  ASSERT_OK(g.AddEdge("a", "b"));
  ASSERT_OK(g.AddEdge("b", "c"));
  EXPECT_EQ(g.AddEdge("c", "a").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.AddEdge("b", "a").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.AddEdge("x", "x").code(), StatusCode::kInvalidArgument);
  // The failed additions must not have corrupted the graph.
  EXPECT_TRUE(g.Higher("a", "c"));
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(PriorityGraph, PartialOrderAllowsIncomparable) {
  PriorityGraph g;
  ASSERT_OK(g.AddEdge("a", "b"));
  ASSERT_OK(g.AddEdge("c", "d"));
  EXPECT_FALSE(g.Higher("a", "c"));
  EXPECT_FALSE(g.Higher("c", "a"));
}

TEST(PriorityGraph, RemoveRuleDropsEdges) {
  PriorityGraph g;
  ASSERT_OK(g.AddEdge("a", "b"));
  ASSERT_OK(g.AddEdge("b", "c"));
  g.RemoveRule("b");
  EXPECT_FALSE(g.Higher("a", "b"));
  EXPECT_FALSE(g.Higher("b", "c"));
  EXPECT_FALSE(g.Higher("a", "c"));  // path went through b
  EXPECT_EQ(g.num_edges(), 0u);
}

SelectionCandidate C(const std::string& name, uint64_t seq, uint64_t last) {
  return SelectionCandidate{name, seq, last};
}

TEST(SelectRule, EmptyReturnsMinusOne) {
  PriorityGraph g;
  EXPECT_EQ(SelectRule({}, g, TieBreak::kCreationOrder), -1);
}

TEST(SelectRule, PriorityDominates) {
  PriorityGraph g;
  ASSERT_OK(g.AddEdge("low_seq_late", "first"));
  std::vector<SelectionCandidate> candidates = {
      C("first", 0, 0),
      C("low_seq_late", 5, 9),
  };
  // Despite "first" being older, the prioritized rule wins.
  EXPECT_EQ(SelectRule(candidates, g, TieBreak::kCreationOrder), 1);
}

TEST(SelectRule, DominatedCandidateNeverPicked) {
  PriorityGraph g;
  ASSERT_OK(g.AddEdge("a", "b"));
  ASSERT_OK(g.AddEdge("b", "c"));
  std::vector<SelectionCandidate> candidates = {C("c", 0, 0), C("b", 1, 0)};
  // "a" is not triggered; among {b, c}, b dominates c transitively? No —
  // b > c directly. c is dominated.
  EXPECT_EQ(SelectRule(candidates, g, TieBreak::kCreationOrder), 1);
}

TEST(SelectRule, CreationOrderTieBreak) {
  PriorityGraph g;
  std::vector<SelectionCandidate> candidates = {C("b", 3, 9), C("a", 1, 2)};
  EXPECT_EQ(SelectRule(candidates, g, TieBreak::kCreationOrder), 1);
}

TEST(SelectRule, LeastRecentlyConsidered) {
  PriorityGraph g;
  std::vector<SelectionCandidate> candidates = {C("a", 0, 7), C("b", 1, 3),
                                                C("c", 2, 5)};
  EXPECT_EQ(SelectRule(candidates, g, TieBreak::kLeastRecentlyConsidered), 1);
}

TEST(SelectRule, MostRecentlyConsidered) {
  PriorityGraph g;
  std::vector<SelectionCandidate> candidates = {C("a", 0, 7), C("b", 1, 3),
                                                C("c", 2, 9)};
  EXPECT_EQ(SelectRule(candidates, g, TieBreak::kMostRecentlyConsidered), 2);
}

TEST(SelectRule, RecencyTiesFallBackToCreation) {
  PriorityGraph g;
  std::vector<SelectionCandidate> candidates = {C("a", 4, 0), C("b", 2, 0)};
  EXPECT_EQ(SelectRule(candidates, g, TieBreak::kLeastRecentlyConsidered), 1);
  EXPECT_EQ(SelectRule(candidates, g, TieBreak::kMostRecentlyConsidered), 1);
}

TEST(SelectRule, MixedPriorityAndRecency) {
  PriorityGraph g;
  ASSERT_OK(g.AddEdge("a", "b"));
  // a and c are maximal; recency decides between them.
  std::vector<SelectionCandidate> candidates = {C("a", 0, 9), C("b", 1, 0),
                                                C("c", 2, 1)};
  EXPECT_EQ(SelectRule(candidates, g, TieBreak::kLeastRecentlyConsidered), 2);
  EXPECT_EQ(SelectRule(candidates, g, TieBreak::kMostRecentlyConsidered), 0);
}

TEST(TieBreakNames, AllNamed) {
  EXPECT_STREQ(TieBreakName(TieBreak::kCreationOrder), "creation-order");
  EXPECT_STREQ(TieBreakName(TieBreak::kLeastRecentlyConsidered),
               "least-recently-considered");
  EXPECT_STREQ(TieBreakName(TieBreak::kMostRecentlyConsidered),
               "most-recently-considered");
}

}  // namespace
}  // namespace sopr
