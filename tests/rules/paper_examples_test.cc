// Behavioral reproduction of every worked example in the paper (§3.1 and
// §4.5). Each test encodes the exact schema, rules, operation blocks, and
// expected outcome the paper describes in prose; see EXPERIMENTS.md.
//
// Every example runs under all three execution engines (row,
// pointer-vector, columnar — docs/EXECUTION.md), so the paper semantics
// are pinned independently of execution strategy.

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "test_util.h"

namespace sopr {
namespace {

/// The three execution engines of the differential oracle.
enum class EngineMode { kRow, kPointerVector, kColumnar };

const char* ModeName(EngineMode mode) {
  switch (mode) {
    case EngineMode::kRow:
      return "Row";
    case EngineMode::kPointerVector:
      return "PointerVector";
    case EngineMode::kColumnar:
      return "Columnar";
  }
  return "Unknown";
}

class PaperExampleTest : public ::testing::TestWithParam<EngineMode> {
 protected:
  RuleEngineOptions Options() const {
    RuleEngineOptions o;
    switch (GetParam()) {
      case EngineMode::kRow:
        o.vectorized_execution = false;
        break;
      case EngineMode::kPointerVector:
        o.columnar_execution = false;
        break;
      case EngineMode::kColumnar:
        break;  // both on by default
    }
    return o;
  }
};

std::string EngineName(const ::testing::TestParamInfo<EngineMode>& info) {
  return ModeName(info.param);
}

#define INSTANTIATE_PAPER_EXAMPLE(fixture)                              \
  INSTANTIATE_TEST_SUITE_P(Engines, fixture,                            \
                           ::testing::Values(EngineMode::kRow,          \
                                             EngineMode::kPointerVector, \
                                             EngineMode::kColumnar),    \
                           EngineName)

// --- Example 3.1: cascaded delete for referential integrity -------------
// "Whenever departments are deleted, delete all employees in the deleted
// departments."
constexpr const char* kRule31 =
    "create rule cascade31 "
    "when deleted from dept "
    "then delete from emp "
    "     where dept_no in (select dept_no from deleted dept)";

class Example31 : public PaperExampleTest {};
INSTANTIATE_PAPER_EXAMPLE(Example31);

TEST_P(Example31, DeletingDeptDeletesItsEmployees) {
  Engine engine(Options());
  CreatePaperSchema(&engine);
  LoadOrgChart(&engine);
  ASSERT_OK(engine.Execute(kRule31));

  // Delete department 3 (Sam and Sue work there).
  ASSERT_OK(engine.Execute("delete from dept where dept_no = 3"));

  EXPECT_EQ(EmpNames(&engine),
            (std::vector<std::string>{"Bill", "Jane", "Jim", "Mary"}));
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from dept"), Value::Int(3));
}

TEST_P(Example31, SetOrientedOverMultipleDeletedDepts) {
  // The rule is triggered once by the *set* of deleted departments.
  Engine engine(Options());
  CreatePaperSchema(&engine);
  LoadOrgChart(&engine);
  ASSERT_OK(engine.Execute(kRule31));

  ASSERT_OK_AND_ASSIGN(
      ExecutionTrace trace,
      engine.ExecuteBlock("delete from dept where dept_no = 2 or dept_no = 3"));

  // One firing handles both departments' employees.
  ASSERT_EQ(trace.firings.size(), 1u);
  EXPECT_EQ(trace.firings[0].rule, "cascade31");
  EXPECT_EQ(EmpNames(&engine),
            (std::vector<std::string>{"Jane", "Jim", "Mary"}));
}

TEST_P(Example31, NoTriggerWithoutDeptDelete) {
  Engine engine(Options());
  CreatePaperSchema(&engine);
  LoadOrgChart(&engine);
  ASSERT_OK(engine.Execute(kRule31));

  ASSERT_OK_AND_ASSIGN(
      ExecutionTrace trace,
      engine.ExecuteBlock("delete from emp where name = 'Bill'"));
  EXPECT_TRUE(trace.firings.empty());
  EXPECT_TRUE(trace.considered.empty());
}

// --- Example 3.2: salary-sum controlled cut -----------------------------
// "Whenever employee salaries are updated, if the total of the updated
// salaries exceeds their total before the updates, then give all
// employees of department #2 a 5% salary cut and department #3 a 15% cut."
constexpr const char* kRule32 =
    "create rule salarycut32 "
    "when updated emp.salary "
    "if (select sum(salary) from new updated emp.salary) > "
    "   (select sum(salary) from old updated emp.salary) "
    "then update emp set salary = 0.95 * salary where dept_no = 2; "
    "     update emp set salary = 0.85 * salary where dept_no = 3";

class Example32 : public PaperExampleTest {};
INSTANTIATE_PAPER_EXAMPLE(Example32);

TEST_P(Example32, RaiseTriggersCuts) {
  Engine engine(Options());
  CreatePaperSchema(&engine);
  LoadOrgChart(&engine);
  ASSERT_OK(engine.Execute(kRule32));

  // Raise Jane's salary: sum(new) > sum(old), so the cuts happen.
  // Note the rule then re-triggers on its own updates: after the first
  // firing, sum(new updated) for the *cut* tuples is LESS than sum(old),
  // so the condition is false and the cascade stops — exactly the §4.1
  // self-triggering analysis.
  ASSERT_OK(
      engine.Execute("update emp set salary = 95000 where name = 'Jane'"));

  EXPECT_EQ(QueryScalar(&engine,
                        "select salary from emp where name = 'Bill'"),
            Value::Double(25000 * 0.95));
  EXPECT_EQ(QueryScalar(&engine, "select salary from emp where name = 'Sam'"),
            Value::Double(40000 * 0.85));
  EXPECT_EQ(QueryScalar(&engine, "select salary from emp where name = 'Sue'"),
            Value::Double(42000 * 0.85));
  // Unrelated employees unchanged.
  EXPECT_EQ(QueryScalar(&engine, "select salary from emp where name = 'Mary'"),
            Value::Double(70000));
}

TEST_P(Example32, PayCutDoesNotTrigger) {
  Engine engine(Options());
  CreatePaperSchema(&engine);
  LoadOrgChart(&engine);
  ASSERT_OK(engine.Execute(kRule32));

  ASSERT_OK_AND_ASSIGN(
      ExecutionTrace trace,
      engine.ExecuteBlock(
          "update emp set salary = 80000 where name = 'Jane'"));

  // Triggered (salary updated) but the condition fails: no firing.
  ASSERT_EQ(trace.considered.size(), 1u);
  EXPECT_EQ(trace.considered[0].rule, "salarycut32");
  EXPECT_FALSE(trace.considered[0].condition_held);
  EXPECT_TRUE(trace.firings.empty());
  EXPECT_EQ(QueryScalar(&engine, "select salary from emp where name = 'Bill'"),
            Value::Double(25000));
}

TEST_P(Example32, OffsettingUpdatesInOneBlockDoNotTrigger) {
  // Set-oriented semantics: the condition sees the NET set of updated
  // salaries, so a raise and an equal cut in one block cancel.
  Engine engine(Options());
  CreatePaperSchema(&engine);
  LoadOrgChart(&engine);
  ASSERT_OK(engine.Execute(kRule32));

  ASSERT_OK_AND_ASSIGN(
      ExecutionTrace trace,
      engine.ExecuteBlock(
          "update emp set salary = salary + 1000 where name = 'Jane'; "
          "update emp set salary = salary - 1000 where name = 'Jane'"));

  ASSERT_EQ(trace.considered.size(), 1u);
  EXPECT_FALSE(trace.considered[0].condition_held);
  EXPECT_TRUE(trace.firings.empty());
}

// --- Example 3.3: composite transition predicate ------------------------
// "Whenever employees are inserted or deleted, or employee salaries or
// department numbers are updated, check if any employee's salary exceeds
// twice the average salary for his department. If so, delete the manager
// of department #5."
constexpr const char* kRule33 =
    "create rule bigearner33 "
    "when inserted into emp "
    "  or deleted from emp "
    "  or updated emp.salary "
    "  or updated emp.dept_no "
    "if exists (select * from emp e1 "
    "           where salary > 2 * (select avg(salary) from emp e2 "
    "                               where e2.dept_no = e1.dept_no)) "
    "then delete from emp "
    "     where emp_no = (select mgr_no from dept where dept_no = 5)";

class Example33 : public PaperExampleTest {};
INSTANTIATE_PAPER_EXAMPLE(Example33);

TEST_P(Example33, OutlierSalaryDeletesDept5Manager) {
  Engine engine(Options());
  CreatePaperSchema(&engine);
  LoadOrgChart(&engine);
  // Department 5 managed by Sue (emp_no 60).
  ASSERT_OK(engine.Execute("insert into dept values (5, 60)"));
  ASSERT_OK(engine.Execute(kRule33));

  // Insert an employee into dept 3 whose salary dwarfs the dept average:
  // dept 3 currently has Sam(40000), Sue(42000); a 500000 hire makes the
  // condition true.
  ASSERT_OK(
      engine.Execute("insert into emp values ('Rich', 70, 500000, 3)"));

  // Sue (manager of dept 5) was deleted.
  auto names = EmpNames(&engine);
  EXPECT_EQ(names, (std::vector<std::string>{"Bill", "Jane", "Jim", "Mary",
                                             "Rich", "Sam"}));
}

TEST_P(Example33, BalancedInsertDoesNotFire) {
  Engine engine(Options());
  CreatePaperSchema(&engine);
  LoadOrgChart(&engine);
  ASSERT_OK(engine.Execute("insert into dept values (5, 60)"));
  ASSERT_OK(engine.Execute(kRule33));

  ASSERT_OK_AND_ASSIGN(
      ExecutionTrace trace,
      engine.ExecuteBlock("insert into emp values ('Norm', 70, 41000, 3)"));
  ASSERT_EQ(trace.considered.size(), 1u);
  EXPECT_FALSE(trace.considered[0].condition_held);
  EXPECT_EQ(EmpNames(&engine).size(), 7u);
}

// --- Example 4.1: recursive manager cascade -----------------------------
// "Whenever managers are deleted, all employees in the departments
// managed by the deleted employees are also deleted, along with the
// departments themselves."
constexpr const char* kRule41 =
    "create rule mgrcascade41 "
    "when deleted from emp "
    "then delete from emp "
    "     where dept_no in (select dept_no from dept "
    "                       where mgr_no in (select emp_no from deleted emp)); "
    "     delete from dept "
    "     where mgr_no in (select emp_no from deleted emp)";

class Example41 : public PaperExampleTest {};
INSTANTIATE_PAPER_EXAMPLE(Example41);

TEST_P(Example41, RecursiveCascadeDeletesWholeSubtree) {
  Engine engine(Options());
  CreatePaperSchema(&engine);
  LoadOrgChart(&engine);
  ASSERT_OK(engine.Execute(kRule41));

  // Delete Jane: her dept-1 reports (Mary, Jim) go, then their reports
  // (Bill; Sam, Sue) go, and depts 1, 2, 3 are removed.
  ASSERT_OK(engine.Execute("delete from emp where name = 'Jane'"));

  EXPECT_TRUE(EmpNames(&engine).empty());
  // Dept 0 (managed by nobody) survives; 1, 2, 3 are gone.
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from dept"), Value::Int(1));
  EXPECT_EQ(QueryScalar(&engine, "select dept_no from dept"), Value::Int(0));
}

TEST_P(Example41, MidLevelDeleteOnlyRemovesSubtree) {
  Engine engine(Options());
  CreatePaperSchema(&engine);
  LoadOrgChart(&engine);
  ASSERT_OK(engine.Execute(kRule41));

  // Delete Jim: Sam and Sue (dept 3) go; dept 3 goes; others survive.
  ASSERT_OK(engine.Execute("delete from emp where name = 'Jim'"));

  EXPECT_EQ(EmpNames(&engine),
            (std::vector<std::string>{"Bill", "Jane", "Mary"}));
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from dept"), Value::Int(3));
}

TEST_P(Example41, TerminatesWhenNoFurtherManagers) {
  // Deleting a leaf employee triggers the rule whose action deletes
  // nothing; the rule is NOT re-triggered (its own transition is empty).
  Engine engine(Options());
  CreatePaperSchema(&engine);
  LoadOrgChart(&engine);
  ASSERT_OK(engine.Execute(kRule41));

  ASSERT_OK_AND_ASSIGN(ExecutionTrace trace,
                       engine.ExecuteBlock("delete from emp where name = 'Bill'"));
  ASSERT_EQ(trace.firings.size(), 1u);
  EXPECT_EQ(EmpNames(&engine),
            (std::vector<std::string>{"Jane", "Jim", "Mary", "Sam", "Sue"}));
}

// --- Example 4.2: controlled salary updates ------------------------------
// "Whenever salaries are updated, check the average of the updated
// salaries. If it exceeds 50K, then delete all employees whose salary
// was updated and now exceeds 80K."
constexpr const char* kRule42 =
    "create rule salaryguard42 "
    "when updated emp.salary "
    "if (select avg(salary) from new updated emp.salary) > 50K "
    "then delete from emp "
    "     where emp_no in (select emp_no from new updated emp.salary) "
    "       and salary > 80K";

class Example42 : public PaperExampleTest {};
INSTANTIATE_PAPER_EXAMPLE(Example42);

TEST_P(Example42, PaperScenarioBillAndMary) {
  // Paper: Bill 25K -> 30K, Mary 70K -> 85K. avg(30K, 85K) = 57.5K > 50K,
  // so employees whose salary was updated and now exceeds 80K (Mary) are
  // deleted.
  Engine engine(Options());
  CreatePaperSchema(&engine);
  ASSERT_OK(engine.Execute("insert into dept values (1, 10)"));
  ASSERT_OK(engine.Execute(
      "insert into emp values ('Bill', 40, 25000, 1); "
      "insert into emp values ('Mary', 20, 70000, 1)"));
  ASSERT_OK(engine.Execute(kRule42));

  ASSERT_OK(engine.Execute(
      "update emp set salary = 30000 where name = 'Bill'; "
      "update emp set salary = 85000 where name = 'Mary'"));

  EXPECT_EQ(EmpNames(&engine), (std::vector<std::string>{"Bill"}));
  EXPECT_EQ(QueryScalar(&engine, "select salary from emp where name = 'Bill'"),
            Value::Double(30000));
}

TEST_P(Example42, LowAverageKeepsEveryone) {
  Engine engine(Options());
  CreatePaperSchema(&engine);
  ASSERT_OK(engine.Execute("insert into dept values (1, 10)"));
  ASSERT_OK(engine.Execute(
      "insert into emp values ('Bill', 40, 25000, 1); "
      "insert into emp values ('Mary', 20, 70000, 1)"));
  ASSERT_OK(engine.Execute(kRule42));

  // avg(26K, 30K) < 50K: no deletion even though nothing exceeds 80K
  // anyway.
  ASSERT_OK(engine.Execute(
      "update emp set salary = 26000 where name = 'Bill'; "
      "update emp set salary = 30000 where name = 'Mary'"));
  EXPECT_EQ(EmpNames(&engine).size(), 2u);
}

// --- Example 4.3: interleaving of R1 (4.1) and R2 (4.2) ------------------
// The paper walks through the exact interleaved execution; this test
// checks both the final state and the firing order.
class Example43 : public PaperExampleTest {};
INSTANTIATE_PAPER_EXAMPLE(Example43);

TEST_P(Example43, InterleavedExecutionMatchesPaperTrace) {
  Engine engine(Options());
  CreatePaperSchema(&engine);
  LoadOrgChart(&engine);
  ASSERT_OK(engine.Execute(kRule41));
  ASSERT_OK(engine.Execute(kRule42));
  // "Let the rules be ordered so that rule R2 has priority over rule R1."
  ASSERT_OK(
      engine.Execute("create rule priority salaryguard42 before mgrcascade41"));

  // One block: delete Jane; update salaries so the average updated salary
  // exceeds 50K and Mary's updated salary exceeds 80K.
  ASSERT_OK_AND_ASSIGN(
      ExecutionTrace trace,
      engine.ExecuteBlock(
          "delete from emp where name = 'Jane'; "
          "update emp set salary = 85000 where name = 'Mary'; "
          "update emp set salary = 60000 where name = 'Jim'"));

  // Paper trace: R2 fires first (deletes Mary); R1 fires on {Jane, Mary}
  // deleting Bill and Jim (and depts 1, 2); R2 is triggered again but its
  // *new* transition contains no salary updates... (R2's own transition
  // was the Mary deletion; R1's transitions are deletes) — actually R2 is
  // only re-triggered by transitions containing emp.salary updates, so
  // after its first firing it never re-fires; R1 keeps cascading:
  // {Bill, Jim} -> deletes Sam, Sue (dept 3); {Sam, Sue} -> nothing.
  ASSERT_GE(trace.firings.size(), 2u);
  EXPECT_EQ(trace.firings[0].rule, "salaryguard42");
  EXPECT_EQ(trace.firings[1].rule, "mgrcascade41");

  // Every employee ends up deleted; only dept 0 remains.
  EXPECT_TRUE(EmpNames(&engine).empty());
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from dept"), Value::Int(1));

  // All firings after the first are the cascade rule.
  for (size_t i = 1; i < trace.firings.size(); ++i) {
    EXPECT_EQ(trace.firings[i].rule, "mgrcascade41") << "firing " << i;
  }
}

TEST_P(Example43, WithoutPriorityR1FirstAlsoConverges) {
  // §4.4: selection strategy affects intermediate traces; with creation-
  // order tie-break and no priority, R1 (defined first) goes first. The
  // final database state here happens to coincide because R1's cascade
  // deletes Mary before R2 ever fires — Mary's salary update is then
  // irrelevant. This test documents that alternative execution.
  Engine engine(Options());
  CreatePaperSchema(&engine);
  LoadOrgChart(&engine);
  ASSERT_OK(engine.Execute(kRule41));
  ASSERT_OK(engine.Execute(kRule42));

  ASSERT_OK_AND_ASSIGN(
      ExecutionTrace trace,
      engine.ExecuteBlock(
          "delete from emp where name = 'Jane'; "
          "update emp set salary = 85000 where name = 'Mary'; "
          "update emp set salary = 60000 where name = 'Jim'"));

  EXPECT_EQ(trace.firings[0].rule, "mgrcascade41");
  EXPECT_TRUE(EmpNames(&engine).empty());
}

}  // namespace
}  // namespace sopr
