// Unit tests for transition effects and Definition 2.1 composition:
// every cancellation law from §2.2 of the paper.

#include "rules/effect.h"

#include <gtest/gtest.h>

namespace sopr {
namespace {

TableEffect& T(TransitionEffect& e, const std::string& name) {
  return e.tables[name];
}

TEST(TransitionEffect, EmptyAndForTable) {
  TransitionEffect e;
  EXPECT_TRUE(e.Empty());
  EXPECT_TRUE(e.ForTable("emp").Empty());
  T(e, "emp").inserted.insert(1);
  EXPECT_FALSE(e.Empty());
  EXPECT_FALSE(e.ForTable("emp").Empty());
  EXPECT_TRUE(e.ForTable("dept").Empty());
}

TEST(Composition, InsertThenDeleteCancels) {
  // Paper: "an insertion followed by a deletion is not considered at all".
  TransitionEffect e1, e2;
  T(e1, "emp").inserted.insert(1);
  T(e2, "emp").deleted.insert(1);
  TransitionEffect c = TransitionEffect::Compose(e1, e2);
  EXPECT_TRUE(c.Empty());
}

TEST(Composition, InsertThenUpdateIsInsert) {
  // "an insertion followed by an update is considered as an insertion of
  // the updated tuple".
  TransitionEffect e1, e2;
  T(e1, "emp").inserted.insert(1);
  T(e2, "emp").updated[1] = {0, 2};
  TransitionEffect c = TransitionEffect::Compose(e1, e2);
  EXPECT_EQ(c.ForTable("emp").inserted, (std::set<TupleHandle>{1}));
  EXPECT_TRUE(c.ForTable("emp").updated.empty());
}

TEST(Composition, UpdateThenDeleteIsDelete) {
  // "if a tuple is updated by several operations and then deleted, we
  // consider only the deletion".
  TransitionEffect e1, e2;
  T(e1, "emp").updated[5] = {1};
  T(e2, "emp").deleted.insert(5);
  TransitionEffect c = TransitionEffect::Compose(e1, e2);
  EXPECT_TRUE(c.ForTable("emp").updated.empty());
  EXPECT_EQ(c.ForTable("emp").deleted, (std::set<TupleHandle>{5}));
}

TEST(Composition, MultipleUpdatesMergeColumns) {
  // "multiple updates of a tuple are considered as a single update".
  TransitionEffect e1, e2;
  T(e1, "emp").updated[5] = {1};
  T(e2, "emp").updated[5] = {2, 3};
  TransitionEffect c = TransitionEffect::Compose(e1, e2);
  EXPECT_EQ(c.ForTable("emp").updated.at(5), (std::set<size_t>{1, 2, 3}));
}

TEST(Composition, DeleteThenInsertIsNotUpdate) {
  // "we never consider deletion of a tuple followed by insertion of a new
  // tuple as an update" — handles are never reused, so the delete and
  // insert keep distinct handles.
  TransitionEffect e1, e2;
  T(e1, "emp").deleted.insert(5);
  T(e2, "emp").inserted.insert(6);  // new handle
  TransitionEffect c = TransitionEffect::Compose(e1, e2);
  EXPECT_EQ(c.ForTable("emp").deleted, (std::set<TupleHandle>{5}));
  EXPECT_EQ(c.ForTable("emp").inserted, (std::set<TupleHandle>{6}));
  EXPECT_TRUE(c.ForTable("emp").updated.empty());
}

TEST(Composition, IndependentTablesDoNotInterfere) {
  TransitionEffect e1, e2;
  T(e1, "emp").inserted.insert(1);
  T(e2, "dept").deleted.insert(2);
  TransitionEffect c = TransitionEffect::Compose(e1, e2);
  EXPECT_EQ(c.ForTable("emp").inserted, (std::set<TupleHandle>{1}));
  EXPECT_EQ(c.ForTable("dept").deleted, (std::set<TupleHandle>{2}));
}

TEST(Composition, IdentityWithEmpty) {
  TransitionEffect e, empty;
  T(e, "emp").inserted.insert(1);
  T(e, "emp").deleted.insert(2);
  T(e, "emp").updated[3] = {0};
  EXPECT_EQ(TransitionEffect::Compose(e, empty), e);
  EXPECT_EQ(TransitionEffect::Compose(empty, e), e);
}

TEST(Composition, SelectedComposesAndDropsDeleted) {
  TransitionEffect e1, e2;
  T(e1, "emp").selected.insert(1);
  T(e1, "emp").selected.insert(2);
  T(e2, "emp").deleted.insert(2);
  T(e2, "emp").selected.insert(3);
  TransitionEffect c = TransitionEffect::Compose(e1, e2);
  EXPECT_EQ(c.ForTable("emp").selected, (std::set<TupleHandle>{1, 3}));
}

TEST(WellFormed, DetectsOverlaps) {
  TransitionEffect ok;
  T(ok, "emp").inserted.insert(1);
  T(ok, "emp").deleted.insert(2);
  T(ok, "emp").updated[3] = {0};
  EXPECT_TRUE(ok.WellFormed());

  TransitionEffect bad;
  T(bad, "emp").inserted.insert(1);
  T(bad, "emp").deleted.insert(1);
  EXPECT_FALSE(bad.WellFormed());

  TransitionEffect bad2;
  T(bad2, "emp").deleted.insert(1);
  T(bad2, "emp").updated[1] = {0};
  EXPECT_FALSE(bad2.WellFormed());
}

TEST(ToStringRendering, IsReadable) {
  TransitionEffect e;
  T(e, "emp").inserted.insert(1);
  T(e, "emp").updated[3] = {0, 2};
  std::string s = e.ToString();
  EXPECT_NE(s.find("emp"), std::string::npos);
  EXPECT_NE(s.find("I={1}"), std::string::npos);
  EXPECT_EQ(TransitionEffect().ToString(), "<empty>");
}

}  // namespace
}  // namespace sopr
