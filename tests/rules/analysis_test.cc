// Static rule analysis (§6): triggering graph construction, loop
// warnings, and order-sensitivity detection.

#include "rules/analysis.h"

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "test_util.h"

namespace sopr {
namespace {

class AnalysisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CreatePaperSchema(&engine_);
    ASSERT_OK(engine_.Execute("create table log (name string)"));
  }

  std::vector<const Rule*> Rules() {
    std::vector<const Rule*> rules;
    for (const std::string& name : engine_.rules().RuleNames()) {
      auto rule = engine_.rules().GetRule(name);
      EXPECT_TRUE(rule.ok());
      rules.push_back(rule.value());
    }
    return rules;
  }

  bool HasWarning(const std::vector<AnalysisWarning>& warnings,
                  AnalysisWarning::Kind kind, const std::string& rule) {
    for (const AnalysisWarning& w : warnings) {
      if (w.kind != kind) continue;
      for (const std::string& r : w.rules) {
        if (r == rule) return true;
      }
    }
    return false;
  }

  Engine engine_;
};

TEST_F(AnalysisTest, SelfTriggerDetected) {
  // Example 4.1's recursive cascade is a (benign) self-trigger.
  ASSERT_OK(engine_.Execute(
      "create rule cascade when deleted from emp "
      "then delete from emp where dept_no in "
      "(select dept_no from dept where mgr_no in "
      " (select emp_no from deleted emp))"));
  RuleAnalyzer analyzer(Rules(), &engine_.rules().priorities());
  auto warnings = analyzer.Analyze();
  EXPECT_TRUE(
      HasWarning(warnings, AnalysisWarning::Kind::kSelfTrigger, "cascade"));
}

TEST_F(AnalysisTest, NoSelfTriggerForDisjointTables) {
  ASSERT_OK(engine_.Execute(
      "create rule logger when deleted from emp "
      "then insert into log (select name from deleted emp)"));
  RuleAnalyzer analyzer(Rules(), &engine_.rules().priorities());
  auto warnings = analyzer.Analyze();
  EXPECT_FALSE(
      HasWarning(warnings, AnalysisWarning::Kind::kSelfTrigger, "logger"));
}

TEST_F(AnalysisTest, ColumnSensitiveUpdateEdges) {
  // Action updates dept_no; rule triggers on salary only: no self edge.
  ASSERT_OK(engine_.Execute(
      "create rule move when updated emp.salary "
      "then update emp set dept_no = 0 where salary > 100000"));
  RuleAnalyzer a1(Rules(), &engine_.rules().priorities());
  EXPECT_FALSE(HasWarning(a1.Analyze(), AnalysisWarning::Kind::kSelfTrigger,
                          "move"));

  // Whereas updating salary itself is a self edge.
  ASSERT_OK(engine_.Execute(
      "create rule cut when updated emp.salary "
      "then update emp set salary = salary * 0.9 where salary > 100000"));
  RuleAnalyzer a2(Rules(), &engine_.rules().priorities());
  EXPECT_TRUE(
      HasWarning(a2.Analyze(), AnalysisWarning::Kind::kSelfTrigger, "cut"));
}

TEST_F(AnalysisTest, MutualCycleDetected) {
  ASSERT_OK(engine_.Execute(
      "create rule ping when inserted into emp "
      "then insert into log values ('e')"));
  ASSERT_OK(engine_.Execute(
      "create rule pong when inserted into log "
      "then insert into emp values ('x', 1, 1, 1)"));
  RuleAnalyzer analyzer(Rules(), &engine_.rules().priorities());
  auto warnings = analyzer.Analyze();
  bool found_cycle = false;
  for (const AnalysisWarning& w : warnings) {
    if (w.kind == AnalysisWarning::Kind::kCycle) found_cycle = true;
  }
  EXPECT_TRUE(found_cycle);
}

TEST_F(AnalysisTest, TriggerEdgesExposed) {
  ASSERT_OK(engine_.Execute(
      "create rule a when inserted into emp "
      "then insert into log values ('e')"));
  ASSERT_OK(engine_.Execute(
      "create rule b when inserted into log "
      "then delete from dept"));
  RuleAnalyzer analyzer(Rules(), &engine_.rules().priorities());
  bool a_to_b = false;
  for (const TriggerEdge& e : analyzer.edges()) {
    if (e.from == "a" && e.to == "b") a_to_b = true;
  }
  EXPECT_TRUE(a_to_b);
}

TEST_F(AnalysisTest, OrderSensitivityRequiresNoPriority) {
  ASSERT_OK(engine_.Execute(
      "create rule raise when inserted into emp "
      "then update emp set salary = salary * 1.1"));
  ASSERT_OK(engine_.Execute(
      "create rule cap when inserted into emp "
      "then update emp set salary = 100000 where salary > 100000"));

  RuleAnalyzer before(Rules(), &engine_.rules().priorities());
  bool sensitive = false;
  for (const AnalysisWarning& w : before.Analyze()) {
    if (w.kind == AnalysisWarning::Kind::kOrderSensitive) sensitive = true;
  }
  EXPECT_TRUE(sensitive);

  // Adding a priority silences the warning for the ordered pair.
  ASSERT_OK(engine_.Execute("create rule priority cap before raise"));
  RuleAnalyzer after(Rules(), &engine_.rules().priorities());
  bool still = false;
  for (const AnalysisWarning& w : after.Analyze()) {
    if (w.kind == AnalysisWarning::Kind::kOrderSensitive) still = true;
  }
  EXPECT_FALSE(still);
}

TEST_F(AnalysisTest, ActionWritesExtraction) {
  ASSERT_OK(engine_.Execute(
      "create rule multi when inserted into emp "
      "then insert into log values ('a'); "
      "     delete from dept where dept_no = 1; "
      "     update emp set salary = 0, dept_no = 1"));
  auto rule = engine_.rules().GetRule("multi");
  ASSERT_TRUE(rule.ok());
  auto writes = RuleAnalyzer::ActionWrites(*rule.value());
  ASSERT_EQ(writes.size(), 3u);
  EXPECT_EQ(writes[0].kind, BasicTransPred::Kind::kInsertedInto);
  EXPECT_EQ(writes[0].table, "log");
  EXPECT_EQ(writes[1].kind, BasicTransPred::Kind::kDeletedFrom);
  EXPECT_EQ(writes[2].kind, BasicTransPred::Kind::kUpdated);
  EXPECT_EQ(writes[2].columns,
            (std::vector<std::string>{"salary", "dept_no"}));
}

TEST_F(AnalysisTest, WarningToStringReadable) {
  AnalysisWarning w;
  w.kind = AnalysisWarning::Kind::kCycle;
  w.rules = {"a", "b"};
  w.detail = "why";
  std::string s = w.ToString();
  EXPECT_NE(s.find("cycle"), std::string::npos);
  EXPECT_NE(s.find("a -> b"), std::string::npos);
}

}  // namespace
}  // namespace sopr
