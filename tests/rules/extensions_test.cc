// Tests for the paper's §5 extensions implemented beyond the core:
// external procedure actions (§5.2), the footnote 8 alternative
// re-triggering semantics, and drop-table DDL with rule dependency
// checking.

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "rules/analysis.h"
#include "sql/parser.h"
#include "test_util.h"

namespace sopr {
namespace {

// --- §5.2 external procedures -------------------------------------------

class ProcedureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CreatePaperSchema(&engine_);
    LoadOrgChart(&engine_);
    ASSERT_OK(engine_.Execute("create table log (name string)"));
  }
  Engine engine_;
};

TEST_F(ProcedureTest, CallStatementParses) {
  auto stmt = Parser::ParseStatement(
      "create rule r when deleted from emp then call notify_hr");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& rule = static_cast<const CreateRuleStmt&>(*stmt.value());
  ASSERT_EQ(rule.action.size(), 1u);
  EXPECT_EQ(rule.action[0]->kind, StmtKind::kCall);
  EXPECT_EQ(rule.action[0]->ToString(), "call notify_hr");
}

TEST_F(ProcedureTest, ProcedureSeesTransitionTablesAndWrites) {
  int calls = 0;
  ASSERT_OK(engine_.rules().RegisterProcedure(
      "notify_hr", [&](ProcedureContext& ctx) -> Status {
        ++calls;
        // The procedure can query the triggering rule's transition tables.
        SOPR_ASSIGN_OR_RETURN(
            QueryResult gone,
            ctx.Query("select name from deleted emp order by name"));
        for (const Row& row : gone.rows) {
          SOPR_RETURN_NOT_OK(ctx.Execute("insert into log values ('" +
                                         row.at(0).AsString() + "')"));
        }
        return Status::OK();
      }));
  ASSERT_OK(engine_.Execute(
      "create rule hr when deleted from emp then call notify_hr"));

  ASSERT_OK(engine_.Execute(
      "delete from emp where name = 'Sam' or name = 'Sue'"));
  EXPECT_EQ(calls, 1);  // set-oriented: one call for the whole set
  ASSERT_OK_AND_ASSIGN(QueryResult log,
                       engine_.Query("select name from log order by name"));
  ASSERT_EQ(log.rows.size(), 2u);
  EXPECT_EQ(log.rows[0].at(0), Value::String("Sam"));
}

TEST_F(ProcedureTest, ProcedureWritesTriggerOtherRules) {
  // §5.2: "the effect on the database of executing an external procedure
  // still corresponds to a sequence of data manipulation operations" —
  // so they must cascade into other rules.
  ASSERT_OK(engine_.rules().RegisterProcedure(
      "writer", [](ProcedureContext& ctx) -> Status {
        return ctx.Execute("insert into log values ('from proc')");
      }));
  ASSERT_OK(engine_.Execute(
      "create rule a when deleted from emp then call writer"));
  ASSERT_OK(engine_.Execute("create table echo (name string)"));
  ASSERT_OK(engine_.Execute(
      "create rule b when inserted into log "
      "then insert into echo (select name from inserted log)"));

  ASSERT_OK(engine_.Execute("delete from emp where name = 'Bill'"));
  EXPECT_EQ(QueryScalar(&engine_, "select count(*) from echo"),
            Value::Int(1));
}

TEST_F(ProcedureTest, MissingProcedureAbortsTransaction) {
  ASSERT_OK(engine_.Execute(
      "create rule bad when deleted from emp then call nosuch"));
  Status s = engine_.Execute("delete from emp where name = 'Bill'");
  EXPECT_EQ(s.code(), StatusCode::kCatalogError);
  EXPECT_EQ(EmpNames(&engine_).size(), 6u);  // rolled back
}

TEST_F(ProcedureTest, ProcedureErrorAbortsTransaction) {
  ASSERT_OK(engine_.rules().RegisterProcedure(
      "failing", [](ProcedureContext&) -> Status {
        return Status::ExecutionError("external system unavailable");
      }));
  ASSERT_OK(engine_.Execute(
      "create rule r when deleted from emp then call failing"));
  Status s = engine_.Execute("delete from emp where name = 'Bill'");
  EXPECT_EQ(s.code(), StatusCode::kExecutionError);
  EXPECT_EQ(EmpNames(&engine_).size(), 6u);
}

TEST_F(ProcedureTest, DuplicateRegistrationRejected) {
  ASSERT_OK(engine_.rules().RegisterProcedure(
      "p", [](ProcedureContext&) { return Status::OK(); }));
  EXPECT_EQ(engine_.rules()
                .RegisterProcedure(
                    "p", [](ProcedureContext&) { return Status::OK(); })
                .code(),
            StatusCode::kCatalogError);
}

TEST_F(ProcedureTest, CallRejectedInExternalBlocks) {
  ASSERT_OK(engine_.rules().RegisterProcedure(
      "p", [](ProcedureContext&) { return Status::OK(); }));
  Status s = engine_.Execute("call p");
  EXPECT_FALSE(s.ok());
}

TEST_F(ProcedureTest, AnalysisFlagsOpaqueActions) {
  ASSERT_OK(engine_.rules().RegisterProcedure(
      "p", [](ProcedureContext&) { return Status::OK(); }));
  ASSERT_OK(
      engine_.Execute("create rule r when deleted from emp then call p"));
  auto rule = engine_.rules().GetRule("r");
  ASSERT_TRUE(rule.ok());
  RuleAnalyzer analyzer({rule.value()}, &engine_.rules().priorities());
  bool flagged = false;
  for (const AnalysisWarning& w : analyzer.Analyze()) {
    if (w.kind == AnalysisWarning::Kind::kOpaqueAction) flagged = true;
  }
  EXPECT_TRUE(flagged);
}

// --- Footnote 8: reset-on-consideration semantics ------------------------

class ResetPolicyTest : public ::testing::TestWithParam<MaintenanceMode> {
 protected:
  void SetUp() override {
    RuleEngineOptions options;
    options.maintenance = GetParam();
    engine_ = std::make_unique<Engine>(options);
    ASSERT_OK(engine_->Execute("create table t (a int)"));
    ASSERT_OK(engine_->Execute("create table u (a int)"));
    ASSERT_OK(engine_->Execute("create table log (a int)"));
  }
  std::unique_ptr<Engine> engine_;
};

TEST_P(ResetPolicyTest, DefaultSemanticsRemembersAcrossConsiderations) {
  // Watcher is triggered by inserts into t but its condition requires a u
  // row; helper (lower priority) inserts into u. Under the DEFAULT
  // semantics, watcher — whose condition failed at first — is
  // reconsidered with the composite effect still containing the t insert,
  // so it fires.
  ASSERT_OK(engine_->Execute(
      "create rule watcher when inserted into t "
      "if exists (select * from u) "
      "then insert into log (select a from inserted t)"));
  ASSERT_OK(engine_->Execute(
      "create rule helper when inserted into t "
      "then insert into u values (0)"));
  ASSERT_OK(engine_->Execute("create rule priority watcher before helper"));

  ASSERT_OK(engine_->Execute("insert into t values (7)"));
  EXPECT_EQ(QueryScalar(engine_.get(), "select a from log"), Value::Int(7));
}

TEST_P(ResetPolicyTest, ConsiderationResetForgetsTheTrigger) {
  // Same scenario, but watcher uses the footnote 8 alternative: its
  // composite transition resets at consideration, so when helper's
  // transition arrives, watcher's info contains only the u insert — the
  // t insert is forgotten and watcher is no longer triggered.
  ASSERT_OK(engine_->Execute(
      "create rule watcher when inserted into t "
      "if exists (select * from u) "
      "then insert into log (select a from inserted t)"));
  ASSERT_OK(engine_->Execute(
      "create rule helper when inserted into t "
      "then insert into u values (0)"));
  ASSERT_OK(engine_->Execute("create rule priority watcher before helper"));
  ASSERT_OK(engine_->rules().SetResetPolicy("watcher",
                                            ResetPolicy::kOnConsideration));

  ASSERT_OK(engine_->Execute("insert into t values (7)"));
  EXPECT_EQ(QueryScalar(engine_.get(), "select count(*) from log"),
            Value::Int(0));
}

TEST_P(ResetPolicyTest, ConsiderationResetIncludesOwnActionTransition) {
  // Footnote 8: the transition is measured "since the most recent point
  // at which it was chosen for consideration" — the rule's own action
  // transition happens after that point, so a self-feeding rule keeps
  // firing until its condition stops it (here: values reach 3).
  ASSERT_OK(engine_->Execute(
      "create rule climb when inserted into t "
      "if exists (select * from inserted t where a < 3) "
      "then insert into t (select a + 1 from inserted t where a < 3)"));
  ASSERT_OK(
      engine_->rules().SetResetPolicy("climb", ResetPolicy::kOnConsideration));

  ASSERT_OK(engine_->Execute("insert into t values (0)"));
  // 0 -> 1 -> 2 -> 3; the `inserted t` table under consideration-reset
  // contains only the newest insert each round.
  EXPECT_EQ(QueryScalar(engine_.get(), "select count(*) from t"),
            Value::Int(4));
  EXPECT_EQ(QueryScalar(engine_.get(), "select max(a) from t"),
            Value::Int(3));
}

TEST_P(ResetPolicyTest, PolicyOnUnknownRuleFails) {
  EXPECT_EQ(engine_->rules()
                .SetResetPolicy("nosuch", ResetPolicy::kOnConsideration)
                .code(),
            StatusCode::kCatalogError);
}

INSTANTIATE_TEST_SUITE_P(Modes, ResetPolicyTest,
                         ::testing::Values(MaintenanceMode::kPerRule,
                                           MaintenanceMode::kSharedLog));

// --- drop table DDL -------------------------------------------------------

TEST(DropTable, BasicAndDependencyChecked) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table a (x int)"));
  ASSERT_OK(engine.Execute("create table b (y int)"));
  ASSERT_OK(engine.Execute(
      "create rule r when inserted into a then delete from b"));

  // Both tables are referenced by the rule.
  EXPECT_EQ(engine.Execute("drop table a").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Execute("drop table b").code(),
            StatusCode::kInvalidArgument);

  // After dropping the rule, tables can go.
  ASSERT_OK(engine.Execute("drop rule r"));
  ASSERT_OK(engine.Execute("drop table a"));
  EXPECT_FALSE(engine.db().catalog().HasTable("a"));
  EXPECT_EQ(engine.Execute("drop table a").code(), StatusCode::kCatalogError);
  ASSERT_OK(engine.Execute("drop table b"));
}

TEST(DropTable, ReferenceViaConditionSubqueryCounts) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table a (x int)"));
  ASSERT_OK(engine.Execute("create table c (z int)"));
  ASSERT_OK(engine.Execute(
      "create rule r when inserted into a "
      "if exists (select * from c) then rollback"));
  EXPECT_EQ(engine.Execute("drop table c").code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sopr
