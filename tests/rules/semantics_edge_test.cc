// Edge cases of the §4 semantics exercised through the full engine:
// old-value capture across chained rule updates, updated-column unions in
// composite effects, self-referencing actions, and scalar subqueries in
// VALUES.

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "test_util.h"

namespace sopr {
namespace {

TEST(SemanticsEdge, OldUpdatedShowsPreTransactionValueAcrossChainedUpdates) {
  // The external block updates salary 100 -> 110; rule `bump` (higher
  // priority) updates it again 110 -> 120. When `audit` finally runs, its
  // composite transition spans both updates, so `old updated` must show
  // 100 (the value before the whole composite transition) and
  // `new updated` must show 120.
  Engine engine;
  ASSERT_OK(engine.Execute("create table emp (name string, salary double)"));
  ASSERT_OK(engine.Execute(
      "create table audit_log (name string, old_sal double, new_sal double)"));
  ASSERT_OK(engine.Execute("insert into emp values ('a', 100)"));

  ASSERT_OK(engine.Execute(
      "create rule bump when updated emp.salary "
      "if exists (select * from new updated emp.salary where salary = 110) "
      "then update emp set salary = 120 where salary = 110"));
  ASSERT_OK(engine.Execute(
      "create rule audit when updated emp.salary "
      "then insert into audit_log "
      "  (select o.name, o.salary, n.salary "
      "   from old updated emp.salary o, new updated emp.salary n "
      "   where o.name = n.name)"));
  ASSERT_OK(engine.Execute("create rule priority bump before audit"));

  ASSERT_OK(engine.Execute("update emp set salary = 110 where name = 'a'"));

  // audit fired twice: once for the composite (100 -> 120), and once
  // re-triggered by... its own transition contains no updates, so only
  // once? bump fires first (110->120); audit then sees composite
  // 100->120. bump is re-triggered by its own update (120) but its
  // condition fails. audit's own insert doesn't update salaries.
  ASSERT_OK_AND_ASSIGN(
      QueryResult log,
      engine.Query("select old_sal, new_sal from audit_log"));
  ASSERT_EQ(log.rows.size(), 1u);
  EXPECT_EQ(log.rows[0].at(0), Value::Double(100));
  EXPECT_EQ(log.rows[0].at(1), Value::Double(120));
}

TEST(SemanticsEdge, UpdatedColumnsUnionAcrossTransitions) {
  // External block updates column a; a higher-priority rule updates
  // column b of the same tuple. A rule watching `updated t.b` must then
  // be triggered by the COMPOSITE effect even though the external block
  // never touched b.
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (k int, a int, b int)"));
  ASSERT_OK(engine.Execute("create table log (k int)"));
  ASSERT_OK(engine.Execute("insert into t values (1, 10, 20)"));
  ASSERT_OK(engine.Execute(
      "create rule touch_b when updated t.a "
      "then update t set b = b + 1 where k in "
      "  (select k from new updated t.a)"));
  ASSERT_OK(engine.Execute(
      "create rule watch_b when updated t.b "
      "then insert into log (select k from new updated t.b)"));
  ASSERT_OK(engine.Execute("create rule priority touch_b before watch_b"));

  ASSERT_OK(engine.Execute("update t set a = 11 where k = 1"));
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from log"), Value::Int(1));

  // And the OLD value of b visible to watch_b is b's value before
  // touch_b's update (20), since watch_b never fired before.
  ASSERT_OK(engine.Execute("drop rule watch_b"));
  ASSERT_OK(engine.Execute(
      "create rule watch_b2 when updated t.b "
      "then insert into log (select b from old updated t.b)"));
  ASSERT_OK(engine.Execute("update t set a = 12 where k = 1"));
  ASSERT_OK_AND_ASSIGN(QueryResult log,
                       engine.Query("select k from log order by k"));
  ASSERT_EQ(log.rows.size(), 2u);
  EXPECT_EQ(log.rows[1].at(0), Value::Int(21));  // b before the 2nd bump
}

TEST(SemanticsEdge, SelfReferencingInsertSelectInAction) {
  // A rule action that inserts into its own triggering table via a
  // select over the transition table (bounded by its condition).
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (gen int, v int)"));
  ASSERT_OK(engine.Execute(
      "create rule doubler when inserted into t "
      "if exists (select * from inserted t where gen < 3) "
      "then insert into t "
      "  (select gen + 1, v * 2 from inserted t where gen < 3)"));

  ASSERT_OK(engine.Execute("insert into t values (0, 1), (0, 5)"));
  // Generations 0..3 of both seeds: 8 rows.
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from t"), Value::Int(8));
  EXPECT_EQ(QueryScalar(&engine, "select max(v) from t"), Value::Int(40));
  EXPECT_EQ(QueryScalar(&engine,
                        "select count(*) from t where gen = 3"),
            Value::Int(2));
}

TEST(SemanticsEdge, ScalarSubqueryInValues) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table src (v int)"));
  ASSERT_OK(engine.Execute("create table dst (total int)"));
  ASSERT_OK(engine.Execute("insert into src values (3), (4)"));
  ASSERT_OK(engine.Execute(
      "insert into dst values ((select sum(v) from src))"));
  EXPECT_EQ(QueryScalar(&engine, "select total from dst"), Value::Int(7));
}

TEST(SemanticsEdge, RollbackMidSequencePreservesNothing) {
  // Three rules by priority: first logs, second rolls back, third never
  // runs. The log insert from the first rule must be undone.
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (a int)"));
  ASSERT_OK(engine.Execute("create table log (a int)"));
  ASSERT_OK(engine.Execute(
      "create rule first_log when inserted into t "
      "then insert into log values (1)"));
  ASSERT_OK(engine.Execute(
      "create rule second_veto when inserted into t then rollback"));
  ASSERT_OK(engine.Execute(
      "create rule third_never when inserted into t "
      "then insert into log values (3)"));
  ASSERT_OK(engine.Execute("create rule priority first_log before second_veto"));
  ASSERT_OK(
      engine.Execute("create rule priority second_veto before third_never"));

  ASSERT_OK_AND_ASSIGN(ExecutionTrace trace,
                       engine.ExecuteBlock("insert into t values (1)"));
  EXPECT_TRUE(trace.rolled_back);
  ASSERT_EQ(trace.firings.size(), 1u);  // first_log fired, then undone
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from log"), Value::Int(0));
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from t"), Value::Int(0));
}

TEST(SemanticsEdge, PlainUpdatedTableAndColumnVariantsTogether) {
  // `updated t` (any column) and `updated t.a` predicates in one rule's
  // disjunction; transition tables of both shapes in the action.
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (k int, a int, b int)"));
  ASSERT_OK(engine.Execute("create table log (k int, what string)"));
  ASSERT_OK(engine.Execute("insert into t values (1, 10, 20), (2, 30, 40)"));
  ASSERT_OK(engine.Execute(
      "create rule watch when updated t "
      "then insert into log "
      "  (select k, 'any' from new updated t); "
      "insert into log "
      "  (select k, 'a' from new updated t.a)"));

  // Update only b of row 1: `new updated t` sees it, `new updated t.a`
  // is empty.
  ASSERT_OK(engine.Execute("update t set b = 21 where k = 1"));
  EXPECT_EQ(QueryScalar(&engine,
                        "select count(*) from log where what = 'any'"),
            Value::Int(1));
  EXPECT_EQ(QueryScalar(&engine,
                        "select count(*) from log where what = 'a'"),
            Value::Int(0));

  // Update a of row 2: both transition tables populated.
  ASSERT_OK(engine.Execute("update t set a = 31 where k = 2"));
  EXPECT_EQ(QueryScalar(&engine,
                        "select count(*) from log where what = 'any'"),
            Value::Int(2));
  EXPECT_EQ(QueryScalar(&engine,
                        "select count(*) from log where what = 'a'"),
            Value::Int(1));
}

TEST(SemanticsEdge, DeleteThenInsertIsNeverAnUpdate) {
  // §2.2: deleting a tuple and inserting an identical one is a delete
  // plus an insert — never an update. A rule watching updates must not
  // fire; rules watching inserts and deletes both must.
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (k int)"));
  ASSERT_OK(engine.Execute("create table log (what string)"));
  ASSERT_OK(engine.Execute("insert into t values (1)"));
  ASSERT_OK(engine.Execute(
      "create rule u when updated t then insert into log values ('u')"));
  ASSERT_OK(engine.Execute(
      "create rule i when inserted into t then insert into log values ('i')"));
  ASSERT_OK(engine.Execute(
      "create rule d when deleted from t then insert into log values ('d')"));

  ASSERT_OK(engine.Execute(
      "delete from t where k = 1; insert into t values (1)"));
  ASSERT_OK_AND_ASSIGN(QueryResult log,
                       engine.Query("select what from log order by what"));
  ASSERT_EQ(log.rows.size(), 2u);
  EXPECT_EQ(log.rows[0].at(0), Value::String("d"));
  EXPECT_EQ(log.rows[1].at(0), Value::String("i"));
}

}  // namespace
}  // namespace sopr
