// Engine-level three-way differential oracle (docs/EXECUTION.md): every
// execution strategy in src/exec/ must be observationally
// indistinguishable from the row-at-a-time path it replaces. Four
// engines differing ONLY in execution strategy — row
// (vectorized_execution = false), pointer-vector (vectorized on,
// columnar_execution = false), columnar (both on, typed kernels +
// column-major hash-join digests), and columnar with the build-side
// budget forced to zero (nested-loop fallback) — run identical seeded
// random workloads over a rule set with cascades, aggregate conditions,
// NULL-heavy predicates, a transition ⋈ base join, and priorities.
// After every block: identical status codes, identical firing traces
// (considered rules, condition outcomes, fired rules, detached flags,
// rollbacks, retrieved result sets), and bit-identical
// Database::Checksum / Engine::StateChecksum.
//
// The suite is deterministic (fixed seeds, no timing dependence), so a
// 30x rerun is stable by construction; vectorized_differential_tsan_test
// reruns it under TSan when -DSOPR_SANITIZE=thread.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "exec/row_batch.h"
#include "query/result_set.h"
#include "test_util.h"

namespace sopr {
namespace {

/// Cascades + aggregate condition + NULL-heavy predicate + transition ⋈
/// base join + priorities: every execution feature the vectorized layer
/// touches, in one rule set.
void DefineRuleSet(Engine* engine) {
  ASSERT_OK(engine->Execute("create table t (a int, b int)"));
  ASSERT_OK(engine->Execute("create table u (a int, c int)"));
  ASSERT_OK(engine->Execute("create table log (a int)"));
  // Cascade: deleting from t deletes matching u rows, which triggers up.
  ASSERT_OK(engine->Execute(
      "create rule cas when deleted from t "
      "then delete from u where a in (select a from deleted t)"));
  ASSERT_OK(engine->Execute(
      "create rule up when deleted from u "
      "then update t set b = b + 1 where a in (select a from deleted u)"));
  // Aggregate condition over the transition set.
  ASSERT_OK(engine->Execute(
      "create rule lg when inserted into t "
      "if (select count(*) from inserted t) > 1 "
      "then insert into log (select a from inserted t)"));
  // Transition ⋈ base join in the action: the hash-join path.
  ASSERT_OK(engine->Execute(
      "create rule jn when updated t.b "
      "then insert into log (select u.c from new updated t.b x, u "
      "where x.a = u.a)"));
  // NULL-heavy predicate over the base table.
  ASSERT_OK(engine->Execute(
      "create rule nn when inserted into u "
      "if exists (select * from inserted u where c is null) "
      "then update u set c = 0 where c is null"));
  ASSERT_OK(engine->Execute("create rule priority lg before cas"));
  ASSERT_OK(engine->Execute("create rule priority jn before nn"));
}

/// Random block: multi-row inserts (some NULL), IN/OR/IS NULL deletes,
/// arithmetic updates, reads, and occasional division-by-zero ops so
/// error codes get differentially checked too.
std::string RandomBlock(std::mt19937* rng, int step) {
  std::uniform_int_distribution<int> key(0, 15);
  std::uniform_int_distribution<int> pick(0, 6);
  std::string block;
  int ops = 1 + (*rng)() % 3;
  for (int i = 0; i < ops; ++i) {
    if (!block.empty()) block += "; ";
    switch (pick(*rng)) {
      case 0:
        block += "insert into t values (" + std::to_string(key(*rng)) + ", " +
                 std::to_string(step) + "), (" + std::to_string(key(*rng)) +
                 ", null)";
        break;
      case 1:
        block += "insert into u values (" + std::to_string(key(*rng)) +
                 ", null), (" + std::to_string(key(*rng)) + ", " +
                 std::to_string(step) + ")";
        break;
      case 2:
        block += "delete from t where a = " + std::to_string(key(*rng)) +
                 " or b is null";
        break;
      case 3:
        block += "delete from u where a in (" + std::to_string(key(*rng)) +
                 ", " + std::to_string(key(*rng)) + ")";
        break;
      case 4:
        block += "update t set b = b * 2 + 1 where a < " +
                 std::to_string(key(*rng));
        break;
      case 5:
        block += "select a, b from t where b between 0 and " +
                 std::to_string(10 + key(*rng)) + " order by a, b";
        break;
      default:
        // Errors on any row with b = step (division by zero): both
        // paths must fail with the identical code and roll back alike.
        block += "update t set b = 1 / (b - " + std::to_string(step) +
                 ") where a = " + std::to_string(key(*rng));
        break;
    }
  }
  return block;
}

/// Canonical trace signature: everything ExecutionTrace reports, in
/// execution order.
std::string TraceSig(const ExecutionTrace& trace) {
  std::string sig;
  for (const Consideration& c : trace.considered) {
    sig += "C:" + c.rule + (c.condition_held ? "+" : "-") + ";";
  }
  for (const RuleFiring& f : trace.firings) {
    sig += "F:" + f.rule + (f.detached ? "*" : "") + ";";
  }
  for (const QueryResult& r : trace.retrieved) {
    sig += "R:" + FormatResult(r) + ";";
  }
  if (trace.rolled_back) sig += "RB:" + trace.rollback_rule + ";";
  for (const std::string& e : trace.detached_errors) sig += "DE:" + e + ";";
  return sig;
}

std::string Dump(Engine* engine, const std::string& table,
                 const std::string& cols) {
  auto result =
      engine->Query("select " + cols + " from " + table + " order by " + cols);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? FormatResult(result.value()) : "<error>";
}

class VectorizedDifferential : public ::testing::TestWithParam<uint32_t> {};

TEST_P(VectorizedDifferential, RowVectorAndColumnarPathsAreBitIdentical) {
  RuleEngineOptions scalar_opts;
  scalar_opts.vectorized_execution = false;
  RuleEngineOptions vector_opts;  // the PR 9 pointer-vector engine
  vector_opts.vectorized_execution = true;
  vector_opts.columnar_execution = false;
  RuleEngineOptions columnar_opts;
  columnar_opts.vectorized_execution = true;
  columnar_opts.columnar_execution = true;
  RuleEngineOptions capped_opts = columnar_opts;
  capped_opts.max_hash_build_rows = 1;  // multi-row builds all fall back

  Engine scalar(scalar_opts);
  Engine vector(vector_opts);
  Engine columnar(columnar_opts);
  Engine capped(capped_opts);
  DefineRuleSet(&scalar);
  DefineRuleSet(&vector);
  DefineRuleSet(&columnar);
  DefineRuleSet(&capped);

  const uint64_t builds_before =
      exec::GlobalStats().hash_join_builds.load();
  const uint64_t columnar_builds_before =
      exec::GlobalStats().hash_join_columnar_builds.load();
  const uint64_t fallbacks_before =
      exec::GlobalStats().hash_join_fallbacks.load();
  const uint64_t chunks_before =
      exec::GlobalStats().columnar_chunks.load();

  std::mt19937 rng(GetParam() * 7919u + 1);
  for (int step = 0; step < 30; ++step) {
    std::string block = RandomBlock(&rng, step);

    auto ts = scalar.ExecuteBlock(block);
    auto tv = vector.ExecuteBlock(block);
    auto tl = columnar.ExecuteBlock(block);
    auto tc = capped.ExecuteBlock(block);

    ASSERT_EQ(ts.ok(), tv.ok()) << "step " << step << ": " << block;
    ASSERT_EQ(ts.ok(), tl.ok()) << "step " << step << ": " << block;
    ASSERT_EQ(ts.ok(), tc.ok()) << "step " << step << ": " << block;
    if (!ts.ok()) {
      EXPECT_EQ(ts.status().code(), tv.status().code())
          << "step " << step << ": " << block;
      EXPECT_EQ(ts.status().message(), tv.status().message())
          << "step " << step << ": " << block;
      EXPECT_EQ(ts.status().code(), tl.status().code())
          << "step " << step << ": " << block;
      EXPECT_EQ(ts.status().message(), tl.status().message())
          << "step " << step << ": " << block;
      EXPECT_EQ(ts.status().code(), tc.status().code())
          << "step " << step << ": " << block;
    } else {
      EXPECT_EQ(TraceSig(ts.value()), TraceSig(tv.value()))
          << "step " << step << ": " << block;
      EXPECT_EQ(TraceSig(ts.value()), TraceSig(tl.value()))
          << "step " << step << ": " << block;
      EXPECT_EQ(TraceSig(ts.value()), TraceSig(tc.value()))
          << "step " << step << ": " << block;
    }

    // Bit-exact state after EVERY block, not just at the end: handles,
    // values, undo state — everything Checksum folds in.
    ASSERT_EQ(scalar.db().Checksum(), vector.db().Checksum())
        << "step " << step << ": " << block;
    ASSERT_EQ(scalar.db().Checksum(), columnar.db().Checksum())
        << "step " << step << ": " << block;
    ASSERT_EQ(scalar.db().Checksum(), capped.db().Checksum())
        << "step " << step << ": " << block;
    ASSERT_EQ(scalar.StateChecksum(), vector.StateChecksum())
        << "step " << step << ": " << block;
    ASSERT_EQ(scalar.StateChecksum(), columnar.StateChecksum())
        << "step " << step << ": " << block;
  }

  EXPECT_EQ(Dump(&scalar, "t", "a, b"), Dump(&vector, "t", "a, b"));
  EXPECT_EQ(Dump(&scalar, "u", "a, c"), Dump(&vector, "u", "a, c"));
  EXPECT_EQ(Dump(&scalar, "log", "a"), Dump(&vector, "log", "a"));
  EXPECT_EQ(Dump(&scalar, "t", "a, b"), Dump(&columnar, "t", "a, b"));
  EXPECT_EQ(Dump(&scalar, "u", "a, c"), Dump(&columnar, "u", "a, c"));
  EXPECT_EQ(Dump(&scalar, "log", "a"), Dump(&columnar, "log", "a"));
  EXPECT_EQ(Dump(&scalar, "t", "a, b"), Dump(&capped, "t", "a, b"));

  // The workload actually exercised every strategy: the vectorized
  // engines built hash tables (the columnar one through the bulk digest
  // loops), the capped engine took the counted nested-loop fallback, and
  // the columnar engines evaluated kernel chunks. (GlobalStats is
  // process-wide; deltas only.)
  EXPECT_GT(exec::GlobalStats().hash_join_builds.load(), builds_before);
  EXPECT_GT(exec::GlobalStats().hash_join_columnar_builds.load(),
            columnar_builds_before);
  EXPECT_GT(exec::GlobalStats().hash_join_fallbacks.load(), fallbacks_before);
  EXPECT_GT(exec::GlobalStats().columnar_chunks.load(), chunks_before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorizedDifferential,
                         ::testing::Range(0u, 10u));

// The paper schema end to end: Example 4.1's cascade plus an aggregate
// guard, row vs pointer-vector vs columnar, including a rollback path.
TEST(VectorizedDifferentialFixed, PaperCascadeAndRollbackMatch) {
  RuleEngineOptions scalar_opts;
  scalar_opts.vectorized_execution = false;
  RuleEngineOptions vector_opts;
  vector_opts.columnar_execution = false;
  Engine scalar(scalar_opts);
  Engine vector(vector_opts);
  Engine columnar;  // vectorized + columnar by default
  for (Engine* e : {&scalar, &vector, &columnar}) {
    CreatePaperSchema(e);
    LoadOrgChart(e);
    ASSERT_OK(e->Execute(
        "create rule chain when deleted from emp "
        "then delete from emp where dept_no in "
        "  (select dept_no from dept where mgr_no in "
        "   (select emp_no from deleted emp)); "
        "delete from dept where mgr_no in (select emp_no from deleted emp)"));
    ASSERT_OK(e->Execute(
        "create rule guard when deleted from emp "
        "if (select count(*) from emp) < 3 then rollback"));
  }

  for (const char* victim : {"Jane", "Jim", "Mary", "Bill"}) {
    std::string sql = std::string("delete from emp where name = '") + victim +
                      "'";
    auto ts = scalar.ExecuteBlock(sql);
    auto tv = vector.ExecuteBlock(sql);
    auto tl = columnar.ExecuteBlock(sql);
    ASSERT_EQ(ts.ok(), tv.ok()) << sql;
    ASSERT_EQ(ts.ok(), tl.ok()) << sql;
    if (ts.ok()) {
      EXPECT_EQ(TraceSig(ts.value()), TraceSig(tv.value())) << sql;
      EXPECT_EQ(TraceSig(ts.value()), TraceSig(tl.value())) << sql;
    } else {
      EXPECT_EQ(ts.status().code(), tv.status().code()) << sql;
      EXPECT_EQ(ts.status().code(), tl.status().code()) << sql;
    }
    ASSERT_EQ(scalar.db().Checksum(), vector.db().Checksum()) << sql;
    ASSERT_EQ(scalar.db().Checksum(), columnar.db().Checksum()) << sql;
  }
  EXPECT_EQ(Dump(&scalar, "emp", "name, emp_no, salary, dept_no"),
            Dump(&vector, "emp", "name, emp_no, salary, dept_no"));
  EXPECT_EQ(Dump(&scalar, "emp", "name, emp_no, salary, dept_no"),
            Dump(&columnar, "emp", "name, emp_no, salary, dept_no"));
}

}  // namespace
}  // namespace sopr
