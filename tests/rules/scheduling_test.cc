// Engine-level scheduling behavior: tie-break strategies observable in
// actual rule execution order, priority interplay, and consideration
// bookkeeping across transitions (§4.4).

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "test_util.h"

namespace sopr {
namespace {

/// Three rules all triggered by inserts into t; each logs its name. A
/// driver rule keeps creating fresh transitions so the triggered set is
/// re-considered several times.
void DefineLoggers(Engine* engine) {
  ASSERT_OK(engine->Execute("create table t (a int)"));
  ASSERT_OK(engine->Execute("create table log (who string)"));
  for (const char* name : {"r_a", "r_b", "r_c"}) {
    ASSERT_OK(engine->Execute(std::string("create rule ") + name +
                              " when inserted into t "
                              "then insert into log values ('" + name +
                              "')"));
  }
}

std::vector<std::string> LogOrder(Engine* engine) {
  auto result = engine->Query("select who from log");
  EXPECT_TRUE(result.ok());
  std::vector<std::string> out;
  for (const Row& row : result.value().rows) {
    out.push_back(row.at(0).AsString());
  }
  return out;
}

TEST(Scheduling, CreationOrderIsDeterministic) {
  RuleEngineOptions options;
  options.tie_break = TieBreak::kCreationOrder;
  Engine engine(options);
  DefineLoggers(&engine);
  ASSERT_OK(engine.Execute("insert into t values (1)"));
  // All three fire once, in definition order.
  EXPECT_EQ(LogOrder(&engine),
            (std::vector<std::string>{"r_a", "r_b", "r_c"}));
}

TEST(Scheduling, PriorityOverridesCreationOrder) {
  Engine engine;
  DefineLoggers(&engine);
  ASSERT_OK(engine.Execute("create rule priority r_c before r_a"));
  ASSERT_OK(engine.Execute("create rule priority r_a before r_b"));
  ASSERT_OK(engine.Execute("insert into t values (1)"));
  EXPECT_EQ(LogOrder(&engine),
            (std::vector<std::string>{"r_c", "r_a", "r_b"}));
}

TEST(Scheduling, LeastRecentlyConsideredRotates) {
  // With LRU tie-break, rules that were considered longest ago go first.
  // Conditions that are false keep the rules triggered across multiple
  // transitions, making the rotation observable.
  RuleEngineOptions options;
  options.tie_break = TieBreak::kLeastRecentlyConsidered;
  Engine engine(options);
  ASSERT_OK(engine.Execute("create table t (a int)"));
  ASSERT_OK(engine.Execute("create table log (who string)"));
  // Two rules whose conditions fail; one worker that creates another
  // transition each time (bounded by its own condition).
  ASSERT_OK(engine.Execute(
      "create rule never1 when inserted into t "
      "if exists (select * from t where a = -1) "
      "then insert into log values ('never1')"));
  ASSERT_OK(engine.Execute(
      "create rule never2 when inserted into t "
      "if exists (select * from t where a = -2) "
      "then insert into log values ('never2')"));
  ASSERT_OK(engine.Execute(
      "create rule worker when inserted into t "
      "if exists (select * from inserted t where a < 3) "
      "then insert into t (select a + 1 from inserted t where a < 3)"));

  ASSERT_OK_AND_ASSIGN(ExecutionTrace trace,
                       engine.ExecuteBlock("insert into t values (0)"));
  // All rules got (re)considered; the never-rules' conditions were
  // evaluated once per state they were triggered in.
  size_t never1 = 0, never2 = 0, worker = 0;
  for (const Consideration& c : trace.considered) {
    if (c.rule == "never1") ++never1;
    if (c.rule == "never2") ++never2;
    if (c.rule == "worker") ++worker;
  }
  EXPECT_GE(worker, 4u);   // 0->1->2->3 plus the final false condition
  EXPECT_GE(never1, 2u);   // reconsidered after new transitions
  EXPECT_EQ(never1, never2);
  // LRU property: in every state, never1 (defined first) is considered
  // before never2 only in the FIRST state; afterwards their ticks
  // alternate fairly. Verify adjacent pairs never repeat one rule twice
  // without the other in between.
  std::vector<std::string> nevers;
  for (const Consideration& c : trace.considered) {
    if (c.rule != "worker") nevers.push_back(c.rule);
  }
  for (size_t i = 1; i < nevers.size(); ++i) {
    EXPECT_NE(nevers[i], nevers[i - 1])
        << "LRU should alternate the never-rules";
  }
}

TEST(Scheduling, MostRecentlyConsideredSticksToOneRule) {
  RuleEngineOptions options;
  options.tie_break = TieBreak::kMostRecentlyConsidered;
  Engine engine(options);
  ASSERT_OK(engine.Execute("create table t (a int)"));
  ASSERT_OK(engine.Execute("create table log (who string)"));
  ASSERT_OK(engine.Execute(
      "create rule chatty1 when inserted into t "
      "if exists (select * from t where a = -1) "
      "then insert into log values ('x')"));
  ASSERT_OK(engine.Execute(
      "create rule chatty2 when inserted into t "
      "if exists (select * from t where a = -2) "
      "then insert into log values ('y')"));
  ASSERT_OK(engine.Execute(
      "create rule worker when inserted into t "
      "if exists (select * from inserted t where a < 3) "
      "then insert into t (select a + 1 from inserted t where a < 3)"));

  ASSERT_OK_AND_ASSIGN(ExecutionTrace trace,
                       engine.ExecuteBlock("insert into t values (0)"));
  // MRU: in the first state ticks are equal, so creation order puts
  // chatty1 first, chatty2 second. In every later state chatty2 holds
  // the more recent consideration tick, so MRU prefers it — the order
  // flips to (chatty2, chatty1) and stays there.
  std::vector<std::string> chatty;
  for (const Consideration& c : trace.considered) {
    if (c.rule != "worker") chatty.push_back(c.rule);
  }
  ASSERT_GE(chatty.size(), 4u);
  EXPECT_EQ(chatty[0], "chatty1");
  EXPECT_EQ(chatty[1], "chatty2");
  for (size_t i = 2; i + 1 < chatty.size(); i += 2) {
    EXPECT_EQ(chatty[i], "chatty2")
        << "MRU should prefer the most recently considered rule";
    EXPECT_EQ(chatty[i + 1], "chatty1");
  }
}

TEST(Scheduling, ConsiderationCountBoundedPerState) {
  // Within one state, a triggered rule whose condition is false is
  // considered at most once (no livelock).
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (a int)"));
  ASSERT_OK(engine.Execute(
      "create rule no when inserted into t "
      "if 1 = 2 then delete from t"));
  ASSERT_OK_AND_ASSIGN(ExecutionTrace trace,
                       engine.ExecuteBlock("insert into t values (1)"));
  EXPECT_EQ(trace.considered.size(), 1u);
  EXPECT_FALSE(trace.considered[0].condition_held);
}

}  // namespace
}  // namespace sopr
