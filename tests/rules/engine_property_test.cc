// Whole-engine property tests:
//  1. the two trans-info maintenance modes (Figure 1 per-rule vs shared
//     log) are observationally equivalent on random workloads;
//  2. a rollback at the end of a deep rule cascade restores the exact
//     pre-transaction state (values AND handles);
//  3. quiescence: after commit, re-running rule processing fires nothing.

#include <gtest/gtest.h>

#include <random>

#include "engine/engine.h"
#include "query/result_set.h"
#include "test_util.h"

namespace sopr {
namespace {

/// A rule set with cascades, conditions, and cross-table writes.
void DefineRuleSet(Engine* engine) {
  ASSERT_OK(engine->Execute("create table t (a int, b int)"));
  ASSERT_OK(engine->Execute("create table u (a int)"));
  ASSERT_OK(engine->Execute("create table log (a int)"));
  // Cascade: deleting from t deletes matching u rows.
  ASSERT_OK(engine->Execute(
      "create rule cas when deleted from t "
      "then delete from u where a in (select a from deleted t)"));
  // Logger with a condition over the transition set.
  ASSERT_OK(engine->Execute(
      "create rule lg when inserted into t "
      "if (select count(*) from inserted t) > 1 "
      "then insert into log (select a from inserted t)"));
  // Updater triggered by u deletions.
  ASSERT_OK(engine->Execute(
      "create rule up when deleted from u "
      "then update t set b = b + 1 where a in (select a from deleted u)"));
  ASSERT_OK(engine->Execute("create rule priority lg before cas"));
}

std::string RandomBlock(std::mt19937* rng, int step) {
  std::uniform_int_distribution<int> key(0, 20);
  std::uniform_int_distribution<int> pick(0, 3);
  std::string block;
  int ops = 1 + (*rng)() % 3;
  for (int i = 0; i < ops; ++i) {
    if (!block.empty()) block += "; ";
    switch (pick(*rng)) {
      case 0:
        block += "insert into t values (" + std::to_string(key(*rng)) + ", " +
                 std::to_string(step) + "), (" + std::to_string(key(*rng)) +
                 ", " + std::to_string(step) + ")";
        break;
      case 1:
        block += "insert into u values (" + std::to_string(key(*rng)) + ")";
        break;
      case 2:
        block += "delete from t where a = " + std::to_string(key(*rng));
        break;
      default:
        block += "update t set b = b + 2 where a < " +
                 std::to_string(key(*rng));
        break;
    }
  }
  return block;
}

std::string Dump(Engine* engine, const std::string& table,
                 const std::string& cols) {
  auto result =
      engine->Query("select " + cols + " from " + table + " order by " + cols);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? FormatResult(result.value()) : "<error>";
}

class ModeEquivalence : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ModeEquivalence, SameFinalStateUnderRandomWorkload) {
  RuleEngineOptions per_rule;
  per_rule.maintenance = MaintenanceMode::kPerRule;
  RuleEngineOptions shared;
  shared.maintenance = MaintenanceMode::kSharedLog;

  Engine a(per_rule);
  Engine b(shared);
  DefineRuleSet(&a);
  DefineRuleSet(&b);

  std::mt19937 rng_a(GetParam());
  std::mt19937 rng_b(GetParam());
  for (int step = 0; step < 25; ++step) {
    std::string block_a = RandomBlock(&rng_a, step);
    std::string block_b = RandomBlock(&rng_b, step);
    ASSERT_EQ(block_a, block_b);
    Status sa = a.Execute(block_a);
    Status sb = b.Execute(block_b);
    ASSERT_EQ(sa.code(), sb.code()) << "step " << step << ": " << block_a;
  }

  EXPECT_EQ(Dump(&a, "t", "a, b"), Dump(&b, "t", "a, b"));
  EXPECT_EQ(Dump(&a, "u", "a"), Dump(&b, "u", "a"));
  EXPECT_EQ(Dump(&a, "log", "a"), Dump(&b, "log", "a"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModeEquivalence, ::testing::Range(0u, 12u));

class RollbackRestore : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RollbackRestore, DeepCascadeRollbackRestoresExactState) {
  Engine engine;
  CreatePaperSchema(&engine);
  LoadOrgChart(&engine);
  // The Example 4.1 cascade, plus a guard that vetoes any transaction
  // leaving fewer than a random threshold of employees.
  ASSERT_OK(engine.Execute(
      "create rule chain when deleted from emp "
      "then delete from emp where dept_no in "
      "  (select dept_no from dept where mgr_no in "
      "   (select emp_no from deleted emp)); "
      "delete from dept where mgr_no in (select emp_no from deleted emp)"));
  std::mt19937 rng(GetParam());
  int threshold = 1 + static_cast<int>(rng() % 6);
  ASSERT_OK(engine.Execute(
      "create rule guard when deleted from emp "
      "if (select count(*) from emp) < " +
      std::to_string(threshold) + " then rollback"));

  std::string before_emp = Dump(&engine, "emp", "name, emp_no, salary, dept_no");
  std::string before_dept = Dump(&engine, "dept", "dept_no, mgr_no");
  TupleHandle last = engine.db().last_handle();

  const char* victims[] = {"Jane", "Jim", "Mary", "Bill"};
  std::string victim = victims[rng() % 4];
  Status s = engine.Execute("delete from emp where name = '" + victim + "'");

  if (s.code() == StatusCode::kRolledBack) {
    // Exact restoration: contents and handle counter (no handle reuse,
    // but also no stray rows).
    EXPECT_EQ(Dump(&engine, "emp", "name, emp_no, salary, dept_no"),
              before_emp);
    EXPECT_EQ(Dump(&engine, "dept", "dept_no, mgr_no"), before_dept);
    EXPECT_EQ(engine.db().undo_log_size(), 0u);
    EXPECT_GE(engine.db().last_handle(), last);
  } else {
    ASSERT_OK(s);
    // Guard allowed it: the cascade completed and the victim is gone.
    auto result =
        engine.Query("select count(*) from emp where name = '" + victim + "'");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().rows[0].at(0), Value::Int(0));
  }

  // Either way the engine is reusable afterwards.
  ASSERT_OK(engine.Execute("insert into emp values ('After', 99, 1, 0)"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RollbackRestore, ::testing::Range(0u, 16u));

TEST(Quiescence, CommittedTransactionLeavesNoPendingWork) {
  Engine engine;
  CreatePaperSchema(&engine);
  LoadOrgChart(&engine);
  ASSERT_OK(engine.Execute(
      "create rule chain when deleted from emp "
      "then delete from emp where dept_no in "
      "  (select dept_no from dept where mgr_no in "
      "   (select emp_no from deleted emp))"));
  ASSERT_OK(engine.Execute("delete from emp where name = 'Jim'"));

  // A fresh empty transaction triggers nothing.
  ASSERT_OK(engine.Begin());
  ASSERT_OK_AND_ASSIGN(ExecutionTrace trace, engine.Commit());
  EXPECT_TRUE(trace.considered.empty());
  EXPECT_TRUE(trace.firings.empty());
}

}  // namespace
}  // namespace sopr
