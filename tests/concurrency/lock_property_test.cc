// Conflict-oracle property suite (ISSUE 5): N writer threads hammer the
// same keyed table with randomized, conflicting two-row update blocks
// under record-level write locking. Strict 2PL holds every lock to the
// fixpoint's commit, so the record conflict order must equal the
// commit-LSN order — which makes a SERIAL replay of exactly the committed
// blocks, in commit-LSN order, the ground truth. The workload is
// update-only (no handle allocation after the seed), so the final state
// must match the oracle on the EXACT Database::Checksum — handles, heaps,
// indexes and all, not just logically.
//
// A production rule rides every transaction: "when updated accts.bal"
// bumps a stats counter once per FIXPOINT. Each block updates two rows in
// two statements; per Definition 2.1 the block's transitions compose into
// one net transition before rules are considered, so the rule fires once
// per committed block — stats.n equal to the commit count is direct
// evidence the composition holds across interleaved fixpoints (a
// per-statement firing would leave 2x).
//
// Also here: the bounded-version-chain property — commit-time incremental
// pruning keeps a hot row's chain short even while a long-pinned snapshot
// reader holds an old LSN alive.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "engine/engine.h"
#include "server/session_manager.h"
#include "storage/lock_manager.h"
#include "test_util.h"

namespace sopr {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sopr_lockprop_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

int64_t ScalarInt(const Result<QueryResult>& result) {
  EXPECT_TRUE(result.ok()) << result.status();
  if (!result.ok()) return -1;
  EXPECT_EQ(result.value().rows.size(), 1u);
  if (result.value().rows.size() != 1) return -1;
  return result.value().rows[0].at(0).AsInt();
}

constexpr int kWriters = 4;
constexpr int kTxnsPerWriter = 40;
constexpr int kKeys = 8;  // few keys -> real conflicts and inversions

const char* kSchema[] = {
    "create table accts (id int, bal int)",
    "create index on accts (id)",
    "create table stats (n int)",
    // Fires once per committed fixpoint whose net transition updates
    // accts.bal — the stats counter therefore counts BLOCKS, not
    // statements (Definition 2.1 composition).
    "create rule touch when updated accts.bal "
    "then update stats set n = n + 1",
};

std::string SeedSql() {
  std::string sql = "insert into stats values (0)";
  for (int id = 0; id < kKeys; ++id) {
    sql += "; insert into accts values (" + std::to_string(id) + ", 0)";
  }
  return sql;
}

struct Committed {
  uint64_t lsn = 0;
  std::string sql;
  int delta = 0;  // sum of this block's bal increments
};

/// Two updates against distinct keys in RANDOM order: the lock-order
/// inversions this produces are what drives real deadlocks, whose victims
/// must vanish without a trace.
std::string MakeBlock(std::mt19937* rng, int* delta) {
  const int i = static_cast<int>((*rng)() % kKeys);
  int j = static_cast<int>((*rng)() % (kKeys - 1));
  if (j >= i) ++j;  // distinct
  const int k1 = 1 + static_cast<int>((*rng)() % 5);
  const int k2 = 1 + static_cast<int>((*rng)() % 5);
  *delta = k1 + k2;
  return "update accts set bal = bal + " + std::to_string(k1) +
         " where id = " + std::to_string(i) +
         "; update accts set bal = bal + " + std::to_string(k2) +
         " where id = " + std::to_string(j);
}

TEST(LockPropertyTest, InterleavedWritersMatchSerialReplayInCommitLsnOrder) {
  FailpointRegistry::Instance().DisarmAll();
  RuleEngineOptions options;
  options.wal_dir = MakeTempDir();
  options.verify_rollback_integrity = true;  // victims leave no garbage
  auto opened = server::SessionManager::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  std::unique_ptr<server::SessionManager> manager = std::move(opened).value();
  ASSERT_TRUE(manager->engine().concurrent_writers());

  ASSERT_OK_AND_ASSIGN(server::Session * setup, manager->CreateSession());
  for (const char* ddl : kSchema) ASSERT_OK(setup->Execute(ddl));
  ASSERT_OK(setup->Execute(SeedSql()));

  std::mutex merge_mu;
  std::vector<Committed> committed;
  std::atomic<int> deadlock_aborts{0};
  std::atomic<bool> unexpected_failure{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto session = manager->CreateSession();
      if (!session.ok()) {
        unexpected_failure.store(true);
        return;
      }
      std::mt19937 rng(1299709u * (w + 1));
      std::vector<Committed> mine;
      for (int t = 0; t < kTxnsPerWriter; ++t) {
        int delta = 0;
        const std::string block = MakeBlock(&rng, &delta);
        Status st = session.value()->Execute(block);
        if (st.ok()) {
          mine.push_back(Committed{session.value()->last_receipt().commit_lsn,
                                   block, delta});
        } else if (st.code() == StatusCode::kDeadlock) {
          // The only legal failure in a chaos-free run: a lock-cycle
          // victim. Rolled back whole; simply not replayed.
          deadlock_aborts.fetch_add(1);
        } else {
          unexpected_failure.store(true);
        }
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      committed.insert(committed.end(), mine.begin(), mine.end());
    });
  }
  for (std::thread& t : writers) t.join();

  ASSERT_FALSE(unexpected_failure.load());
  ASSERT_OK(manager->scheduler().fatal());
  ASSERT_OK(manager->engine().CheckInvariants());
  EXPECT_EQ(committed.size() + static_cast<size_t>(deadlock_aborts.load()),
            static_cast<size_t>(kWriters) * kTxnsPerWriter);
  ASSERT_EQ(
      manager->engine().db().lock_manager()->deadlocks(),
      static_cast<uint64_t>(deadlock_aborts.load()))
      << "every detected deadlock must surface as exactly one kDeadlock";

  // Commit LSNs are the claimed serialization order: totally ordered.
  std::sort(
      committed.begin(), committed.end(),
      [](const Committed& a, const Committed& b) { return a.lsn < b.lsn; });
  for (size_t k = 1; k < committed.size(); ++k) {
    ASSERT_LT(committed[k - 1].lsn, committed[k].lsn);
  }

  // Definition 2.1 across interleaved fixpoints: one rule firing per
  // committed block, never per statement, never for a victim.
  EXPECT_EQ(ScalarInt(setup->ExecuteQuery("select n from stats")),
            static_cast<int64_t>(committed.size()));
  int64_t expected_sum = 0;
  for (const Committed& txn : committed) expected_sum += txn.delta;
  EXPECT_EQ(ScalarInt(setup->ExecuteQuery("select sum(bal) from accts")),
            expected_sum);

  // The oracle: a serial engine replaying exactly the committed blocks in
  // commit-LSN order. Update-only after the seed, so even tuple-handle
  // assignment agrees — the checksums must match EXACTLY.
  const uint64_t live_checksum = manager->engine().db().Checksum();
  Engine oracle((RuleEngineOptions()));
  for (const char* ddl : kSchema) ASSERT_OK(oracle.Execute(ddl));
  ASSERT_OK(oracle.Execute(SeedSql()));
  for (const Committed& txn : committed) {
    Status replayed = oracle.Execute(txn.sql);
    ASSERT_TRUE(replayed.ok()) << txn.sql << " -> " << replayed;
  }
  EXPECT_EQ(oracle.db().Checksum(), live_checksum)
      << "interleaved execution diverged from its commit-LSN serialization";
}

// --- Bounded version chains under a long-pinned reader --------------------
// A hot writer updates ONE row many times while a reader keeps an early
// snapshot pinned for the whole run. Commit-time incremental pruning must
// keep the chain at O(pins), not O(updates): each commit retires the
// versions no pin and no future pin can read. The pinned read stays exact
// throughout, and an explicit checkpoint collects everything once the pin
// is gone.
TEST(LockPropertyTest, HotRowChainStaysBoundedUnderPinnedReader) {
  FailpointRegistry::Instance().DisarmAll();
  RuleEngineOptions options;
  options.wal_dir = MakeTempDir();
  auto opened = server::SessionManager::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  std::unique_ptr<server::SessionManager> manager = std::move(opened).value();

  ASSERT_OK_AND_ASSIGN(server::Session * writer, manager->CreateSession());
  ASSERT_OK_AND_ASSIGN(server::Session * reader, manager->CreateSession());
  ASSERT_OK(writer->Execute("create table t (id int, v int)"));
  ASSERT_OK(writer->Execute("create index on t (id)"));
  ASSERT_OK(writer->Execute("insert into t values (1, 0)"));

  constexpr int kUpdates = 200;
  {
    ASSERT_OK_AND_ASSIGN(server::Session::Snapshot pin,
                         reader->PinSnapshot());
    for (int k = 1; k <= kUpdates; ++k) {
      ASSERT_OK(writer->Execute("update t set v = " + std::to_string(k) +
                                " where id = 1"));
      // The long-pinned snapshot keeps reading its version of the row.
      if (k % 50 == 0) {
        EXPECT_EQ(ScalarInt(reader->QueryAt(pin,
                                            "select v from t where id = 1")),
                  0);
      }
    }
    EXPECT_EQ(ScalarInt(writer->ExecuteQuery("select v from t where id = 1")),
              kUpdates);
    // The bound: one version covering the pin plus the freshest
    // superseded one (its end-LSN is the head, which the floor only
    // reaches after the NEXT commit publishes) — not 200.
    EXPECT_LE(manager->engine().db().VersionCount(), 3u)
        << "incremental pruning must bound the chain at O(pins)";
    EXPECT_GE(manager->engine().db().VersionCount(), 1u)
        << "the pinned snapshot's version must survive every prune";
  }
  // Pin released: a checkpoint prunes to the head and collects the rest.
  ASSERT_OK(manager->scheduler().WithExclusive(
      [&] { return manager->engine().Checkpoint(); }));
  EXPECT_EQ(manager->engine().db().VersionCount(), 0u);
}

}  // namespace
}  // namespace sopr
