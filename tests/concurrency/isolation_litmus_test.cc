// Isolation litmus suite (ISSUE 4): each classic read anomaly from the
// snapshot-isolation literature (Berenson et al.; Hermitage-style litmus
// methodology) is driven through an EXACT interleaving — blocking
// failpoint sync points park the writer at a chosen line while the test
// thread reads — and checked against an exact expected-result table. No
// sleeps anywhere; if a reader ever blocked on a writer, the test would
// deadlock rather than flake.
//
// Also here: the rule seam (rule actions read the write-side head, never
// a snapshot) and the Session read-only classification fix (select-only
// scripts, transition-table selects, and explain route outside the
// exclusive section; any write in the script routes through it).

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "common/failpoint.h"
#include "concurrency/schedule.h"
#include "engine/engine.h"
#include "server/session_manager.h"
#include "storage/lock_manager.h"
#include "test_util.h"
#include "wal/wal_writer.h"

namespace sopr {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sopr_litmus_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

std::unique_ptr<server::SessionManager> OpenManager(
    RuleEngineOptions options = {}) {
  auto opened = server::SessionManager::Open(std::move(options));
  EXPECT_TRUE(opened.ok()) << opened.status();
  return opened.ok() ? std::move(opened).value() : nullptr;
}

/// The single int cell of a one-row, one-column result.
int64_t ScalarInt(const Result<QueryResult>& result) {
  EXPECT_TRUE(result.ok()) << result.status();
  if (!result.ok()) return -1;
  EXPECT_EQ(result.value().rows.size(), 1u);
  if (result.value().rows.size() != 1) return -1;
  return result.value().rows[0].at(0).AsInt();
}

class IsolationLitmusTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisarmAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

// --- Anomaly 1: dirty read ----------------------------------------------
// The writer is parked at rules.commit.pre: its update is applied to the
// heap but NOT committed. Expected table: reader sees the old value, and
// completes while the writer is still inside the exclusive section
// (readers never block on writers — if they did, this test would hang at
// the ExecuteQuery, not flake).
TEST_F(IsolationLitmusTest, DirtyRead) {
  auto manager = OpenManager();
  ASSERT_OK_AND_ASSIGN(server::Session * writer, manager->CreateSession());
  ASSERT_OK_AND_ASSIGN(server::Session * reader, manager->CreateSession());
  ASSERT_OK(writer->Execute("create table t (id int, v int)"));
  ASSERT_OK(writer->Execute("insert into t values (1, 10)"));

  test::Schedule s;
  s.BlockAt("rules.commit.pre");
  s.Spawn("writer", [&] {
    return writer->Execute("update t set v = 20 where id = 1");
  });
  s.WaitBlocked("rules.commit.pre");

  // The dirty state genuinely exists: an unversioned head read (the
  // engine's raw query path, which the parked writer cannot race) shows
  // the uncommitted 20...
  EXPECT_EQ(ScalarInt(manager->engine().Query("select v from t where id = 1")),
            20);
  // ...but the snapshot read sees only the committed 10.
  EXPECT_EQ(ScalarInt(reader->ExecuteQuery("select v from t where id = 1")),
            10);

  s.Release("rules.commit.pre");
  ASSERT_OK(s.Join("writer"));
  EXPECT_EQ(ScalarInt(reader->ExecuteQuery("select v from t where id = 1")),
            20);
}

// --- Anomaly 2: non-repeatable read --------------------------------------
// Expected table: both reads through one pinned snapshot return 10, no
// matter what commits in between; a fresh snapshot sees 20.
TEST_F(IsolationLitmusTest, NonRepeatableRead) {
  auto manager = OpenManager();
  ASSERT_OK_AND_ASSIGN(server::Session * session, manager->CreateSession());
  ASSERT_OK(session->Execute("create table t (id int, v int)"));
  ASSERT_OK(session->Execute("insert into t values (1, 10)"));

  ASSERT_OK_AND_ASSIGN(server::Session::Snapshot snap, session->PinSnapshot());
  EXPECT_EQ(ScalarInt(session->QueryAt(snap, "select v from t where id = 1")),
            10);

  ASSERT_OK(session->Execute("update t set v = 20 where id = 1"));

  EXPECT_EQ(ScalarInt(session->QueryAt(snap, "select v from t where id = 1")),
            10)
      << "the pinned snapshot must repeat its first read";
  EXPECT_EQ(ScalarInt(session->ExecuteQuery("select v from t where id = 1")),
            20);
}

// --- Anomaly 3: read skew -------------------------------------------------
// Accounts hold 50/50 (invariant: sum 100). The snapshot reads account 1,
// a transfer of 10 commits, then the same snapshot reads account 2.
// Expected table: the snapshot's two reads are 50 and 50 (sum preserved);
// the head reads 40 and 60.
TEST_F(IsolationLitmusTest, ReadSkew) {
  auto manager = OpenManager();
  ASSERT_OK_AND_ASSIGN(server::Session * session, manager->CreateSession());
  ASSERT_OK(session->Execute("create table accounts (id int, bal int)"));
  ASSERT_OK(session->Execute(
      "insert into accounts values (1, 50); "
      "insert into accounts values (2, 50)"));

  ASSERT_OK_AND_ASSIGN(server::Session::Snapshot snap, session->PinSnapshot());
  EXPECT_EQ(
      ScalarInt(session->QueryAt(snap, "select bal from accounts where id = 1")),
      50);

  ASSERT_OK(session->Execute(
      "update accounts set bal = bal - 10 where id = 1; "
      "update accounts set bal = bal + 10 where id = 2"));

  EXPECT_EQ(
      ScalarInt(session->QueryAt(snap, "select bal from accounts where id = 2")),
      50)
      << "read skew: the snapshot saw half of a transfer";
  EXPECT_EQ(ScalarInt(session->QueryAt(snap,
                                       "select sum(bal) from accounts")),
            100);
  EXPECT_EQ(ScalarInt(session->ExecuteQuery(
                "select bal from accounts where id = 1")),
            40);
  EXPECT_EQ(ScalarInt(session->ExecuteQuery(
                "select bal from accounts where id = 2")),
            60);
}

// --- Anomaly 4: lost update, visible to readers ---------------------------
// Two serialized increments of one counter. Expected table: a snapshot
// pinned after the first commit reads exactly 11 forever; one pinned
// after the second reads 12; the head reads 12 (no update was lost, and
// every intermediate state is individually observable).
TEST_F(IsolationLitmusTest, LostUpdateVisibleToReader) {
  auto manager = OpenManager();
  ASSERT_OK_AND_ASSIGN(server::Session * s1, manager->CreateSession());
  ASSERT_OK_AND_ASSIGN(server::Session * s2, manager->CreateSession());
  ASSERT_OK(s1->Execute("create table t (id int, v int)"));
  ASSERT_OK(s1->Execute("insert into t values (1, 10)"));

  ASSERT_OK(s1->Execute("update t set v = v + 1 where id = 1"));
  ASSERT_OK_AND_ASSIGN(server::Session::Snapshot after_first,
                       s1->PinSnapshot());

  ASSERT_OK(s2->Execute("update t set v = v + 1 where id = 1"));
  ASSERT_OK_AND_ASSIGN(server::Session::Snapshot after_second,
                       s2->PinSnapshot());

  EXPECT_EQ(
      ScalarInt(s1->QueryAt(after_first, "select v from t where id = 1")), 11);
  EXPECT_EQ(
      ScalarInt(s2->QueryAt(after_second, "select v from t where id = 1")),
      12);
  EXPECT_EQ(
      ScalarInt(s1->QueryAt(after_first, "select v from t where id = 1")), 11)
      << "the older snapshot must keep reading the intermediate state";
  EXPECT_EQ(ScalarInt(s1->ExecuteQuery("select v from t where id = 1")), 12);
}

// --- Anomaly 5: snapshot vs. checkpoint -----------------------------------
// Checkpoint pruning must not discard versions a pinned snapshot still
// needs. Expected table: with the pin held, the checkpoint keeps both
// superseded versions and the pin still reads 1; after unpinning, the
// next checkpoint drops every version and the head reads 3.
TEST_F(IsolationLitmusTest, SnapshotVsCheckpoint) {
  RuleEngineOptions options;
  options.wal_dir = MakeTempDir();
  auto manager = OpenManager(options);
  ASSERT_OK_AND_ASSIGN(server::Session * session, manager->CreateSession());
  ASSERT_OK(session->Execute("create table t (id int, v int)"));
  ASSERT_OK(session->Execute("insert into t values (1, 1)"));

  ASSERT_OK_AND_ASSIGN(server::Session::Snapshot snap, session->PinSnapshot());
  ASSERT_OK(session->Execute("update t set v = 2 where id = 1"));
  ASSERT_OK(session->Execute("update t set v = 3 where id = 1"));
  EXPECT_EQ(manager->engine().db().VersionCount(), 2u);

  ASSERT_OK(manager->scheduler().WithExclusive(
      [&] { return manager->engine().Checkpoint(); }));
  EXPECT_EQ(manager->engine().db().VersionCount(), 2u)
      << "pruning discarded versions the pinned snapshot can still see";
  EXPECT_EQ(ScalarInt(session->QueryAt(snap, "select v from t where id = 1")),
            1);

  snap.Reset();  // release the pin: the floor advances to the commit head
  ASSERT_OK(manager->scheduler().WithExclusive(
      [&] { return manager->engine().Checkpoint(); }));
  EXPECT_EQ(manager->engine().db().VersionCount(), 0u)
      << "with no pins, the checkpoint must garbage-collect every version";
  EXPECT_EQ(ScalarInt(session->ExecuteQuery("select v from t where id = 1")),
            3);
}

// --- Anomaly 5b: a pin racing the checkpoint's prune floor ----------------
// Regression for a TOCTOU between PinSnapshot and checkpoint pruning.
// The reader is parked INSIDE pin acquisition: server.pin.acquire fires
// under the registry mutex, after the decision to pin but before the
// visible-LSN load. Two updates commit and a checkpoint is started while
// it is parked. Because the load+insert and the checkpoint's floor
// computation share the registry mutex, the floor computation waits
// behind the nascent pin — with the old load-then-insert code the
// checkpoint could slide between the two, prune to the commit head, and
// hand the reader a stale-LSN snapshot whose superseded versions were
// already collected. Expected table: the pin lands exactly on the
// published head, the pinned read returns 3, and the checkpoint collects
// both superseded versions (floor == head) — in every legal order of the
// released threads.
TEST_F(IsolationLitmusTest, PinRacingCheckpointWaitsForPruneFloor) {
  RuleEngineOptions options;
  options.wal_dir = MakeTempDir();
  auto manager = OpenManager(options);
  ASSERT_OK_AND_ASSIGN(server::Session * writer, manager->CreateSession());
  ASSERT_OK_AND_ASSIGN(server::Session * reader, manager->CreateSession());
  ASSERT_OK(writer->Execute("create table t (id int, v int)"));
  ASSERT_OK(writer->Execute("insert into t values (1, 1)"));

  uint64_t pinned_lsn = 0;
  int64_t pinned_read = -1;
  test::Schedule s;
  s.BlockAt("server.pin.acquire");
  s.Spawn("reader", [&] {
    auto snap = reader->PinSnapshot();
    if (!snap.ok()) return snap.status();
    pinned_lsn = snap.value().lsn();
    pinned_read = ScalarInt(
        reader->QueryAt(snap.value(), "select v from t where id = 1"));
    return Status::OK();
  });
  s.WaitBlocked("server.pin.acquire");

  ASSERT_OK(writer->Execute("update t set v = 2 where id = 1"));
  ASSERT_OK(writer->Execute("update t set v = 3 where id = 1"));
  EXPECT_EQ(manager->engine().db().VersionCount(), 2u);

  // The checkpoint's floor computation blocks on the registry mutex
  // behind the parked pin; releasing the sync point lets both finish.
  s.Spawn("checkpointer", [&] {
    return manager->scheduler().WithExclusive(
        [&] { return manager->engine().Checkpoint(); });
  });
  s.Release("server.pin.acquire");
  ASSERT_OK(s.Join("reader"));
  ASSERT_OK(s.Join("checkpointer"));

  EXPECT_EQ(pinned_lsn, manager->engine().last_commit_lsn())
      << "the pin must land on the published head, not a stale load";
  EXPECT_EQ(pinned_read, 3);
  EXPECT_EQ(manager->engine().db().VersionCount(), 0u)
      << "a head-level pin lets the checkpoint collect every version";
}

// --- Anomaly 5c: a block that fails after an inner commit -----------------
// The operation block commits (t gets its row, chain its seed), then the
// self-perpetuating detached chain exceeds max_rule_firings and the
// block FAILS — after several inner commits already ran. Those commits
// are committed, stamped state, so the scheduler must publish the head
// regardless of the block's final status. Expected table: visible_lsn ==
// last_commit_lsn in the failure window, and a snapshot pinned there
// survives a checkpoint and reads the committed row. (With a stale
// published head, the pin would land below the prune floor and the read
// of t would come back empty.)
TEST_F(IsolationLitmusTest, FailedBlockStillPublishesCommittedHead) {
  RuleEngineOptions options;
  options.wal_dir = MakeTempDir();
  options.max_rule_firings = 8;
  auto manager = OpenManager(options);
  ASSERT_OK_AND_ASSIGN(server::Session * session, manager->CreateSession());
  ASSERT_OK(session->Execute("create table t (id int, v int)"));
  ASSERT_OK(session->Execute("create table chain (a int)"));
  ASSERT_OK(session->Execute(
      "create rule forever when inserted into chain "
      "then insert into chain (select a + 1 from inserted chain)"));
  ASSERT_OK(manager->engine().rules().SetDetached("forever", true));

  Status st = session->Execute(
      "insert into t values (1, 10); insert into chain values (0)");
  EXPECT_EQ(st.code(), StatusCode::kLimitExceeded) << st;
  EXPECT_EQ(manager->scheduler().visible_lsn(),
            manager->engine().last_commit_lsn())
      << "commits that ran before the failure must still be published";

  ASSERT_OK_AND_ASSIGN(server::Session::Snapshot snap, session->PinSnapshot());
  ASSERT_OK(manager->scheduler().WithExclusive(
      [&] { return manager->engine().Checkpoint(); }));
  EXPECT_EQ(ScalarInt(session->QueryAt(snap, "select v from t where id = 1")),
            10);
}

// --- Anomaly 6: snapshot vs. recovery -------------------------------------
// Expected table: a restart recovers the exact committed state with NO
// version chains (recovered rows are unversioned, visible to every
// snapshot — including the post-restart snapshot at LSN 0), and a pin
// taken before the first post-restart write keeps reading the recovered
// state while the head moves on.
TEST_F(IsolationLitmusTest, SnapshotVsRecovery) {
  RuleEngineOptions options;
  options.wal_dir = MakeTempDir();
  auto manager = OpenManager(options);
  {
    ASSERT_OK_AND_ASSIGN(server::Session * session, manager->CreateSession());
    ASSERT_OK(session->Execute("create table t (id int, v int)"));
    ASSERT_OK(session->Execute("insert into t values (1, 1)"));
    ASSERT_OK(session->Execute("update t set v = 2 where id = 1"));
  }
  const uint64_t committed_checksum = manager->engine().db().Checksum();

  manager.reset();  // close: drain staged commits, release the dir lock
  manager = OpenManager(options);
  ASSERT_NE(manager, nullptr);
  EXPECT_EQ(manager->engine().db().Checksum(), committed_checksum);
  EXPECT_EQ(manager->engine().db().VersionCount(), 0u)
      << "recovery must produce unversioned rows";

  ASSERT_OK_AND_ASSIGN(server::Session * session, manager->CreateSession());
  ASSERT_OK_AND_ASSIGN(server::Session::Snapshot recovered,
                       session->PinSnapshot());
  EXPECT_EQ(recovered.lsn(), 0u)
      << "the first post-restart snapshot is LSN 0: the recovered state";
  EXPECT_EQ(
      ScalarInt(session->QueryAt(recovered, "select v from t where id = 1")),
      2);

  ASSERT_OK(session->Execute("update t set v = 5 where id = 1"));
  EXPECT_EQ(
      ScalarInt(session->QueryAt(recovered, "select v from t where id = 1")),
      2)
      << "the pre-write snapshot must keep the recovered state";
  EXPECT_EQ(ScalarInt(session->ExecuteQuery("select v from t where id = 1")),
            5);
}

// --- The rule seam: actions read the write-side head ----------------------
// A rule's action select must see the uncommitted transition state it is
// reacting to (§4 semantics), never a snapshot. The writer is parked at
// rules.action.pre: its three inserts are applied, its rule is about to
// read them — and a concurrent snapshot still sees the empty table.
TEST_F(IsolationLitmusTest, RuleActionsRunAtWriteSideHead) {
  auto manager = OpenManager();
  ASSERT_OK_AND_ASSIGN(server::Session * writer, manager->CreateSession());
  ASSERT_OK_AND_ASSIGN(server::Session * reader, manager->CreateSession());
  ASSERT_OK(writer->Execute("create table src (id int)"));
  ASSERT_OK(writer->Execute("create table log (n int)"));
  ASSERT_OK(writer->Execute(
      "create rule seam when inserted into src "
      "then insert into log (select count(*) from src)"));

  test::Schedule s;
  s.BlockAt("rules.action.pre");
  s.Spawn("writer", [&] {
    return writer->Execute(
        "insert into src values (1); insert into src values (2); "
        "insert into src values (3)");
  });
  s.WaitBlocked("rules.action.pre");

  EXPECT_EQ(ScalarInt(reader->ExecuteQuery("select count(*) from src")), 0)
      << "snapshots must not see the uncommitted transition state";

  s.Release("rules.action.pre");
  ASSERT_OK(s.Join("writer"));
  // The rule counted all three uncommitted inserts: write-side head.
  EXPECT_EQ(ScalarInt(reader->ExecuteQuery("select n from log")), 3);
  EXPECT_EQ(ScalarInt(reader->ExecuteQuery("select count(*) from src")), 3);
}

// --- Read-only classification (satellite fix) -----------------------------
// server.submit.pre fires on every entry to the exclusive write path.
// Arming it =always makes routing observable: anything classified as a
// read still works, anything classified as a write fails injected.
TEST_F(IsolationLitmusTest, SelectOnlyScriptsRouteOutsideExclusiveSection) {
  auto manager = OpenManager();
  ASSERT_OK_AND_ASSIGN(server::Session * session, manager->CreateSession());
  ASSERT_OK(session->Execute("create table t (id int, v int)"));
  ASSERT_OK(session->Execute("insert into t values (1, 10)"));
  const uint64_t commits_before = session->commits();

  FailpointRegistry::Trigger always;
  always.mode = FailpointRegistry::Mode::kAlways;
  FailpointRegistry::Instance().Arm("server.submit.pre", always);

  // Reads of every flavor keep working: the exclusive path is poisoned.
  EXPECT_OK(session->Execute("select * from t; select v from t where id = 1"));
  EXPECT_EQ(session->commits(), commits_before + 1)
      << "a select-only script still counts as a committed (read-only) txn";
  EXPECT_EQ(session->last_receipt().commit_lsn, 0u);
  EXPECT_EQ(ScalarInt(session->ExecuteQuery("select v from t where id = 1")),
            10);
  auto plan = session->Explain("select * from t where id = 1");
  EXPECT_TRUE(plan.ok()) << "explain is a read: " << plan.status();

  // A write (alone or after reads in the same script) routes exclusive.
  Status write = session->Execute("insert into t values (2, 20)");
  EXPECT_EQ(write.code(), StatusCode::kInjectedFault) << write;
  Status mixed = session->Execute("select * from t; "
                                  "update t set v = 99 where id = 1");
  EXPECT_EQ(mixed.code(), StatusCode::kInjectedFault)
      << "a script with any write must route through the exclusive section: "
      << mixed;

  FailpointRegistry::Instance().DisarmAll();
  // Regression: the mixed script really does execute once unblocked.
  ASSERT_OK(session->Execute("select * from t; "
                             "update t set v = 99 where id = 1"));
  EXPECT_EQ(ScalarInt(session->ExecuteQuery("select v from t where id = 1")),
            99);
}

TEST_F(IsolationLitmusTest, TransitionTableSelectIsAReadAndFailsCleanly) {
  auto manager = OpenManager();
  ASSERT_OK_AND_ASSIGN(server::Session * session, manager->CreateSession());
  ASSERT_OK(session->Execute("create table t (id int)"));

  FailpointRegistry::Trigger always;
  always.mode = FailpointRegistry::Mode::kAlways;
  FailpointRegistry::Instance().Arm("server.submit.pre", always);

  // Routed as a read (no injected fault), then rejected by the resolver
  // with the usual catalog error — transition tables only exist inside a
  // running rule.
  Status st = session->Execute("select * from inserted t");
  EXPECT_EQ(st.code(), StatusCode::kCatalogError) << st;
  EXPECT_NE(st.message().find("production rule"), std::string::npos) << st;
}

TEST_F(IsolationLitmusTest, SelectTriggeringExtensionRoutesExclusive) {
  // With the §5.1 extension on, selects fire rules: they are writes for
  // routing purposes and must enter the exclusive section.
  RuleEngineOptions options;
  options.track_selects = true;
  auto manager = OpenManager(options);
  ASSERT_OK_AND_ASSIGN(server::Session * session, manager->CreateSession());
  ASSERT_OK(session->Execute("create table t (id int)"));

  FailpointRegistry::Trigger always;
  always.mode = FailpointRegistry::Mode::kAlways;
  FailpointRegistry::Instance().Arm("server.submit.pre", always);

  Status st = session->Execute("select * from t");
  EXPECT_EQ(st.code(), StatusCode::kInjectedFault)
      << "track_selects makes selects rule-firing, hence exclusive: " << st;
}

// ==========================================================================
// Writer-writer litmus scenarios (ISSUE 5): record-level write locking.
// Same methodology as the read anomalies above — blocking failpoints park
// writers at exact lines, every step is a barrier, no sleeps — but now two
// WRITERS overlap inside the scheduler's shared admission.
// ==========================================================================

// --- W/W 1: disjoint rows overlap end-to-end ------------------------------
// T1 is parked MID-BLOCK (at the trailing insert's failpoint) holding a
// record X lock on row 1. T2 updates row 2 and must run to completion —
// admission, locks, fixpoint, commit, durability — while T1 is still
// inside its transaction. A kAlways trigger on "lock.wait" turns any
// would-be lock wait into a visible injected fault, so if T2 blocked even
// once the test FAILS rather than hangs. Expected table: T2 commits first
// (smaller LSN), T1 commits after release, both updates stick.
TEST_F(IsolationLitmusTest, DisjointRowWritersOverlapEndToEnd) {
  RuleEngineOptions options;
  options.wal_dir = MakeTempDir();
  auto manager = OpenManager(options);
  ASSERT_TRUE(manager->engine().concurrent_writers());
  ASSERT_OK_AND_ASSIGN(server::Session * t1, manager->CreateSession());
  ASSERT_OK_AND_ASSIGN(server::Session * t2, manager->CreateSession());
  ASSERT_OK_AND_ASSIGN(server::Session * reader, manager->CreateSession());
  ASSERT_OK(t1->Execute("create table accts (id int, bal int)"));
  ASSERT_OK(t1->Execute("create index on accts (id)"));
  ASSERT_OK(t1->Execute("create table marker (n int)"));
  ASSERT_OK(t1->Execute("insert into accts values (1, 0); "
                        "insert into accts values (2, 0)"));

  test::Schedule s;
  // Tripwire: a lock wait anywhere fails the waiting statement loudly.
  FailpointRegistry::Trigger no_waits;
  no_waits.mode = FailpointRegistry::Mode::kAlways;
  FailpointRegistry::Instance().Arm("lock.wait", no_waits);

  s.BlockAt("storage.insert.pre");
  s.Spawn("t1", [&] {
    return t1->Execute("update accts set bal = 10 where id = 1; "
                       "insert into marker values (1)");
  });
  s.WaitBlocked("storage.insert.pre");

  // T1 holds X on row 1 and sits mid-transaction. T2's whole transaction
  // overlaps it: Join returns only after T2 is committed AND durable.
  s.Spawn("t2", [&] {
    return t2->Execute("update accts set bal = 20 where id = 2");
  });
  Status t2_done = s.Join("t2");
  ASSERT_TRUE(t2_done.ok())
      << "disjoint-row writer must not block or fault: " << t2_done;
  const uint64_t t2_lsn = t2->last_receipt().commit_lsn;
  EXPECT_GT(t2_lsn, 0u);

  // Committed-state expected table while T1 is still parked: T2's write
  // is visible, T1's is not.
  EXPECT_EQ(ScalarInt(reader->ExecuteQuery("select bal from accts "
                                           "where id = 2")),
            20);
  EXPECT_EQ(ScalarInt(reader->ExecuteQuery("select bal from accts "
                                           "where id = 1")),
            0);

  s.Release("storage.insert.pre");
  ASSERT_OK(s.Join("t1"));
  const uint64_t t1_lsn = t1->last_receipt().commit_lsn;
  EXPECT_GT(t1_lsn, t2_lsn) << "T2 committed first while T1 was open";
  EXPECT_EQ(ScalarInt(reader->ExecuteQuery("select bal from accts "
                                           "where id = 1")),
            10);
  EXPECT_EQ(ScalarInt(reader->ExecuteQuery("select count(*) from marker")),
            1);
}

// --- W/W 2: same-row conflict blocks, then proceeds -----------------------
// T1 is parked at rules.commit.pre holding X on row 1 (fixpoint done,
// commit not yet). T2 updates the SAME row: it must park in a real lock
// wait (proven by the lock.wait.accts barrier — seeing T2 there IS the
// assertion that the conflict blocked). After T1 commits and releases, T2
// acquires the lock, RE-READS the committed row and applies on top of it.
// Expected table: bal = (0 + 1) + 2 = 3 — a lost update would leave 2 —
// and commit-LSN order T1 < T2 matches the conflict order.
TEST_F(IsolationLitmusTest, SameRowConflictBlocksThenProceeds) {
  RuleEngineOptions options;
  options.wal_dir = MakeTempDir();
  auto manager = OpenManager(options);
  ASSERT_OK_AND_ASSIGN(server::Session * t1, manager->CreateSession());
  ASSERT_OK_AND_ASSIGN(server::Session * t2, manager->CreateSession());
  ASSERT_OK(t1->Execute("create table accts (id int, bal int)"));
  ASSERT_OK(t1->Execute("create index on accts (id)"));
  ASSERT_OK(t1->Execute("insert into accts values (1, 0)"));

  test::Schedule s;
  s.BlockAt("rules.commit.pre");
  s.Spawn("t1", [&] {
    return t1->Execute("update accts set bal = bal + 1 where id = 1");
  });
  s.WaitBlocked("rules.commit.pre");

  s.BlockAt("lock.wait.accts");
  s.Spawn("t2", [&] {
    return t2->Execute("update accts set bal = bal + 2 where id = 1");
  });
  // Barrier: T2 is provably inside a lock wait on accts, NOT applying.
  s.WaitBlocked("lock.wait.accts");

  s.Release("rules.commit.pre");
  ASSERT_OK(s.Join("t1"));  // T1 committed; EndTxn released its locks
  s.Release("lock.wait.accts");
  ASSERT_OK(s.Join("t2"));

  EXPECT_EQ(ScalarInt(t1->ExecuteQuery("select bal from accts where id = 1")),
            3)
      << "T2 must read T1's committed value under the lock (no lost update)";
  EXPECT_LT(t1->last_receipt().commit_lsn, t2->last_receipt().commit_lsn)
      << "conflict order must equal commit-LSN order";
}

// --- W/W 3: deadlock aborts exactly one victim, deterministically ---------
// Classic two-transaction lock-order inversion across tables a and b.
// Both writers are parked after their FIRST update (each holding one X),
// then released into their second update one at a time: T2 waits behind
// T1 first (edge T2->T1, no cycle — it sleeps), then T1's wait adds the
// closing edge T1->T2. The requester that closes the cycle is the victim
// by policy, so the victim is DETERMINISTIC: always T1. Expected table:
// T1 returns kDeadlock with every trace of its first update rolled back,
// T2 commits both its updates, and no version garbage survives.
TEST_F(IsolationLitmusTest, DeadlockAbortsExactlyOneVictim) {
  RuleEngineOptions options;
  options.wal_dir = MakeTempDir();
  options.verify_rollback_integrity = true;  // victim leaves no pending rows
  auto manager = OpenManager(options);
  ASSERT_OK_AND_ASSIGN(server::Session * t1, manager->CreateSession());
  ASSERT_OK_AND_ASSIGN(server::Session * t2, manager->CreateSession());
  ASSERT_OK(t1->Execute("create table a (id int, v int)"));
  ASSERT_OK(t1->Execute("create table b (id int, v int)"));
  ASSERT_OK(t1->Execute("create index on a (id)"));
  ASSERT_OK(t1->Execute("create index on b (id)"));
  ASSERT_OK(t1->Execute("insert into a values (1, 0)"));
  ASSERT_OK(t1->Execute("insert into b values (1, 0)"));
  LockManager* lm = manager->engine().db().lock_manager();
  ASSERT_NE(lm, nullptr);

  test::Schedule s;
  s.BlockAt("storage.update.post");
  s.Spawn("t1", [&] {
    return t1->Execute("update a set v = 10 where id = 1; "
                       "update b set v = 10 where id = 1");
  });
  s.Spawn("t2", [&] {
    return t2->Execute("update b set v = 20 where id = 1; "
                       "update a set v = 20 where id = 1");
  });
  // Both applied their first update: T1 holds X on a's row, T2 on b's.
  s.WaitBlocked("storage.update.post", 2);
  s.BlockAt("lock.wait.a");
  s.BlockAt("lock.wait.b");
  s.Release("storage.update.post");
  // Each second update runs into the other's lock and parks at its
  // table's wait site (the failpoint fires before any wait edge exists).
  s.WaitBlocked("lock.wait.b");  // T1 wants b
  s.WaitBlocked("lock.wait.a");  // T2 wants a

  // Release T2 first: it records T2->T1 (no cycle yet) and enters a REAL
  // cv wait — the lock manager's barrier sees it parked.
  s.Release("lock.wait.a");
  lm->WaitForWaiters(1);
  // Release T1: its edge T1->T2 closes the cycle, so T1 — the requester
  // whose wait would deadlock — is chosen as victim and aborts.
  s.Release("lock.wait.b");

  Status st1 = s.Join("t1");
  EXPECT_EQ(st1.code(), StatusCode::kDeadlock) << st1;
  ASSERT_OK(s.Join("t2"));
  EXPECT_EQ(lm->deadlocks(), 1u) << "exactly one victim";

  // The victim's first update (a.v = 10) must be structurally undone.
  EXPECT_EQ(ScalarInt(t2->ExecuteQuery("select v from a where id = 1")), 20);
  EXPECT_EQ(ScalarInt(t2->ExecuteQuery("select v from b where id = 1")), 20);
  EXPECT_GT(t2->last_receipt().commit_lsn, 0u);
  ASSERT_OK(manager->engine().CheckInvariants());
}

// --- W/W 4: a lock-holding writer and the checkpoint wall -----------------
// T1 parks at rules.commit.pre holding record locks AND the scheduler's
// shared admission; a checkpoint then queues on the exclusive side. The
// wall must order the checkpoint strictly AFTER the in-flight writer —
// never interleave with it, never deadlock against its record locks.
// Expected table: both finish, the checkpoint covers T1's commit
// (commits_since_checkpoint == 0, every superseded version collected),
// and a restart recovers T1's update from the snapshot.
TEST_F(IsolationLitmusTest, LockHolderVsCheckpointWall) {
  RuleEngineOptions options;
  options.wal_dir = MakeTempDir();
  auto manager = OpenManager(options);
  ASSERT_OK_AND_ASSIGN(server::Session * t1, manager->CreateSession());
  ASSERT_OK(t1->Execute("create table t (id int, v int)"));
  ASSERT_OK(t1->Execute("create index on t (id)"));
  ASSERT_OK(t1->Execute("insert into t values (1, 1)"));

  test::Schedule s;
  s.BlockAt("rules.commit.pre");
  s.Spawn("t1", [&] {
    return t1->Execute("update t set v = 2 where id = 1");
  });
  s.WaitBlocked("rules.commit.pre");

  // Queues behind T1's shared admission; must not complete before it.
  s.Spawn("ckpt", [&] {
    return manager->scheduler().WithExclusive(
        [&] { return manager->engine().Checkpoint(); });
  });

  s.Release("rules.commit.pre");
  ASSERT_OK(s.Join("t1"));
  ASSERT_OK(s.Join("ckpt"));

  EXPECT_EQ(manager->engine().wal()->commits_since_checkpoint(), 0u)
      << "the wall must order the checkpoint after the in-flight commit";
  EXPECT_EQ(manager->engine().db().VersionCount(), 0u)
      << "nothing pinned: the checkpoint collects every superseded version";

  manager.reset();
  auto reopened = OpenManager(options);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(ScalarInt(reopened->engine().Query("select v from t where id = 1")),
            2);
}

// --- W/W 5: rule-action writes take the transaction's locks ---------------
// T1's insert fires a rule whose ACTION inserts into audit; T1 parks at
// rules.commit.pre AFTER the fixpoint, so the audit row exists only as
// T1's uncommitted, X-locked write. T2's scan-update of audit must park
// in a lock wait (the barrier proves rule-action writes are locked by the
// ENCLOSING transaction, not auto-committed) and, once T1 commits, must
// see the rule-written row. Expected table: audit = {1 + 10}.
TEST_F(IsolationLitmusTest, RuleActionWritesInheritTransactionLocks) {
  RuleEngineOptions options;
  options.wal_dir = MakeTempDir();
  auto manager = OpenManager(options);
  ASSERT_OK_AND_ASSIGN(server::Session * t1, manager->CreateSession());
  ASSERT_OK_AND_ASSIGN(server::Session * t2, manager->CreateSession());
  ASSERT_OK(t1->Execute("create table t (id int)"));
  ASSERT_OK(t1->Execute("create table audit (n int)"));
  ASSERT_OK(t1->Execute(
      "create rule audit_ins when inserted into t "
      "then insert into audit (select count(*) from inserted t)"));

  test::Schedule s;
  s.BlockAt("rules.commit.pre");
  s.Spawn("t1", [&] { return t1->Execute("insert into t values (1)"); });
  s.WaitBlocked("rules.commit.pre");

  s.BlockAt("lock.wait.audit");
  s.Spawn("t2", [&] {
    // Unindexed scan-update: needs table X on audit, which conflicts
    // with the IX the rule's action took inside T1.
    return t2->Execute("update audit set n = n + 10");
  });
  // T2 is provably blocked on the lock T1's RULE ACTION acquired.
  s.WaitBlocked("lock.wait.audit");

  s.Release("rules.commit.pre");
  ASSERT_OK(s.Join("t1"));
  s.Release("lock.wait.audit");
  ASSERT_OK(s.Join("t2"));

  EXPECT_EQ(ScalarInt(t1->ExecuteQuery("select count(*) from audit")), 1);
  EXPECT_EQ(ScalarInt(t1->ExecuteQuery("select n from audit")), 11)
      << "T2 must update the row T1's rule action wrote and committed";
  EXPECT_LT(t1->last_receipt().commit_lsn, t2->last_receipt().commit_lsn);
}

}  // namespace
}  // namespace sopr
