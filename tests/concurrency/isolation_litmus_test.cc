// Isolation litmus suite (ISSUE 4): each classic read anomaly from the
// snapshot-isolation literature (Berenson et al.; Hermitage-style litmus
// methodology) is driven through an EXACT interleaving — blocking
// failpoint sync points park the writer at a chosen line while the test
// thread reads — and checked against an exact expected-result table. No
// sleeps anywhere; if a reader ever blocked on a writer, the test would
// deadlock rather than flake.
//
// Also here: the rule seam (rule actions read the write-side head, never
// a snapshot) and the Session read-only classification fix (select-only
// scripts, transition-table selects, and explain route outside the
// exclusive section; any write in the script routes through it).

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "common/failpoint.h"
#include "concurrency/schedule.h"
#include "engine/engine.h"
#include "server/session_manager.h"
#include "test_util.h"

namespace sopr {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sopr_litmus_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

std::unique_ptr<server::SessionManager> OpenManager(
    RuleEngineOptions options = {}) {
  auto opened = server::SessionManager::Open(std::move(options));
  EXPECT_TRUE(opened.ok()) << opened.status();
  return opened.ok() ? std::move(opened).value() : nullptr;
}

/// The single int cell of a one-row, one-column result.
int64_t ScalarInt(const Result<QueryResult>& result) {
  EXPECT_TRUE(result.ok()) << result.status();
  if (!result.ok()) return -1;
  EXPECT_EQ(result.value().rows.size(), 1u);
  if (result.value().rows.size() != 1) return -1;
  return result.value().rows[0].at(0).AsInt();
}

class IsolationLitmusTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisarmAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

// --- Anomaly 1: dirty read ----------------------------------------------
// The writer is parked at rules.commit.pre: its update is applied to the
// heap but NOT committed. Expected table: reader sees the old value, and
// completes while the writer is still inside the exclusive section
// (readers never block on writers — if they did, this test would hang at
// the ExecuteQuery, not flake).
TEST_F(IsolationLitmusTest, DirtyRead) {
  auto manager = OpenManager();
  ASSERT_OK_AND_ASSIGN(server::Session * writer, manager->CreateSession());
  ASSERT_OK_AND_ASSIGN(server::Session * reader, manager->CreateSession());
  ASSERT_OK(writer->Execute("create table t (id int, v int)"));
  ASSERT_OK(writer->Execute("insert into t values (1, 10)"));

  test::Schedule s;
  s.BlockAt("rules.commit.pre");
  s.Spawn("writer", [&] {
    return writer->Execute("update t set v = 20 where id = 1");
  });
  s.WaitBlocked("rules.commit.pre");

  // The dirty state genuinely exists: an unversioned head read (the
  // engine's raw query path, which the parked writer cannot race) shows
  // the uncommitted 20...
  EXPECT_EQ(ScalarInt(manager->engine().Query("select v from t where id = 1")),
            20);
  // ...but the snapshot read sees only the committed 10.
  EXPECT_EQ(ScalarInt(reader->ExecuteQuery("select v from t where id = 1")),
            10);

  s.Release("rules.commit.pre");
  ASSERT_OK(s.Join("writer"));
  EXPECT_EQ(ScalarInt(reader->ExecuteQuery("select v from t where id = 1")),
            20);
}

// --- Anomaly 2: non-repeatable read --------------------------------------
// Expected table: both reads through one pinned snapshot return 10, no
// matter what commits in between; a fresh snapshot sees 20.
TEST_F(IsolationLitmusTest, NonRepeatableRead) {
  auto manager = OpenManager();
  ASSERT_OK_AND_ASSIGN(server::Session * session, manager->CreateSession());
  ASSERT_OK(session->Execute("create table t (id int, v int)"));
  ASSERT_OK(session->Execute("insert into t values (1, 10)"));

  ASSERT_OK_AND_ASSIGN(server::Session::Snapshot snap, session->PinSnapshot());
  EXPECT_EQ(ScalarInt(session->QueryAt(snap, "select v from t where id = 1")),
            10);

  ASSERT_OK(session->Execute("update t set v = 20 where id = 1"));

  EXPECT_EQ(ScalarInt(session->QueryAt(snap, "select v from t where id = 1")),
            10)
      << "the pinned snapshot must repeat its first read";
  EXPECT_EQ(ScalarInt(session->ExecuteQuery("select v from t where id = 1")),
            20);
}

// --- Anomaly 3: read skew -------------------------------------------------
// Accounts hold 50/50 (invariant: sum 100). The snapshot reads account 1,
// a transfer of 10 commits, then the same snapshot reads account 2.
// Expected table: the snapshot's two reads are 50 and 50 (sum preserved);
// the head reads 40 and 60.
TEST_F(IsolationLitmusTest, ReadSkew) {
  auto manager = OpenManager();
  ASSERT_OK_AND_ASSIGN(server::Session * session, manager->CreateSession());
  ASSERT_OK(session->Execute("create table accounts (id int, bal int)"));
  ASSERT_OK(session->Execute(
      "insert into accounts values (1, 50); "
      "insert into accounts values (2, 50)"));

  ASSERT_OK_AND_ASSIGN(server::Session::Snapshot snap, session->PinSnapshot());
  EXPECT_EQ(
      ScalarInt(session->QueryAt(snap, "select bal from accounts where id = 1")),
      50);

  ASSERT_OK(session->Execute(
      "update accounts set bal = bal - 10 where id = 1; "
      "update accounts set bal = bal + 10 where id = 2"));

  EXPECT_EQ(
      ScalarInt(session->QueryAt(snap, "select bal from accounts where id = 2")),
      50)
      << "read skew: the snapshot saw half of a transfer";
  EXPECT_EQ(ScalarInt(session->QueryAt(snap,
                                       "select sum(bal) from accounts")),
            100);
  EXPECT_EQ(ScalarInt(session->ExecuteQuery(
                "select bal from accounts where id = 1")),
            40);
  EXPECT_EQ(ScalarInt(session->ExecuteQuery(
                "select bal from accounts where id = 2")),
            60);
}

// --- Anomaly 4: lost update, visible to readers ---------------------------
// Two serialized increments of one counter. Expected table: a snapshot
// pinned after the first commit reads exactly 11 forever; one pinned
// after the second reads 12; the head reads 12 (no update was lost, and
// every intermediate state is individually observable).
TEST_F(IsolationLitmusTest, LostUpdateVisibleToReader) {
  auto manager = OpenManager();
  ASSERT_OK_AND_ASSIGN(server::Session * s1, manager->CreateSession());
  ASSERT_OK_AND_ASSIGN(server::Session * s2, manager->CreateSession());
  ASSERT_OK(s1->Execute("create table t (id int, v int)"));
  ASSERT_OK(s1->Execute("insert into t values (1, 10)"));

  ASSERT_OK(s1->Execute("update t set v = v + 1 where id = 1"));
  ASSERT_OK_AND_ASSIGN(server::Session::Snapshot after_first,
                       s1->PinSnapshot());

  ASSERT_OK(s2->Execute("update t set v = v + 1 where id = 1"));
  ASSERT_OK_AND_ASSIGN(server::Session::Snapshot after_second,
                       s2->PinSnapshot());

  EXPECT_EQ(
      ScalarInt(s1->QueryAt(after_first, "select v from t where id = 1")), 11);
  EXPECT_EQ(
      ScalarInt(s2->QueryAt(after_second, "select v from t where id = 1")),
      12);
  EXPECT_EQ(
      ScalarInt(s1->QueryAt(after_first, "select v from t where id = 1")), 11)
      << "the older snapshot must keep reading the intermediate state";
  EXPECT_EQ(ScalarInt(s1->ExecuteQuery("select v from t where id = 1")), 12);
}

// --- Anomaly 5: snapshot vs. checkpoint -----------------------------------
// Checkpoint pruning must not discard versions a pinned snapshot still
// needs. Expected table: with the pin held, the checkpoint keeps both
// superseded versions and the pin still reads 1; after unpinning, the
// next checkpoint drops every version and the head reads 3.
TEST_F(IsolationLitmusTest, SnapshotVsCheckpoint) {
  RuleEngineOptions options;
  options.wal_dir = MakeTempDir();
  auto manager = OpenManager(options);
  ASSERT_OK_AND_ASSIGN(server::Session * session, manager->CreateSession());
  ASSERT_OK(session->Execute("create table t (id int, v int)"));
  ASSERT_OK(session->Execute("insert into t values (1, 1)"));

  ASSERT_OK_AND_ASSIGN(server::Session::Snapshot snap, session->PinSnapshot());
  ASSERT_OK(session->Execute("update t set v = 2 where id = 1"));
  ASSERT_OK(session->Execute("update t set v = 3 where id = 1"));
  EXPECT_EQ(manager->engine().db().VersionCount(), 2u);

  ASSERT_OK(manager->scheduler().WithExclusive(
      [&] { return manager->engine().Checkpoint(); }));
  EXPECT_EQ(manager->engine().db().VersionCount(), 2u)
      << "pruning discarded versions the pinned snapshot can still see";
  EXPECT_EQ(ScalarInt(session->QueryAt(snap, "select v from t where id = 1")),
            1);

  snap.Reset();  // release the pin: the floor advances to the commit head
  ASSERT_OK(manager->scheduler().WithExclusive(
      [&] { return manager->engine().Checkpoint(); }));
  EXPECT_EQ(manager->engine().db().VersionCount(), 0u)
      << "with no pins, the checkpoint must garbage-collect every version";
  EXPECT_EQ(ScalarInt(session->ExecuteQuery("select v from t where id = 1")),
            3);
}

// --- Anomaly 5b: a pin racing the checkpoint's prune floor ----------------
// Regression for a TOCTOU between PinSnapshot and checkpoint pruning.
// The reader is parked INSIDE pin acquisition: server.pin.acquire fires
// under the registry mutex, after the decision to pin but before the
// visible-LSN load. Two updates commit and a checkpoint is started while
// it is parked. Because the load+insert and the checkpoint's floor
// computation share the registry mutex, the floor computation waits
// behind the nascent pin — with the old load-then-insert code the
// checkpoint could slide between the two, prune to the commit head, and
// hand the reader a stale-LSN snapshot whose superseded versions were
// already collected. Expected table: the pin lands exactly on the
// published head, the pinned read returns 3, and the checkpoint collects
// both superseded versions (floor == head) — in every legal order of the
// released threads.
TEST_F(IsolationLitmusTest, PinRacingCheckpointWaitsForPruneFloor) {
  RuleEngineOptions options;
  options.wal_dir = MakeTempDir();
  auto manager = OpenManager(options);
  ASSERT_OK_AND_ASSIGN(server::Session * writer, manager->CreateSession());
  ASSERT_OK_AND_ASSIGN(server::Session * reader, manager->CreateSession());
  ASSERT_OK(writer->Execute("create table t (id int, v int)"));
  ASSERT_OK(writer->Execute("insert into t values (1, 1)"));

  uint64_t pinned_lsn = 0;
  int64_t pinned_read = -1;
  test::Schedule s;
  s.BlockAt("server.pin.acquire");
  s.Spawn("reader", [&] {
    auto snap = reader->PinSnapshot();
    if (!snap.ok()) return snap.status();
    pinned_lsn = snap.value().lsn();
    pinned_read = ScalarInt(
        reader->QueryAt(snap.value(), "select v from t where id = 1"));
    return Status::OK();
  });
  s.WaitBlocked("server.pin.acquire");

  ASSERT_OK(writer->Execute("update t set v = 2 where id = 1"));
  ASSERT_OK(writer->Execute("update t set v = 3 where id = 1"));
  EXPECT_EQ(manager->engine().db().VersionCount(), 2u);

  // The checkpoint's floor computation blocks on the registry mutex
  // behind the parked pin; releasing the sync point lets both finish.
  s.Spawn("checkpointer", [&] {
    return manager->scheduler().WithExclusive(
        [&] { return manager->engine().Checkpoint(); });
  });
  s.Release("server.pin.acquire");
  ASSERT_OK(s.Join("reader"));
  ASSERT_OK(s.Join("checkpointer"));

  EXPECT_EQ(pinned_lsn, manager->engine().last_commit_lsn())
      << "the pin must land on the published head, not a stale load";
  EXPECT_EQ(pinned_read, 3);
  EXPECT_EQ(manager->engine().db().VersionCount(), 0u)
      << "a head-level pin lets the checkpoint collect every version";
}

// --- Anomaly 5c: a block that fails after an inner commit -----------------
// The operation block commits (t gets its row, chain its seed), then the
// self-perpetuating detached chain exceeds max_rule_firings and the
// block FAILS — after several inner commits already ran. Those commits
// are committed, stamped state, so the scheduler must publish the head
// regardless of the block's final status. Expected table: visible_lsn ==
// last_commit_lsn in the failure window, and a snapshot pinned there
// survives a checkpoint and reads the committed row. (With a stale
// published head, the pin would land below the prune floor and the read
// of t would come back empty.)
TEST_F(IsolationLitmusTest, FailedBlockStillPublishesCommittedHead) {
  RuleEngineOptions options;
  options.wal_dir = MakeTempDir();
  options.max_rule_firings = 8;
  auto manager = OpenManager(options);
  ASSERT_OK_AND_ASSIGN(server::Session * session, manager->CreateSession());
  ASSERT_OK(session->Execute("create table t (id int, v int)"));
  ASSERT_OK(session->Execute("create table chain (a int)"));
  ASSERT_OK(session->Execute(
      "create rule forever when inserted into chain "
      "then insert into chain (select a + 1 from inserted chain)"));
  ASSERT_OK(manager->engine().rules().SetDetached("forever", true));

  Status st = session->Execute(
      "insert into t values (1, 10); insert into chain values (0)");
  EXPECT_EQ(st.code(), StatusCode::kLimitExceeded) << st;
  EXPECT_EQ(manager->scheduler().visible_lsn(),
            manager->engine().last_commit_lsn())
      << "commits that ran before the failure must still be published";

  ASSERT_OK_AND_ASSIGN(server::Session::Snapshot snap, session->PinSnapshot());
  ASSERT_OK(manager->scheduler().WithExclusive(
      [&] { return manager->engine().Checkpoint(); }));
  EXPECT_EQ(ScalarInt(session->QueryAt(snap, "select v from t where id = 1")),
            10);
}

// --- Anomaly 6: snapshot vs. recovery -------------------------------------
// Expected table: a restart recovers the exact committed state with NO
// version chains (recovered rows are unversioned, visible to every
// snapshot — including the post-restart snapshot at LSN 0), and a pin
// taken before the first post-restart write keeps reading the recovered
// state while the head moves on.
TEST_F(IsolationLitmusTest, SnapshotVsRecovery) {
  RuleEngineOptions options;
  options.wal_dir = MakeTempDir();
  auto manager = OpenManager(options);
  {
    ASSERT_OK_AND_ASSIGN(server::Session * session, manager->CreateSession());
    ASSERT_OK(session->Execute("create table t (id int, v int)"));
    ASSERT_OK(session->Execute("insert into t values (1, 1)"));
    ASSERT_OK(session->Execute("update t set v = 2 where id = 1"));
  }
  const uint64_t committed_checksum = manager->engine().db().Checksum();

  manager.reset();  // close: drain staged commits, release the dir lock
  manager = OpenManager(options);
  ASSERT_NE(manager, nullptr);
  EXPECT_EQ(manager->engine().db().Checksum(), committed_checksum);
  EXPECT_EQ(manager->engine().db().VersionCount(), 0u)
      << "recovery must produce unversioned rows";

  ASSERT_OK_AND_ASSIGN(server::Session * session, manager->CreateSession());
  ASSERT_OK_AND_ASSIGN(server::Session::Snapshot recovered,
                       session->PinSnapshot());
  EXPECT_EQ(recovered.lsn(), 0u)
      << "the first post-restart snapshot is LSN 0: the recovered state";
  EXPECT_EQ(
      ScalarInt(session->QueryAt(recovered, "select v from t where id = 1")),
      2);

  ASSERT_OK(session->Execute("update t set v = 5 where id = 1"));
  EXPECT_EQ(
      ScalarInt(session->QueryAt(recovered, "select v from t where id = 1")),
      2)
      << "the pre-write snapshot must keep the recovered state";
  EXPECT_EQ(ScalarInt(session->ExecuteQuery("select v from t where id = 1")),
            5);
}

// --- The rule seam: actions read the write-side head ----------------------
// A rule's action select must see the uncommitted transition state it is
// reacting to (§4 semantics), never a snapshot. The writer is parked at
// rules.action.pre: its three inserts are applied, its rule is about to
// read them — and a concurrent snapshot still sees the empty table.
TEST_F(IsolationLitmusTest, RuleActionsRunAtWriteSideHead) {
  auto manager = OpenManager();
  ASSERT_OK_AND_ASSIGN(server::Session * writer, manager->CreateSession());
  ASSERT_OK_AND_ASSIGN(server::Session * reader, manager->CreateSession());
  ASSERT_OK(writer->Execute("create table src (id int)"));
  ASSERT_OK(writer->Execute("create table log (n int)"));
  ASSERT_OK(writer->Execute(
      "create rule seam when inserted into src "
      "then insert into log (select count(*) from src)"));

  test::Schedule s;
  s.BlockAt("rules.action.pre");
  s.Spawn("writer", [&] {
    return writer->Execute(
        "insert into src values (1); insert into src values (2); "
        "insert into src values (3)");
  });
  s.WaitBlocked("rules.action.pre");

  EXPECT_EQ(ScalarInt(reader->ExecuteQuery("select count(*) from src")), 0)
      << "snapshots must not see the uncommitted transition state";

  s.Release("rules.action.pre");
  ASSERT_OK(s.Join("writer"));
  // The rule counted all three uncommitted inserts: write-side head.
  EXPECT_EQ(ScalarInt(reader->ExecuteQuery("select n from log")), 3);
  EXPECT_EQ(ScalarInt(reader->ExecuteQuery("select count(*) from src")), 3);
}

// --- Read-only classification (satellite fix) -----------------------------
// server.submit.pre fires on every entry to the exclusive write path.
// Arming it =always makes routing observable: anything classified as a
// read still works, anything classified as a write fails injected.
TEST_F(IsolationLitmusTest, SelectOnlyScriptsRouteOutsideExclusiveSection) {
  auto manager = OpenManager();
  ASSERT_OK_AND_ASSIGN(server::Session * session, manager->CreateSession());
  ASSERT_OK(session->Execute("create table t (id int, v int)"));
  ASSERT_OK(session->Execute("insert into t values (1, 10)"));
  const uint64_t commits_before = session->commits();

  FailpointRegistry::Trigger always;
  always.mode = FailpointRegistry::Mode::kAlways;
  FailpointRegistry::Instance().Arm("server.submit.pre", always);

  // Reads of every flavor keep working: the exclusive path is poisoned.
  EXPECT_OK(session->Execute("select * from t; select v from t where id = 1"));
  EXPECT_EQ(session->commits(), commits_before + 1)
      << "a select-only script still counts as a committed (read-only) txn";
  EXPECT_EQ(session->last_receipt().commit_lsn, 0u);
  EXPECT_EQ(ScalarInt(session->ExecuteQuery("select v from t where id = 1")),
            10);
  auto plan = session->Explain("select * from t where id = 1");
  EXPECT_TRUE(plan.ok()) << "explain is a read: " << plan.status();

  // A write (alone or after reads in the same script) routes exclusive.
  Status write = session->Execute("insert into t values (2, 20)");
  EXPECT_EQ(write.code(), StatusCode::kInjectedFault) << write;
  Status mixed = session->Execute("select * from t; "
                                  "update t set v = 99 where id = 1");
  EXPECT_EQ(mixed.code(), StatusCode::kInjectedFault)
      << "a script with any write must route through the exclusive section: "
      << mixed;

  FailpointRegistry::Instance().DisarmAll();
  // Regression: the mixed script really does execute once unblocked.
  ASSERT_OK(session->Execute("select * from t; "
                             "update t set v = 99 where id = 1"));
  EXPECT_EQ(ScalarInt(session->ExecuteQuery("select v from t where id = 1")),
            99);
}

TEST_F(IsolationLitmusTest, TransitionTableSelectIsAReadAndFailsCleanly) {
  auto manager = OpenManager();
  ASSERT_OK_AND_ASSIGN(server::Session * session, manager->CreateSession());
  ASSERT_OK(session->Execute("create table t (id int)"));

  FailpointRegistry::Trigger always;
  always.mode = FailpointRegistry::Mode::kAlways;
  FailpointRegistry::Instance().Arm("server.submit.pre", always);

  // Routed as a read (no injected fault), then rejected by the resolver
  // with the usual catalog error — transition tables only exist inside a
  // running rule.
  Status st = session->Execute("select * from inserted t");
  EXPECT_EQ(st.code(), StatusCode::kCatalogError) << st;
  EXPECT_NE(st.message().find("production rule"), std::string::npos) << st;
}

TEST_F(IsolationLitmusTest, SelectTriggeringExtensionRoutesExclusive) {
  // With the §5.1 extension on, selects fire rules: they are writes for
  // routing purposes and must enter the exclusive section.
  RuleEngineOptions options;
  options.track_selects = true;
  auto manager = OpenManager(options);
  ASSERT_OK_AND_ASSIGN(server::Session * session, manager->CreateSession());
  ASSERT_OK(session->Execute("create table t (id int)"));

  FailpointRegistry::Trigger always;
  always.mode = FailpointRegistry::Mode::kAlways;
  FailpointRegistry::Instance().Arm("server.submit.pre", always);

  Status st = session->Execute("select * from t");
  EXPECT_EQ(st.code(), StatusCode::kInjectedFault)
      << "track_selects makes selects rule-firing, hence exclusive: " << st;
}

}  // namespace
}  // namespace sopr
