// Stall/cancel litmus suite for the overload-protection subsystem
// (docs/OVERLOAD.md): deterministic schedules (blocking failpoints, no
// ordering sleeps) proving that a writer parked MID-TRANSACTION while
// holding record locks can be gotten rid of — by a waiter's lock-wait
// deadline or by a session kill — and that in every case the victim's
// transaction rolls back to the exact pre-state (Database::Checksum
// oracle), its locks are released so waiters proceed, and no wait-for
// edges or version garbage survive. Also here: admission-control
// shedding with reads still served, queue-deadline shedding, statement
// timeouts bounding lock waits, and the per-session in-flight statement
// limit.
//
// Meaningful under -DSOPR_SANITIZE=thread too (overload_tsan_test):
// every schedule is an exact interleaving for TSan to inspect.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/failpoint.h"
#include "concurrency/schedule.h"
#include "engine/engine.h"
#include "server/session_manager.h"
#include "storage/lock_manager.h"
#include "test_util.h"

namespace sopr {
namespace {

using std::chrono::milliseconds;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sopr_overload_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

int64_t ScalarInt(const Result<QueryResult>& result) {
  EXPECT_TRUE(result.ok()) << result.status();
  if (!result.ok()) return -1;
  EXPECT_EQ(result.value().rows.size(), 1u);
  if (result.value().rows.size() != 1) return -1;
  return result.value().rows[0].at(0).AsInt();
}

struct Fixture {
  std::unique_ptr<server::SessionManager> manager;
  server::Session* setup = nullptr;

  explicit Fixture(milliseconds lock_wait_timeout = milliseconds(10000)) {
    FailpointRegistry::Instance().DisarmAll();
    RuleEngineOptions options;
    options.wal_dir = MakeTempDir();
    options.verify_rollback_integrity = true;  // victims leave no garbage
    options.lock_wait_timeout = lock_wait_timeout;
    auto opened = server::SessionManager::Open(options);
    EXPECT_TRUE(opened.ok()) << opened.status();
    if (!opened.ok()) return;
    manager = std::move(opened).value();
    auto created = manager->CreateSession();
    EXPECT_TRUE(created.ok()) << created.status();
    setup = created.value();
    for (const char* sql : {
             "create table accts (id int, bal int)",
             "create index on accts (id)",
             "insert into accts values (1, 100); "
             "insert into accts values (2, 200)",
         }) {
      Status st = setup->Execute(sql);
      EXPECT_TRUE(st.ok()) << sql << " -> " << st;
    }
  }

  Database& db() { return manager->engine().db(); }
  LockManager& locks() { return *db().lock_manager(); }

  /// The no-leftovers oracle every scenario ends with.
  void ExpectClean() {
    EXPECT_EQ(locks().WaitEdgeCount(), 0u) << "orphan wait-for edges";
    ASSERT_OK(manager->engine().CheckInvariants());
    Status fatal = manager->scheduler().fatal();
    ASSERT_OK(fatal);  // the server must stay healthy
  }
};

// --- (a) A waiter's lock deadline times the waiter out -------------------
// T1 parks at rules.commit.pre holding X on row 1 (fixpoint done, commit
// not started). T2, with a short lock-wait timeout, updates the same row:
// it must give up with kLockTimeout, roll back to its EXACT pre-state,
// and leave no wait-for edge. T1, released afterwards, commits untouched.
TEST(OverloadLitmus, WaiterLockTimeoutRollsBackWaiterExactly) {
  Fixture f(milliseconds(50));  // every lock wait bounded at 50ms
  test::Schedule s;
  s.BlockAt("rules.commit.pre");
  ASSERT_OK_AND_ASSIGN(server::Session * t1, f.manager->CreateSession());
  s.Spawn("holder", [&] {
    return t1->Execute("update accts set bal = bal + 1 where id = 1");
  });
  s.WaitBlocked("rules.commit.pre");

  // T1 holds X on row 1. Checksum BEFORE T2 runs is the rollback oracle:
  // T2 must leave the world bit-identical (T1's uncommitted update is
  // part of that world — it stays parked throughout).
  const uint64_t before = f.db().Checksum();
  ASSERT_OK_AND_ASSIGN(server::Session * t2, f.manager->CreateSession());
  Status st = t2->Execute(
      "update accts set bal = bal + 10 where id = 2; "
      "update accts set bal = bal + 10 where id = 1");
  EXPECT_EQ(st.code(), StatusCode::kLockTimeout) << st;
  EXPECT_EQ(f.db().Checksum(), before)
      << "the timed-out waiter must roll back to its exact pre-state "
         "(including its already-applied first statement)";
  EXPECT_EQ(f.locks().WaitEdgeCount(), 0u);
  EXPECT_GE(f.locks().wait_timeouts(), 1u);

  s.Release("rules.commit.pre");
  ASSERT_OK(s.Join("holder"));
  f.ExpectClean();
  EXPECT_EQ(ScalarInt(f.setup->ExecuteQuery(
                "select bal from accts where id = 1")),
            101);
  EXPECT_EQ(ScalarInt(f.setup->ExecuteQuery(
                "select bal from accts where id = 2")),
            200);
}

// --- (b) Session cancel kills the parked holder itself -------------------
// T1 parks at rules.action.pre: its update is applied, X on row 1 held,
// rule processing under way. Cancel() on T1's session from the test
// thread, then release the park: T1 must notice at the next rule-boundary
// check, abort to the exact pre-state, and release its locks so the
// waiting T2 proceeds. A stalled lock HOLDER is killable, not just its
// waiters.
TEST(OverloadLitmus, SessionCancelKillsParkedHolderAndWaiterProceeds) {
  Fixture f;
  // A rule rides the update so the holder has a post-park cancellation
  // point (the per-action check at the rule boundary).
  ASSERT_OK(f.setup->Execute("create table stats (n int)"));
  ASSERT_OK(f.setup->Execute("insert into stats values (0)"));
  ASSERT_OK(f.setup->Execute(
      "create rule touch when updated accts.bal "
      "then update stats set n = n + 1"));
  const uint64_t pre_state = f.db().Checksum();

  ASSERT_OK_AND_ASSIGN(server::Session * t1, f.manager->CreateSession());
  test::Schedule s;
  s.BlockAt("rules.action.pre");
  s.Spawn("holder", [&] {
    return t1->Execute("update accts set bal = bal + 1 where id = 1");
  });
  s.WaitBlocked("rules.action.pre");

  // T2 wants the same row; park it at the lock-wait sync point so the
  // blockage is real before the kill is delivered.
  s.BlockAt("lock.wait.accts");
  ASSERT_OK_AND_ASSIGN(server::Session * t2, f.manager->CreateSession());
  s.Spawn("waiter", [&] {
    return t2->Execute("update accts set bal = bal + 10 where id = 1");
  });
  s.WaitBlocked("lock.wait.accts");
  s.Release("lock.wait.accts");

  t1->Cancel("operator kill of a stalled writer");
  s.Release("rules.action.pre");
  Status holder = s.Join("holder");
  EXPECT_EQ(holder.code(), StatusCode::kCancelled) << holder;
  Status waiter = s.Join("waiter");
  ASSERT_OK(waiter);  // must acquire the freed locks

  // Exactly the waiter's effect (and its rule firing) on top of the
  // pre-state; the killed holder's update vanished whole.
  EXPECT_EQ(ScalarInt(f.setup->ExecuteQuery(
                "select bal from accts where id = 1")),
            110);
  EXPECT_EQ(ScalarInt(f.setup->ExecuteQuery("select n from stats")), 1);
  f.ExpectClean();

  // The killed session refuses further statements until revived.
  EXPECT_TRUE(t1->killed());
  EXPECT_EQ(t1->Execute("update accts set bal = 0 where id = 2").code(),
            StatusCode::kCancelled);
  t1->ResetCancel();
  ASSERT_OK(t1->Execute("update accts set bal = bal + 1 where id = 2"));

  // Oracle replay: pre-state + waiter's block + revived holder's block.
  (void)pre_state;  // documented above; the scalar checks pin the state
}

// --- Cancelling a session whose statement is stuck IN a lock wait --------
// The dual of (b): the kill lands on the WAITER mid-cv-wait. The bounded
// poll quantum must deliver it promptly; the waiter rolls back exactly
// and the untouched holder commits.
TEST(OverloadLitmus, SessionCancelDeliveredInsideLockWait) {
  Fixture f;
  test::Schedule s;
  s.BlockAt("rules.commit.pre");
  ASSERT_OK_AND_ASSIGN(server::Session * t1, f.manager->CreateSession());
  s.Spawn("holder", [&] {
    return t1->Execute("update accts set bal = bal + 1 where id = 1");
  });
  s.WaitBlocked("rules.commit.pre");

  ASSERT_OK_AND_ASSIGN(server::Session * t2, f.manager->CreateSession());
  const uint64_t before = f.db().Checksum();
  s.BlockAt("lock.wait.accts");
  s.Spawn("waiter", [&] {
    return t2->Execute(
        "update accts set bal = bal + 10 where id = 2; "
        "update accts set bal = bal + 10 where id = 1");
  });
  // The waiter is provably AT the lock wait when the kill fires.
  s.WaitBlocked("lock.wait.accts");
  s.Release("lock.wait.accts");
  t2->Cancel("kill the stuck waiter");
  Status waiter = s.Join("waiter");
  EXPECT_EQ(waiter.code(), StatusCode::kCancelled) << waiter;
  EXPECT_EQ(f.db().Checksum(), before)
      << "the killed waiter must roll back its first statement too";
  EXPECT_EQ(f.locks().WaitEdgeCount(), 0u);

  s.Release("rules.commit.pre");
  ASSERT_OK(s.Join("holder"));
  f.ExpectClean();
  EXPECT_EQ(ScalarInt(f.setup->ExecuteQuery(
                "select bal from accts where id = 1")),
            101);
}

// --- Statement timeout bounds a lock wait --------------------------------
// No per-wait lock timeout configured (10s default, effectively off for
// this test) — the SESSION's statement budget is what expires, so the
// failure attributes as kTimeout, not kLockTimeout.
TEST(OverloadLitmus, StatementTimeoutExpiresDuringLockWait) {
  Fixture f;
  test::Schedule s;
  s.BlockAt("rules.commit.pre");
  ASSERT_OK_AND_ASSIGN(server::Session * t1, f.manager->CreateSession());
  s.Spawn("holder", [&] {
    return t1->Execute("update accts set bal = bal + 1 where id = 1");
  });
  s.WaitBlocked("rules.commit.pre");

  ASSERT_OK_AND_ASSIGN(server::Session * t2, f.manager->CreateSession());
  t2->set_statement_timeout(std::chrono::duration_cast<
                            std::chrono::microseconds>(milliseconds(50)));
  const uint64_t before = f.db().Checksum();
  Status st = t2->Execute("update accts set bal = bal + 10 where id = 1");
  EXPECT_EQ(st.code(), StatusCode::kTimeout) << st;
  EXPECT_EQ(f.db().Checksum(), before);

  s.Release("rules.commit.pre");
  ASSERT_OK(s.Join("holder"));
  f.ExpectClean();
}

// --- Admission control: shedding with reads still served -----------------
// Writer capacity forced to 1 with NO queue: while one writer is parked
// in flight, a second writer is shed immediately with kOverloaded and a
// structured retry-after hint — and a snapshot read on a third session
// keeps working (graceful degradation is structural).
TEST(OverloadLitmus, AdmissionShedsWritersWhileReadsKeepServing) {
  Fixture f;
  server::AdmissionOptions admission;
  admission.max_inflight_writers = 1;
  admission.max_queued_writers = 0;
  f.manager->scheduler().admission().set_options(admission);

  test::Schedule s;
  s.BlockAt("rules.commit.pre");
  ASSERT_OK_AND_ASSIGN(server::Session * t1, f.manager->CreateSession());
  s.Spawn("inflight", [&] {
    return t1->Execute("update accts set bal = bal + 1 where id = 1");
  });
  s.WaitBlocked("rules.commit.pre");

  ASSERT_OK_AND_ASSIGN(server::Session * t2, f.manager->CreateSession());
  const uint64_t before = f.db().Checksum();
  Status shed = t2->Execute("update accts set bal = bal + 10 where id = 2");
  EXPECT_EQ(shed.code(), StatusCode::kOverloaded) << shed;
  EXPECT_NE(shed.message().find("retry-after-ms="), std::string::npos)
      << "a shed must carry a structured retry hint: " << shed;
  EXPECT_EQ(f.db().Checksum(), before)
      << "a shed statement must not have touched data";

  // Reads bypass writer admission entirely.
  ASSERT_OK_AND_ASSIGN(server::Session * reader, f.manager->CreateSession());
  EXPECT_EQ(ScalarInt(reader->ExecuteQuery(
                "select bal from accts where id = 2")),
            200);

  const server::AdmissionStats stats =
      f.manager->scheduler().admission().stats();
  EXPECT_EQ(stats.inflight, 1u);
  EXPECT_GE(stats.shed_queue_full, 1u);

  s.Release("rules.commit.pre");
  ASSERT_OK(s.Join("inflight"));
  f.ExpectClean();
  // Capacity freed: the shed writer succeeds on retry.
  ASSERT_OK(t2->Execute("update accts set bal = bal + 10 where id = 2"));
  EXPECT_EQ(f.manager->scheduler().admission().stats().inflight, 0u);
}

// --- Admission queue deadline ---------------------------------------------
// With a queue allowed but deadline-bounded, a queued writer is shed with
// kOverloaded once its queue wait exceeds the bound (instead of waiting
// forever behind a stalled in-flight writer).
TEST(OverloadLitmus, AdmissionQueueDeadlineShedsQueuedWriter) {
  Fixture f;
  server::AdmissionOptions admission;
  admission.max_inflight_writers = 1;
  admission.max_queued_writers = 8;
  admission.queue_deadline = std::chrono::duration_cast<
      std::chrono::microseconds>(milliseconds(50));
  f.manager->scheduler().admission().set_options(admission);

  test::Schedule s;
  s.BlockAt("rules.commit.pre");
  ASSERT_OK_AND_ASSIGN(server::Session * t1, f.manager->CreateSession());
  s.Spawn("inflight", [&] {
    return t1->Execute("update accts set bal = bal + 1 where id = 1");
  });
  s.WaitBlocked("rules.commit.pre");

  ASSERT_OK_AND_ASSIGN(server::Session * t2, f.manager->CreateSession());
  Status shed = t2->Execute("update accts set bal = bal + 10 where id = 2");
  EXPECT_EQ(shed.code(), StatusCode::kOverloaded) << shed;
  EXPECT_NE(shed.message().find("queue deadline"), std::string::npos) << shed;
  EXPECT_GE(f.manager->scheduler().admission().stats().shed_queue_deadline,
            1u);

  s.Release("rules.commit.pre");
  ASSERT_OK(s.Join("inflight"));
  f.ExpectClean();
}

// --- Session kill reaches a writer parked in the ADMISSION queue ---------
TEST(OverloadLitmus, SessionCancelDeliveredInAdmissionQueue) {
  Fixture f;
  server::AdmissionOptions admission;
  admission.max_inflight_writers = 1;
  admission.max_queued_writers = 8;  // no queue deadline: only the kill
  f.manager->scheduler().admission().set_options(admission);

  test::Schedule s;
  s.BlockAt("rules.commit.pre");
  ASSERT_OK_AND_ASSIGN(server::Session * t1, f.manager->CreateSession());
  s.Spawn("inflight", [&] {
    return t1->Execute("update accts set bal = bal + 1 where id = 1");
  });
  s.WaitBlocked("rules.commit.pre");

  ASSERT_OK_AND_ASSIGN(server::Session * t2, f.manager->CreateSession());
  s.BlockAt("server.admit.queue");
  s.Spawn("queued", [&] {
    return t2->Execute("update accts set bal = bal + 10 where id = 2");
  });
  // The queued writer has provably reached admission when the kill fires.
  s.WaitBlocked("server.admit.queue");
  s.Release("server.admit.queue");
  t2->Cancel("kill while queued for admission");
  Status queued = s.Join("queued");
  EXPECT_EQ(queued.code(), StatusCode::kCancelled) << queued;
  EXPECT_GE(f.manager->scheduler().admission().stats().shed_cancelled, 1u);

  s.Release("rules.commit.pre");
  ASSERT_OK(s.Join("inflight"));
  f.ExpectClean();
  EXPECT_EQ(f.manager->scheduler().admission().stats().queued, 0u);
}

// --- Per-session in-flight statement limit --------------------------------
// Driving one session from two threads at once is a protocol violation:
// while a statement is parked in flight, a second statement on the SAME
// session is refused with kOverloaded (another session is fine).
TEST(OverloadLitmus, SecondStatementOnBusySessionIsRefused) {
  Fixture f;
  ASSERT_OK_AND_ASSIGN(server::Session * t1, f.manager->CreateSession());
  test::Schedule s;
  s.BlockAt("rules.commit.pre");
  s.Spawn("busy", [&] {
    return t1->Execute("update accts set bal = bal + 1 where id = 1");
  });
  s.WaitBlocked("rules.commit.pre");

  EXPECT_EQ(t1->inflight_statements(), 1u);
  Status refused = t1->Execute("update accts set bal = 0 where id = 2");
  EXPECT_EQ(refused.code(), StatusCode::kOverloaded) << refused;
  Result<QueryResult> read_refused = t1->ExecuteQuery("select * from accts");
  EXPECT_EQ(read_refused.status().code(), StatusCode::kOverloaded);

  s.Release("rules.commit.pre");
  ASSERT_OK(s.Join("busy"));
  EXPECT_EQ(t1->inflight_statements(), 0u);
  f.ExpectClean();
  // The session manager's snapshot sees the counters.
  const auto snap = f.manager->Inspect();
  EXPECT_EQ(snap.num_sessions, f.manager->num_sessions());
  bool found = false;
  for (const auto& info : snap.sessions) {
    if (info.id == t1->id()) {
      found = true;
      EXPECT_GE(info.statements, 1u);
      EXPECT_EQ(info.inflight_statements, 0u);
      EXPECT_FALSE(info.killed);
    }
  }
  EXPECT_TRUE(found);
}

// --- Chaos-style injected kill at a cancellation point -------------------
// cancel.deliver armed once: the next CheckCancel anywhere inside the
// block fails as if an asynchronous kill had landed there; the block must
// roll back to the exact pre-state (the failure-atomicity contract every
// other chaos site honours).
TEST(OverloadLitmus, InjectedCancelRollsBackToExactPreState) {
  Fixture f;
  const uint64_t before = f.db().Checksum();
  FailpointRegistry::Instance().Arm(
      "cancel.deliver", {FailpointRegistry::Mode::kOnce, 1,
                         StatusCode::kCancelled, false});
  ASSERT_OK_AND_ASSIGN(server::Session * t1, f.manager->CreateSession());
  Status st = t1->Execute(
      "update accts set bal = bal + 1 where id = 1; "
      "update accts set bal = bal + 1 where id = 2");
  FailpointRegistry::Instance().DisarmAll();
  EXPECT_EQ(st.code(), StatusCode::kCancelled) << st;
  EXPECT_EQ(f.db().Checksum(), before);
  f.ExpectClean();
  ASSERT_OK(t1->Execute("update accts set bal = bal + 1 where id = 1"));
}

// --- Session kill lands at a vectorized batch boundary -------------------
// The vectorized executor (docs/EXECUTION.md) checks cancellation at
// chunk granularity. T1's update applies, then its rule action joins the
// transition table against base accts: T1 parks at exec.hashjoin.build
// with the user write already in the heap and X locks held. Cancel, then
// release: the very next batch-granularity check (the probe loop's) must
// deliver the kill, and the whole transaction — user write AND the
// half-done rule action — rolls back checksum-exact.
TEST(OverloadLitmus, SessionCancelAtHashJoinBuildRollsBackExactly) {
  Fixture f;
  ASSERT_OK(f.setup->Execute("create table audit (id int, bal int)"));
  ASSERT_OK(f.setup->Execute(
      "create rule jn when updated accts.bal "
      "then insert into audit "
      "(select a.id, a.bal from new updated accts.bal n, accts a "
      "where n.id = a.id)"));
  const uint64_t before = f.db().Checksum();

  ASSERT_OK_AND_ASSIGN(server::Session * t1, f.manager->CreateSession());
  test::Schedule s;
  s.BlockAt("exec.hashjoin.build");
  s.Spawn("joiner", [&] {
    return t1->Execute("update accts set bal = bal + 1 where id = 1");
  });
  s.WaitBlocked("exec.hashjoin.build");

  t1->Cancel("operator kill mid-hash-build");
  s.Release("exec.hashjoin.build");
  Status st = s.Join("joiner");
  EXPECT_EQ(st.code(), StatusCode::kCancelled) << st;
  EXPECT_EQ(f.db().Checksum(), before)
      << "a kill delivered at the hash-join batch boundary must roll the "
         "update and its rule action back to the exact pre-state";
  f.ExpectClean();

  // The session revives and the same statement then completes, with the
  // join rule writing its audit rows.
  t1->ResetCancel();
  ASSERT_OK(t1->Execute("update accts set bal = bal + 1 where id = 1"));
  EXPECT_EQ(ScalarInt(f.setup->ExecuteQuery("select count(*) from audit")),
            1);
}

// The same contract at the other vectorized site: exec.batch fires once
// per chunk of a batched predicate scan. The trigger is an insert (which
// itself never scans), so the first exec.batch hit is inside the RULE
// ACTION's update scan — the user's insert is already applied when the
// kill lands, and must vanish whole.
TEST(OverloadLitmus, SessionCancelAtBatchBoundaryRollsBackExactly) {
  Fixture f;
  ASSERT_OK(f.setup->Execute("create table audit (id int, bal int)"));
  ASSERT_OK(f.setup->Execute("insert into audit values (1, 0)"));
  ASSERT_OK(f.setup->Execute(
      "create rule tick when inserted into accts "
      "then update audit set bal = bal + 1 where bal >= 0"));
  const uint64_t before = f.db().Checksum();

  ASSERT_OK_AND_ASSIGN(server::Session * t1, f.manager->CreateSession());
  test::Schedule s;
  s.BlockAt("exec.batch");
  s.Spawn("writer", [&] {
    return t1->Execute("insert into accts values (7, 700)");
  });
  s.WaitBlocked("exec.batch");

  t1->Cancel("operator kill at a batch boundary");
  s.Release("exec.batch");
  Status st = s.Join("writer");
  EXPECT_EQ(st.code(), StatusCode::kCancelled) << st;
  EXPECT_EQ(f.db().Checksum(), before);
  f.ExpectClean();

  t1->ResetCancel();
  ASSERT_OK(t1->Execute("insert into accts values (7, 700)"));
  EXPECT_EQ(ScalarInt(f.setup->ExecuteQuery("select bal from audit")), 1);
}

}  // namespace
}  // namespace sopr
