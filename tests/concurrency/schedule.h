#ifndef SOPR_TESTS_CONCURRENCY_SCHEDULE_H_
#define SOPR_TESTS_CONCURRENCY_SCHEDULE_H_

#include <functional>
#include <map>
#include <string>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/status.h"

namespace sopr {
namespace test {

/// Deterministic schedule driver for isolation tests (ISSUE 4): named
/// threads are parked at failpoint sync points (FailpointRegistry's
/// blocking mode) and released in an exact order chosen by the test
/// thread. No sleeps anywhere — each step is a barrier:
///
///   Schedule s;
///   s.BlockAt("rules.commit.pre");             // writer will park here
///   s.Spawn("writer", [&] { return session->Execute(update_sql); });
///   s.WaitBlocked("rules.commit.pre");         // writer IS mid-commit now
///   ... read from this thread: must see the pre-update state ...
///   s.Release("rules.commit.pre");
///   Status w = s.Join("writer");               // commit finished
///
/// The destructor releases every block and joins every thread, so a
/// failing ASSERT between steps cannot deadlock the test binary.
class Schedule {
 public:
  Schedule() { FailpointRegistry::Instance().DisarmAll(); }

  ~Schedule() {
    // DisarmAll wakes any still-parked thread; then joining is safe.
    FailpointRegistry::Instance().DisarmAll();
    for (auto& [name, t] : threads_) {
      if (t.joinable()) t.join();
    }
  }

  Schedule(const Schedule&) = delete;
  Schedule& operator=(const Schedule&) = delete;

  /// Parks the next thread(s) that hit `site` until Release(site).
  void BlockAt(const std::string& site) {
    FailpointRegistry::Instance().ArmBlocking(site);
  }

  /// Starts step `name` on its own thread. `fn`'s Status is collected by
  /// Join.
  void Spawn(const std::string& name, std::function<Status()> fn) {
    results_.emplace(name, Status::OK());
    threads_.emplace(name, std::thread([this, name, fn = std::move(fn)] {
                       results_[name] = fn();
                     }));
  }

  /// Barrier: returns once at least `count` threads are parked at `site`.
  void WaitBlocked(const std::string& site, uint64_t count = 1) {
    FailpointRegistry::Instance().WaitForBlocked(site, count);
  }

  /// Unparks every thread at `site` and disarms the block.
  void Release(const std::string& site) {
    FailpointRegistry::Instance().Release(site);
  }

  /// Joins step `name` and returns its Status.
  Status Join(const std::string& name) {
    auto it = threads_.find(name);
    if (it == threads_.end()) {
      return Status::InvalidArgument("no scheduled step named " + name);
    }
    if (it->second.joinable()) it->second.join();
    return results_[name];
  }

 private:
  std::map<std::string, std::thread> threads_;
  // A step's result slot is created before its thread starts and read
  // only after join: no lock needed.
  std::map<std::string, Status> results_;
};

}  // namespace test
}  // namespace sopr

#endif  // SOPR_TESTS_CONCURRENCY_SCHEDULE_H_
