// Snapshot/WAL-prefix equivalence property (ISSUE 4 satellite): a
// snapshot pinned at LSN k reads EXACTLY the state produced by replaying
// the WAL prefix through k. Three state constructions must agree, bit
// for bit:
//
//   1. the live engine queried through the pin (MVCC version chains),
//   2. a serial in-memory oracle replaying the committed SQL through k,
//   3. a fresh engine recovered with wal::RecoverDatabase{through_lsn=k},
//
// compared by exact result rows (1 vs 2, 1 vs 3) and by
// Database::Checksum (2 vs 3 — catalog + heaps + indexes + handles).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "server/session_manager.h"
#include "test_util.h"
#include "wal/recovery.h"

namespace sopr {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sopr_snapprop_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

const char* kSchema[] = {
    "create table t (id int, v int)",
    "create table log (n int)",
    // Rule-generated mutations ride inside the same commit group, so the
    // property also covers multi-record transactions.
    "create rule audit when inserted into t "
    "then insert into log (select count(*) from inserted t)",
};

const char* kProbes[] = {"select * from t", "select * from log"};

struct Committed {
  uint64_t lsn = 0;
  uint64_t first_handle = 0;
  std::string sql;
};

/// Order-insensitive canonical form of a result set.
std::vector<std::string> Canon(const QueryResult& result) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const Row& row : result.rows) {
    std::string s;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) s += '|';
      s += row.at(i).ToString();
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::string RandomBlock(std::mt19937* rng) {
  const int id = static_cast<int>((*rng)() % 12);
  switch ((*rng)() % 10) {
    case 0:
    case 1:
    case 2:
    case 3:
    case 4:
      return "insert into t values (" + std::to_string(id) + ", " +
             std::to_string((*rng)() % 100) + ")";
    case 5:
    case 6:
    case 7:
      return "update t set v = v + " + std::to_string(1 + (*rng)() % 5) +
             " where id = " + std::to_string(id);
    default:
      return "delete from t where id = " + std::to_string(id);
  }
}

TEST(SnapshotPropertyTest, SnapshotAtLsnEqualsWalPrefixThroughLsn) {
  const std::string wal_dir = MakeTempDir();
  RuleEngineOptions options;
  options.wal_dir = wal_dir;
  auto opened = server::SessionManager::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  std::unique_ptr<server::SessionManager> manager = std::move(opened).value();
  ASSERT_OK_AND_ASSIGN(server::Session * session, manager->CreateSession());
  for (const char* ddl : kSchema) {
    ASSERT_OK(session->Execute(ddl));
  }

  // --- workload: ~60 random single-statement commits, pin every 3rd ----
  std::mt19937 rng(20260806);
  std::vector<Committed> committed;
  std::vector<server::Session::Snapshot> pins;
  for (int i = 0; i < 60; ++i) {
    const std::string block = RandomBlock(&rng);
    ASSERT_OK(session->Execute(block));
    if (session->last_receipt().commit_lsn == 0) continue;  // no-op block
    committed.push_back(Committed{session->last_receipt().commit_lsn,
                                  session->last_receipt().first_handle,
                                  block});
    if (committed.size() % 3 == 0) {
      ASSERT_OK_AND_ASSIGN(server::Session::Snapshot pin,
                           session->PinSnapshot());
      ASSERT_EQ(pin.lsn(), committed.back().lsn)
          << "single-threaded: the visible head is the last commit";
      pins.push_back(std::move(pin));
    }
  }
  ASSERT_GE(pins.size(), 10u);

  // --- oracle: serial replay, recording a checksum per prefix ----------
  Engine oracle((RuleEngineOptions()));
  for (const char* ddl : kSchema) {
    ASSERT_OK(oracle.Execute(ddl));
  }
  std::map<uint64_t, uint64_t> checksum_at;      // commit lsn -> checksum
  std::map<uint64_t, std::vector<std::vector<std::string>>> rows_at;
  for (const Committed& txn : committed) {
    oracle.db().BumpNextHandle(txn.first_handle);
    const Status replayed = oracle.Execute(txn.sql);
    ASSERT_TRUE(replayed.ok()) << txn.sql << " -> " << replayed;
    checksum_at[txn.lsn] = oracle.db().Checksum();
    std::vector<std::vector<std::string>> probes;
    for (const char* q : kProbes) {
      auto result = oracle.Query(q);
      ASSERT_TRUE(result.ok()) << result.status();
      probes.push_back(Canon(result.value()));
    }
    rows_at[txn.lsn] = std::move(probes);
  }

  // --- property, leg 1: live snapshot reads == oracle prefix -----------
  for (const server::Session::Snapshot& pin : pins) {
    ASSERT_TRUE(rows_at.count(pin.lsn())) << "pin at unknown lsn " << pin.lsn();
    for (size_t q = 0; q < 2; ++q) {
      auto result = session->QueryAt(pin, kProbes[q]);
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_EQ(Canon(result.value()), rows_at[pin.lsn()][q])
          << kProbes[q] << " at snapshot lsn " << pin.lsn();
    }
  }

  // --- property, leg 2: recovered WAL prefix == oracle prefix ----------
  // The manager is idle (no writes in flight), so the log file is safe
  // to read while it stays open; each pinned LSN recovers into a fresh
  // engine bounded by through_lsn.
  for (const server::Session::Snapshot& pin : pins) {
    Engine prefix((RuleEngineOptions()));
    wal::RecoverOptions bound;
    bound.through_lsn = pin.lsn();
    auto stats = wal::RecoverDatabase(wal_dir, &prefix, bound);
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_EQ(prefix.db().Checksum(), checksum_at[pin.lsn()])
        << "WAL prefix through " << pin.lsn()
        << " diverged from the serial oracle";
    for (size_t q = 0; q < 2; ++q) {
      auto live = session->QueryAt(pin, kProbes[q]);
      auto recovered = prefix.Query(kProbes[q]);
      ASSERT_TRUE(live.ok() && recovered.ok());
      EXPECT_EQ(Canon(live.value()), Canon(recovered.value()))
          << kProbes[q] << ": snapshot read != WAL prefix replay at lsn "
          << pin.lsn();
    }
  }

  // --- full recovery still equals the full oracle ----------------------
  pins.clear();  // pins borrow the manager's registry: release first
  const uint64_t final_checksum = manager->engine().db().Checksum();
  EXPECT_EQ(final_checksum, checksum_at[committed.back().lsn]);
  manager.reset();
  Engine full((RuleEngineOptions()));
  auto stats = wal::RecoverDatabase(wal_dir, &full);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(full.db().Checksum(), final_checksum);
}

TEST(SnapshotPropertyTest, PrefixBehindACheckpointIsRejected) {
  const std::string wal_dir = MakeTempDir();
  RuleEngineOptions options;
  options.wal_dir = wal_dir;
  uint64_t early_lsn = 0, final_checksum = 0;
  {
    auto opened = server::SessionManager::Open(options);
    ASSERT_TRUE(opened.ok()) << opened.status();
    auto manager = std::move(opened).value();
    ASSERT_OK_AND_ASSIGN(server::Session * session, manager->CreateSession());
    ASSERT_OK(session->Execute("create table t (id int, v int)"));
    ASSERT_OK(session->Execute("insert into t values (1, 1)"));
    early_lsn = session->last_receipt().commit_lsn;
    ASSERT_OK(session->Execute("insert into t values (2, 2)"));
    ASSERT_OK(manager->scheduler().WithExclusive(
        [&] { return manager->engine().Checkpoint(); }));
    ASSERT_OK(session->Execute("insert into t values (3, 3)"));
    final_checksum = manager->engine().db().Checksum();
  }

  // The installed snapshot covers LSNs beyond early_lsn: that prefix is
  // unreachable and recovery must say so instead of over-replaying.
  Engine prefix((RuleEngineOptions()));
  wal::RecoverOptions bound;
  bound.through_lsn = early_lsn;
  auto bounded = wal::RecoverDatabase(wal_dir, &prefix, bound);
  ASSERT_FALSE(bounded.ok());
  EXPECT_EQ(bounded.status().code(), StatusCode::kInvalidArgument)
      << bounded.status();

  // Unbounded recovery across the checkpoint still works.
  Engine full((RuleEngineOptions()));
  auto stats = wal::RecoverDatabase(wal_dir, &full);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(full.db().Checksum(), final_checksum);
}

}  // namespace
}  // namespace sopr
