// SQL-level extension statements: `process rules` (§5.3 triggering
// points inside scripts), `activate/deactivate rule`, and the [WF89a]
// result that boolean combinations of basic transition predicates are
// expressible through rule conditions over transition tables.

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "test_util.h"

namespace sopr {
namespace {

TEST(ProcessRulesStatement, SplitsBlockIntoTransitions) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (a int)"));
  ASSERT_OK(engine.Execute("create table log (n int)"));
  ASSERT_OK(engine.Execute(
      "create rule watch when inserted into t "
      "then insert into log (select count(*) from inserted t)"));

  // Without the marker the rule sees all three inserts at once; with the
  // marker it sees {2 inserts} then {1 insert}.
  ASSERT_OK_AND_ASSIGN(
      ExecutionTrace trace,
      engine.ExecuteBlock("insert into t values (1); insert into t values (2); "
                          "process rules; "
                          "insert into t values (3)"));
  ASSERT_EQ(trace.firings.size(), 2u);
  ASSERT_OK_AND_ASSIGN(QueryResult r,
                       engine.Query("select n from log order by n"));
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].at(0), Value::Int(1));
  EXPECT_EQ(r.rows[1].at(0), Value::Int(2));
}

TEST(ProcessRulesStatement, RollbackAtTriggeringPointAbortsWholeBlock) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (a int)"));
  ASSERT_OK(engine.Execute(
      "create rule veto when inserted into t "
      "if exists (select * from inserted t where a < 0) then rollback"));

  ASSERT_OK_AND_ASSIGN(
      ExecutionTrace trace,
      engine.ExecuteBlock("insert into t values (-1); process rules; "
                          "insert into t values (5)"));
  EXPECT_TRUE(trace.rolled_back);
  // The statement after the triggering point never ran.
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from t"), Value::Int(0));
}

TEST(ProcessRulesStatement, LeadingAndTrailingMarkersAreHarmless) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (a int)"));
  ASSERT_OK_AND_ASSIGN(
      ExecutionTrace trace,
      engine.ExecuteBlock(
          "process rules; insert into t values (1); process rules"));
  (void)trace;
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from t"), Value::Int(1));
}

TEST(ActivateDeactivate, SqlStatements) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (a int)"));
  ASSERT_OK(engine.Execute("create table log (n int)"));
  ASSERT_OK(engine.Execute(
      "create rule watch when inserted into t "
      "then insert into log values (1)"));

  ASSERT_OK(engine.Execute("deactivate rule watch"));
  ASSERT_OK(engine.Execute("insert into t values (1)"));
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from log"), Value::Int(0));

  ASSERT_OK(engine.Execute("activate rule watch"));
  ASSERT_OK(engine.Execute("insert into t values (2)"));
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from log"), Value::Int(1));

  EXPECT_EQ(engine.Execute("deactivate rule nosuch").code(),
            StatusCode::kCatalogError);
}

// --- [WF89a]: boolean combinations of basic transition predicates --------

TEST(BooleanCombinations, ConjunctionViaCondition) {
  // "when inserted into a AND deleted from b" is not directly
  // expressible (the when-list is a disjunction), but the condition can
  // demand both transition tables be non-empty ([WF89a]).
  Engine engine;
  ASSERT_OK(engine.Execute("create table a (x int)"));
  ASSERT_OK(engine.Execute("create table b (x int)"));
  ASSERT_OK(engine.Execute("create table log (n int)"));
  ASSERT_OK(engine.Execute("insert into b values (1), (2)"));
  ASSERT_OK(engine.Execute(
      "create rule both when inserted into a or deleted from b "
      "if exists (select * from inserted a) "
      "   and exists (select * from deleted b) "
      "then insert into log values (1)"));

  // Insert only: triggered but the condition fails.
  ASSERT_OK(engine.Execute("insert into a values (1)"));
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from log"), Value::Int(0));
  // Delete only: same.
  ASSERT_OK(engine.Execute("delete from b where x = 1"));
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from log"), Value::Int(0));
  // Both in one transition: fires.
  ASSERT_OK(engine.Execute(
      "insert into a values (2); delete from b where x = 2"));
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from log"), Value::Int(1));
}

TEST(BooleanCombinations, NegationViaCondition) {
  // "inserted into a AND NOT deleted from b".
  Engine engine;
  ASSERT_OK(engine.Execute("create table a (x int)"));
  ASSERT_OK(engine.Execute("create table b (x int)"));
  ASSERT_OK(engine.Execute("create table log (n int)"));
  ASSERT_OK(engine.Execute("insert into b values (1)"));
  ASSERT_OK(engine.Execute(
      "create rule only_a when inserted into a or deleted from b "
      "if not exists (select * from deleted b) "
      "then insert into log values (1)"));

  ASSERT_OK(engine.Execute("insert into a values (1)"));
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from log"), Value::Int(1));
  ASSERT_OK(engine.Execute(
      "insert into a values (2); delete from b where x = 1"));
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from log"), Value::Int(1));
}

}  // namespace
}  // namespace sopr
