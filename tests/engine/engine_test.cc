// Engine facade: DDL dispatch, transactions, §5.3 triggering points, and
// the §5.1 select-triggering extension.

#include "engine/engine.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sopr {
namespace {

TEST(EngineDdl, CreateTableAndQuery) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (a int, b string)"));
  ASSERT_OK(engine.Execute("insert into t values (1, 'x')"));
  ASSERT_OK_AND_ASSIGN(QueryResult r, engine.Query("select * from t"));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].at(1), Value::String("x"));
}

TEST(EngineDdl, MixingDdlAndDmlFails) {
  Engine engine;
  EXPECT_EQ(engine
                .Execute("create table t (a int); insert into t values (1)")
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineDdl, MultipleDdlInOneScript) {
  Engine engine;
  ASSERT_OK(engine.Execute(
      "create table a (x int); create table b (y int)"));
  EXPECT_TRUE(engine.db().catalog().HasTable("a"));
  EXPECT_TRUE(engine.db().catalog().HasTable("b"));
}

TEST(EngineDdl, QueryRejectsNonSelect) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (a int)"));
  EXPECT_EQ(engine.Query("insert into t values (1)").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineTransactions, BlockIsAtomicOnStatementFailure) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (a int)"));
  // Second statement fails (arity), first must be undone.
  Status s = engine.Execute(
      "insert into t values (1); insert into t values (2, 3)");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from t"), Value::Int(0));
}

TEST(EngineTransactions, ExplicitBeginCommit) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (a int)"));
  ASSERT_OK(engine.Begin());
  EXPECT_TRUE(engine.in_transaction());
  ASSERT_OK(engine.Run("insert into t values (1)"));
  ASSERT_OK(engine.Run("insert into t values (2)"));
  ASSERT_OK_AND_ASSIGN(ExecutionTrace trace, engine.Commit());
  (void)trace;
  EXPECT_FALSE(engine.in_transaction());
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from t"), Value::Int(2));
}

TEST(EngineTransactions, ExplicitRollback) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (a int)"));
  ASSERT_OK(engine.Begin());
  ASSERT_OK(engine.Run("insert into t values (1)"));
  ASSERT_OK(engine.Rollback());
  EXPECT_FALSE(engine.in_transaction());
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from t"), Value::Int(0));
}

TEST(EngineTransactions, NestedBeginFails) {
  Engine engine;
  ASSERT_OK(engine.Begin());
  EXPECT_EQ(engine.Begin().code(), StatusCode::kInvalidArgument);
  ASSERT_OK(engine.Rollback());
  EXPECT_EQ(engine.Rollback().code(), StatusCode::kInvalidArgument);
}

TEST(TriggeringPoints, RulesProcessedOnlyAtTriggeringPoint) {
  // §5.3: "When a rule triggering point is reached, the externally-
  // generated transition is considered complete, rules are processed, and
  // a new transition begins."
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (a int)"));
  ASSERT_OK(engine.Execute("create table log (n int)"));
  ASSERT_OK(engine.Execute(
      "create rule watch when inserted into t "
      "then insert into log (select count(*) from inserted t)"));

  ASSERT_OK(engine.Begin());
  ASSERT_OK(engine.Run("insert into t values (1)"));
  ASSERT_OK(engine.Run("insert into t values (2)"));
  // No rules processed yet.
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from log"), Value::Int(0));

  // Triggering point: the rule sees BOTH inserts as one transition.
  ASSERT_OK_AND_ASSIGN(ExecutionTrace t1, engine.ProcessRules());
  ASSERT_EQ(t1.firings.size(), 1u);
  EXPECT_EQ(QueryScalar(&engine, "select n from log"), Value::Int(2));

  // More inserts, then commit: the rule fires again on the NEW transition
  // only (1 fresh insert).
  ASSERT_OK(engine.Run("insert into t values (3)"));
  ASSERT_OK_AND_ASSIGN(ExecutionTrace t2, engine.Commit());
  ASSERT_EQ(t2.firings.size(), 1u);
  ASSERT_OK_AND_ASSIGN(QueryResult r,
                       engine.Query("select n from log order by n"));
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].at(0), Value::Int(1));
  EXPECT_EQ(r.rows[1].at(0), Value::Int(2));
}

TEST(TriggeringPoints, NotTriggeredRuleSeesAccumulatedTransitions) {
  // A rule whose predicate only matches the second batch still sees the
  // composite of both batches in its transition tables (§4.2 composite
  // semantics across triggering points).
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (a int)"));
  ASSERT_OK(engine.Execute("create table u (b int)"));
  ASSERT_OK(engine.Execute("create table log (n int)"));
  ASSERT_OK(engine.Execute(
      "create rule watch when inserted into u or inserted into t "
      "then insert into log (select count(*) from inserted t)"));
  // Make the rule effectively wait: first batch touches t only — it DOES
  // trigger. Use a condition to skip the first batch.
  ASSERT_OK(engine.Execute("drop rule watch"));
  ASSERT_OK(engine.Execute(
      "create rule watch when inserted into u or inserted into t "
      "if exists (select * from inserted u) "
      "then insert into log (select count(*) from inserted t)"));

  ASSERT_OK(engine.Begin());
  ASSERT_OK(engine.Run("insert into t values (1); insert into t values (2)"));
  ASSERT_OK_AND_ASSIGN(ExecutionTrace t1, engine.ProcessRules());
  EXPECT_TRUE(t1.firings.empty());  // condition false: no u rows yet

  ASSERT_OK(engine.Run("insert into u values (9)"));
  ASSERT_OK_AND_ASSIGN(ExecutionTrace t2, engine.Commit());
  ASSERT_EQ(t2.firings.size(), 1u);
  // The rule's `inserted t` covers both earlier inserts (composite).
  EXPECT_EQ(QueryScalar(&engine, "select n from log"), Value::Int(2));
}

TEST(SelectTriggering, SelectedPredicateFires) {
  // §5.1 extension: rules triggered by data retrieval.
  RuleEngineOptions options;
  options.track_selects = true;
  Engine engine(options);
  ASSERT_OK(engine.Execute("create table secret (v int)"));
  ASSERT_OK(engine.Execute("create table audit (cnt int)"));
  ASSERT_OK(engine.Execute("insert into secret values (1), (2), (3)"));
  ASSERT_OK(engine.Execute(
      "create rule audit_reads when selected secret "
      "then insert into audit (select count(*) from selected secret)"));

  // A select inside a transaction block triggers the rule.
  ASSERT_OK_AND_ASSIGN(ExecutionTrace trace,
                       engine.ExecuteBlock("select v from secret where v > 1"));
  ASSERT_EQ(trace.firings.size(), 1u);
  ASSERT_EQ(trace.retrieved.size(), 1u);  // the block's own select result
  EXPECT_EQ(trace.retrieved[0].rows.size(), 2u);
  EXPECT_EQ(QueryScalar(&engine, "select cnt from audit"), Value::Int(2));
}

TEST(SelectTriggering, DisabledByDefault) {
  Engine engine;  // track_selects defaults to false
  ASSERT_OK(engine.Execute("create table secret (v int)"));
  ASSERT_OK(engine.Execute("create table audit (cnt int)"));
  ASSERT_OK(engine.Execute("insert into secret values (1)"));
  ASSERT_OK(engine.Execute(
      "create rule audit_reads when selected secret "
      "then insert into audit values (1)"));
  ASSERT_OK_AND_ASSIGN(ExecutionTrace trace,
                       engine.ExecuteBlock("select v from secret"));
  EXPECT_TRUE(trace.firings.empty());
}

TEST(SelectTriggering, RetrievalInRuleAction) {
  // §5.1: "we might want to define a rule that automatically delivers a
  // summary of employee data whenever salaries are updated."
  Engine engine;
  CreatePaperSchema(&engine);
  LoadOrgChart(&engine);
  ASSERT_OK(engine.Execute(
      "create rule summary when updated emp.salary "
      "then select name, salary from emp order by salary desc"));

  ASSERT_OK_AND_ASSIGN(
      ExecutionTrace trace,
      engine.ExecuteBlock("update emp set salary = 99000 where name = 'Sue'"));
  ASSERT_EQ(trace.retrieved.size(), 1u);
  ASSERT_EQ(trace.retrieved[0].rows.size(), 6u);
  EXPECT_EQ(trace.retrieved[0].rows[0].at(0), Value::String("Sue"));
}

TEST(EngineMisc, TableSizeHelper) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (a int)"));
  ASSERT_OK(engine.Execute("insert into t values (1), (2)"));
  ASSERT_OK_AND_ASSIGN(size_t n, engine.TableSize("t"));
  EXPECT_EQ(n, 2u);
  EXPECT_FALSE(engine.TableSize("nosuch").ok());
}

TEST(EngineMisc, ParseErrorsSurface) {
  Engine engine;
  EXPECT_EQ(engine.Execute("selec * from t").code(), StatusCode::kParseError);
  EXPECT_EQ(engine.Query("not sql at all").status().code(),
            StatusCode::kParseError);
}

}  // namespace
}  // namespace sopr
