// CSV import/export: quoting, NULLs, type coercion, batch-as-transition
// rule semantics, and round-tripping.

#include "io/csv.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sopr {
namespace {

TEST(SplitCsvLine, PlainFields) {
  ASSERT_OK_AND_ASSIGN(auto fields, SplitCsvLine("a,b,c", ','));
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_OK_AND_ASSIGN(fields, SplitCsvLine("one", ','));
  EXPECT_EQ(fields, (std::vector<std::string>{"one"}));
  ASSERT_OK_AND_ASSIGN(fields, SplitCsvLine(",,", ','));
  EXPECT_EQ(fields, (std::vector<std::string>{"", "", ""}));
}

TEST(SplitCsvLine, QuotedFields) {
  std::vector<bool> quoted;
  ASSERT_OK_AND_ASSIGN(auto fields,
                       SplitCsvLine("\"a,b\",\"he said \"\"hi\"\"\",plain",
                                    ',', &quoted));
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a,b");
  EXPECT_EQ(fields[1], "he said \"hi\"");
  EXPECT_EQ(fields[2], "plain");
  EXPECT_EQ(quoted, (std::vector<bool>{true, true, false}));
}

TEST(SplitCsvLine, QuotedEmptyVsEmpty) {
  std::vector<bool> quoted;
  ASSERT_OK_AND_ASSIGN(auto fields, SplitCsvLine("\"\",", ',', &quoted));
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "");
  EXPECT_EQ(fields[1], "");
  EXPECT_TRUE(quoted[0]);
  EXPECT_FALSE(quoted[1]);
}

TEST(SplitCsvLine, UnterminatedQuoteFails) {
  EXPECT_FALSE(SplitCsvLine("\"oops", ',').ok());
}

class CsvImportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(engine_.Execute(
        "create table emp (name string, emp_no int, salary double, "
        "active bool)"));
  }
  Engine engine_;
};

TEST_F(CsvImportTest, BasicImportWithHeader) {
  const char* csv =
      "name,emp_no,salary,active\n"
      "Jane,10,90000.5,true\n"
      "Bill,40,25000,false\n";
  ASSERT_OK_AND_ASSIGN(size_t n, ImportCsv(&engine_, "emp", csv));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(QueryScalar(&engine_,
                        "select salary from emp where name = 'Jane'"),
            Value::Double(90000.5));
  EXPECT_EQ(QueryScalar(&engine_,
                        "select count(*) from emp where active = false"),
            Value::Int(1));
}

TEST_F(CsvImportTest, EmptyFieldsBecomeNull) {
  const char* csv = "name,emp_no,salary,active\nGhost,,,\n";
  ASSERT_OK_AND_ASSIGN(size_t n, ImportCsv(&engine_, "emp", csv));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(QueryScalar(&engine_,
                        "select count(*) from emp where salary is null"),
            Value::Int(1));
  // Quoted empty string is an empty STRING, not NULL.
  ASSERT_OK(ImportCsv(&engine_, "emp", "name,e,s,a\n\"\",1,2,true\n").status());
  EXPECT_EQ(QueryScalar(&engine_,
                        "select count(*) from emp where name = ''"),
            Value::Int(1));
}

TEST_F(CsvImportTest, TypeErrorsReportLineAndColumn) {
  const char* csv = "h1,h2,h3,h4\nJane,not_an_int,5,true\n";
  auto result = ImportCsv(&engine_, "emp", csv);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTypeError);
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(result.status().message().find("emp_no"), std::string::npos);
  EXPECT_EQ(QueryScalar(&engine_, "select count(*) from emp"), Value::Int(0));
}

TEST_F(CsvImportTest, ArityMismatchFails) {
  auto result = ImportCsv(&engine_, "emp", "h\nonly,two\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvImportTest, BatchIsOneSetOrientedTransition) {
  ASSERT_OK(engine_.Execute("create table log (n int)"));
  ASSERT_OK(engine_.Execute(
      "create rule watch when inserted into emp "
      "then insert into log (select count(*) from inserted emp)"));
  CsvOptions options;
  options.batch_rows = 2;  // 5 data rows -> batches of 2, 2, 1
  const char* csv =
      "h,h,h,h\n"
      "a,1,1,true\nb,2,2,true\nc,3,3,true\nd,4,4,true\ne,5,5,true\n";
  ASSERT_OK_AND_ASSIGN(size_t n, ImportCsv(&engine_, "emp", csv, options));
  EXPECT_EQ(n, 5u);
  ASSERT_OK_AND_ASSIGN(QueryResult log,
                       engine_.Query("select n from log order by n desc"));
  ASSERT_EQ(log.rows.size(), 3u);
  EXPECT_EQ(log.rows[0].at(0), Value::Int(2));
  EXPECT_EQ(log.rows[2].at(0), Value::Int(1));
}

TEST_F(CsvImportTest, RuleRollbackStopsImport) {
  ASSERT_OK(engine_.Execute(
      "create rule cap when inserted into emp "
      "if (select count(*) from emp) > 3 then rollback"));
  CsvOptions options;
  options.batch_rows = 2;
  const char* csv =
      "h,h,h,h\n"
      "a,1,1,true\nb,2,2,true\nc,3,3,true\nd,4,4,true\ne,5,5,true\n";
  auto result = ImportCsv(&engine_, "emp", csv, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kRolledBack);
  // First batch (2 rows) committed; second batch of 2 vetoed (count 4>3).
  EXPECT_EQ(QueryScalar(&engine_, "select count(*) from emp"), Value::Int(2));
}

TEST_F(CsvImportTest, RoundTrip) {
  const char* csv =
      "name,emp_no,salary,active\n"
      "\"quoted, name\",1,2.5,true\n"
      "plain,2,,false\n";
  ASSERT_OK(ImportCsv(&engine_, "emp", csv).status());
  ASSERT_OK_AND_ASSIGN(
      std::string out,
      ExportCsv(&engine_, "select * from emp order by emp_no"));
  // Re-import into a second engine and compare contents.
  Engine second;
  ASSERT_OK(second.Execute(
      "create table emp (name string, emp_no int, salary double, "
      "active bool)"));
  ASSERT_OK_AND_ASSIGN(size_t n, ImportCsv(&second, "emp", out));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(QueryScalar(&second,
                        "select name from emp where emp_no = 1"),
            Value::String("quoted, name"));
  EXPECT_EQ(QueryScalar(&second,
                        "select count(*) from emp where salary is null"),
            Value::Int(1));
}

TEST_F(CsvImportTest, ExportFormatsValues) {
  ASSERT_OK(engine_.Execute(
      "insert into emp values ('a\"b', 7, 1.5, true)"));
  ASSERT_OK_AND_ASSIGN(std::string out,
                       ExportCsv(&engine_, "select * from emp"));
  EXPECT_NE(out.find("name,emp_no,salary,active"), std::string::npos);
  EXPECT_NE(out.find("\"a\"\"b\",7,1.5,true"), std::string::npos);
}

TEST_F(CsvImportTest, MissingTableFails) {
  EXPECT_FALSE(ImportCsv(&engine_, "nosuch", "a\n1\n").ok());
}

}  // namespace
}  // namespace sopr
