// Dump/restore: a dumped database replayed into a fresh engine must have
// identical contents, rules, priorities, indexes, and rule behavior.
// Also covers ExplainSelect.

#include "io/dump.h"

#include <gtest/gtest.h>

#include "engine/explain.h"
#include "query/result_set.h"
#include "test_util.h"

namespace sopr {
namespace {

TEST(DumpRestore, FullRoundTrip) {
  Engine original;
  CreatePaperSchema(&original);
  LoadOrgChart(&original);
  ASSERT_OK(original.Execute("create index on emp (dept_no)"));
  ASSERT_OK(original.Execute(
      "create rule cascade when deleted from dept "
      "then delete from emp where dept_no in "
      "(select dept_no from deleted dept)"));
  ASSERT_OK(original.Execute(
      "create rule guard when updated emp.salary "
      "if (select avg(salary) from new updated emp.salary) > 1000000 "
      "then rollback"));
  ASSERT_OK(original.Execute("create rule priority guard before cascade"));
  ASSERT_OK(original.Execute(
      "create rule off when inserted into dept then delete from dept "
      "where dept_no = -1"));
  ASSERT_OK(original.Execute("deactivate rule off"));
  // Values with quoting hazards.
  ASSERT_OK(original.Execute(
      "insert into emp values ('O''Brien', 70, 12345.5, 1)"));

  ASSERT_OK_AND_ASSIGN(std::string dump, DumpDatabase(&original));

  Engine restored;
  ASSERT_OK(RestoreDatabase(&restored, dump));

  // Contents identical.
  for (const char* q :
       {"select * from emp order by emp_no, name",
        "select * from dept order by dept_no"}) {
    ASSERT_OK_AND_ASSIGN(QueryResult a, original.Query(q));
    ASSERT_OK_AND_ASSIGN(QueryResult b, restored.Query(q));
    EXPECT_EQ(FormatResult(a), FormatResult(b)) << q;
  }

  // Index restored.
  ASSERT_OK_AND_ASSIGN(const Table* emp, restored.db().GetTable("emp"));
  EXPECT_EQ(emp->num_indexes(), 1u);

  // Rules and priorities restored.
  EXPECT_EQ(restored.rules().num_rules(), 3u);
  EXPECT_TRUE(restored.rules().priorities().Higher("guard", "cascade"));
  ASSERT_OK_AND_ASSIGN(bool off_enabled,
                       restored.rules().IsRuleEnabled("off"));
  EXPECT_FALSE(off_enabled);

  // Restored rules behave: cascade fires in the restored engine.
  ASSERT_OK(restored.Execute("delete from dept where dept_no = 3"));
  EXPECT_EQ(QueryScalar(&restored,
                        "select count(*) from emp where dept_no = 3"),
            Value::Int(0));
}

TEST(DumpRestore, EmptyDatabase) {
  Engine engine;
  ASSERT_OK_AND_ASSIGN(std::string dump, DumpDatabase(&engine));
  EXPECT_NE(dump.find("-- sopr dump"), std::string::npos);
  // A dump of nothing contains no statements; restoring it into a fresh
  // engine is a no-op (ParseScript rejects empty scripts, so guard).
  Engine fresh;
  Status s = RestoreDatabase(&fresh, dump);
  // Comment-only script is an "empty statement" parse error by design.
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST(DumpRestore, LargeTableChunksInserts) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (a int)"));
  std::string batch = "insert into t values ";
  for (int i = 0; i < 600; ++i) {
    if (i > 0) batch += ", ";
    batch += "(" + std::to_string(i) + ")";
  }
  ASSERT_OK(engine.Execute(batch));
  ASSERT_OK_AND_ASSIGN(std::string dump, DumpDatabase(&engine));

  Engine restored;
  ASSERT_OK(RestoreDatabase(&restored, dump));
  EXPECT_EQ(QueryScalar(&restored, "select count(*) from t"),
            Value::Int(600));
  EXPECT_EQ(QueryScalar(&restored, "select sum(a) from t"),
            Value::Int(600 * 599 / 2));
}

TEST(DumpRestore, NullsSurvive) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (a int, b string)"));
  ASSERT_OK(engine.Execute("insert into t values (null, 'x'), (1, null)"));
  ASSERT_OK_AND_ASSIGN(std::string dump, DumpDatabase(&engine));
  Engine restored;
  ASSERT_OK(RestoreDatabase(&restored, dump));
  EXPECT_EQ(QueryScalar(&restored, "select count(*) from t where a is null"),
            Value::Int(1));
  EXPECT_EQ(QueryScalar(&restored, "select count(*) from t where b is null"),
            Value::Int(1));
}

TEST(Explain, ShowsPlanComponents) {
  Engine engine;
  CreatePaperSchema(&engine);
  LoadOrgChart(&engine);
  ASSERT_OK(engine.Execute("create index on emp (emp_no)"));

  ASSERT_OK_AND_ASSIGN(
      std::string plan,
      ExplainSelect(&engine,
                    "select e.name from emp e, dept d "
                    "where e.dept_no = d.dept_no and e.salary > 100 "
                    "and e.name <> d.dept_no"));
  EXPECT_NE(plan.find("pushed:   e: (e.salary > 100)"), std::string::npos);
  EXPECT_NE(plan.find("(hash)"), std::string::npos);
  EXPECT_NE(plan.find("order:    e, d"), std::string::npos);
  EXPECT_NE(plan.find("residual: (e.name <> d.dept_no)"), std::string::npos);

  // Index scan reported for point predicates.
  ASSERT_OK_AND_ASSIGN(std::string point,
                       ExplainSelect(&engine,
                                     "select * from emp where emp_no = 10"));
  EXPECT_NE(point.find("[index scan]"), std::string::npos);

  EXPECT_FALSE(ExplainSelect(&engine, "delete from emp").ok());
  EXPECT_FALSE(ExplainSelect(&engine, "select * from nosuch").ok());
}

}  // namespace
}  // namespace sopr
