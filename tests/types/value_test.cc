#include "types/value.h"

#include <gtest/gtest.h>

namespace sopr {
namespace {

TEST(ValueType, TagsAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).type(), ValueType::kBool);
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::Int(42).type(), ValueType::kInt);
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_EQ(Value::Double(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("x").type(), ValueType::kString);
  EXPECT_EQ(Value::String("x").AsString(), "x");
}

TEST(ValueType, NumericWidening) {
  EXPECT_TRUE(Value::Int(3).IsNumeric());
  EXPECT_TRUE(Value::Double(3.5).IsNumeric());
  EXPECT_FALSE(Value::String("3").IsNumeric());
  EXPECT_EQ(Value::Int(3).NumericAsDouble(), 3.0);
}

TEST(TriBoolLogic, NotAndOrTables) {
  EXPECT_EQ(TriNot(TriBool::kTrue), TriBool::kFalse);
  EXPECT_EQ(TriNot(TriBool::kFalse), TriBool::kTrue);
  EXPECT_EQ(TriNot(TriBool::kUnknown), TriBool::kUnknown);

  EXPECT_EQ(TriAnd(TriBool::kTrue, TriBool::kTrue), TriBool::kTrue);
  EXPECT_EQ(TriAnd(TriBool::kTrue, TriBool::kUnknown), TriBool::kUnknown);
  EXPECT_EQ(TriAnd(TriBool::kFalse, TriBool::kUnknown), TriBool::kFalse);

  EXPECT_EQ(TriOr(TriBool::kFalse, TriBool::kFalse), TriBool::kFalse);
  EXPECT_EQ(TriOr(TriBool::kTrue, TriBool::kUnknown), TriBool::kTrue);
  EXPECT_EQ(TriOr(TriBool::kFalse, TriBool::kUnknown), TriBool::kUnknown);
}

TEST(SqlComparison, NullIsUnknown) {
  EXPECT_EQ(Value::Null().SqlEquals(Value::Int(1)), TriBool::kUnknown);
  EXPECT_EQ(Value::Int(1).SqlEquals(Value::Null()), TriBool::kUnknown);
  EXPECT_EQ(Value::Null().SqlEquals(Value::Null()), TriBool::kUnknown);
  EXPECT_EQ(Value::Null().SqlLess(Value::Int(1)), TriBool::kUnknown);
}

TEST(SqlComparison, CrossNumeric) {
  EXPECT_EQ(Value::Int(2).SqlEquals(Value::Double(2.0)), TriBool::kTrue);
  EXPECT_EQ(Value::Int(2).SqlLess(Value::Double(2.5)), TriBool::kTrue);
  EXPECT_EQ(Value::Double(3.0).SqlLess(Value::Int(2)), TriBool::kFalse);
}

TEST(SqlComparison, Strings) {
  EXPECT_EQ(Value::String("abc").SqlEquals(Value::String("abc")),
            TriBool::kTrue);
  EXPECT_EQ(Value::String("abc").SqlLess(Value::String("abd")),
            TriBool::kTrue);
}

TEST(SqlComparison, MismatchedTypesAreUnknown) {
  EXPECT_EQ(Value::String("1").SqlEquals(Value::Int(1)), TriBool::kUnknown);
  EXPECT_EQ(Value::Bool(true).SqlLess(Value::Int(1)), TriBool::kUnknown);
}

TEST(StructuralEquality, DistinguishesNullAndTypes) {
  EXPECT_TRUE(Value::Null().StructurallyEquals(Value::Null()));
  EXPECT_FALSE(Value::Null().StructurallyEquals(Value::Int(0)));
  EXPECT_FALSE(Value::Int(2).StructurallyEquals(Value::Double(2.0)));
  EXPECT_TRUE(Value::Int(2).StructurallyEquals(Value::Int(2)));
}

TEST(StructuralOrder, TotalOrderForSorting) {
  // NULL < bool < numerics < string by type tag (numerics by value).
  EXPECT_TRUE(Value::Null().StructurallyLess(Value::Bool(false)));
  EXPECT_TRUE(Value::Bool(true).StructurallyLess(Value::Int(0)));
  EXPECT_TRUE(Value::Int(1).StructurallyLess(Value::Double(1.5)));
  EXPECT_TRUE(Value::Double(1.5).StructurallyLess(Value::Int(2)));
  EXPECT_TRUE(Value::Int(5).StructurallyLess(Value::String("")));
  EXPECT_FALSE(Value::Int(2).StructurallyLess(Value::Int(2)));
}

TEST(Arithmetic, IntAndDoublePromotion) {
  EXPECT_EQ(Value::Add(Value::Int(2), Value::Int(3)).value(), Value::Int(5));
  EXPECT_EQ(Value::Add(Value::Int(2), Value::Double(0.5)).value(),
            Value::Double(2.5));
  EXPECT_EQ(Value::Subtract(Value::Int(2), Value::Int(5)).value(),
            Value::Int(-3));
  EXPECT_EQ(Value::Multiply(Value::Double(1.5), Value::Int(4)).value(),
            Value::Double(6.0));
}

TEST(Arithmetic, DivisionSemantics) {
  // Exact integer division stays int; inexact becomes double.
  EXPECT_EQ(Value::Divide(Value::Int(6), Value::Int(3)).value(),
            Value::Int(2));
  EXPECT_EQ(Value::Divide(Value::Int(7), Value::Int(2)).value(),
            Value::Double(3.5));
  auto div0 = Value::Divide(Value::Int(1), Value::Int(0));
  EXPECT_FALSE(div0.ok());
  EXPECT_EQ(div0.status().code(), StatusCode::kExecutionError);
}

TEST(Arithmetic, NullPropagates) {
  EXPECT_TRUE(Value::Add(Value::Null(), Value::Int(1)).value().is_null());
  EXPECT_TRUE(Value::Divide(Value::Int(1), Value::Null()).value().is_null());
  EXPECT_TRUE(Value::Negate(Value::Null()).value().is_null());
}

TEST(Arithmetic, TypeErrors) {
  EXPECT_EQ(Value::Subtract(Value::String("a"), Value::Int(1)).status().code(),
            StatusCode::kTypeError);
  EXPECT_EQ(Value::Negate(Value::String("a")).status().code(),
            StatusCode::kTypeError);
  // String + string concatenates (documented convenience).
  EXPECT_EQ(Value::Add(Value::String("a"), Value::String("b")).value(),
            Value::String("ab"));
}

TEST(Arithmetic, OverflowPromotesToDouble) {
  int64_t big = INT64_MAX;
  auto sum = Value::Add(Value::Int(big), Value::Int(1));
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum.value().type(), ValueType::kDouble);
  EXPECT_GT(sum.value().AsDouble(), 9.2e18);

  auto diff = Value::Subtract(Value::Int(INT64_MIN), Value::Int(1));
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff.value().type(), ValueType::kDouble);

  auto product = Value::Multiply(Value::Int(big), Value::Int(2));
  ASSERT_TRUE(product.ok());
  EXPECT_EQ(product.value().type(), ValueType::kDouble);

  // INT64_MIN / -1 and -INT64_MIN overflow the int range.
  auto quotient = Value::Divide(Value::Int(INT64_MIN), Value::Int(-1));
  ASSERT_TRUE(quotient.ok());
  EXPECT_EQ(quotient.value().type(), ValueType::kDouble);
  auto negated = Value::Negate(Value::Int(INT64_MIN));
  ASSERT_TRUE(negated.ok());
  EXPECT_EQ(negated.value().type(), ValueType::kDouble);

  // Non-overflowing cases keep int exactness.
  EXPECT_EQ(Value::Add(Value::Int(big - 1), Value::Int(1)).value(),
            Value::Int(big));
}

TEST(Rendering, StringEscaping) {
  EXPECT_EQ(Value::String("O'Brien").ToString(), "'O''Brien'");
  EXPECT_EQ(Value::String("").ToString(), "''");
}

TEST(Rendering, ToStringFormats) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Double(2.0).ToString(), "2.0");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
}

}  // namespace
}  // namespace sopr
