// Concurrent soak (docs/CONCURRENCY.md acceptance test): 8 sessions x
// 200 transactions hammer one engine through the session front-end
// while a chaos thread arms abort-safe failpoints. Afterwards the
// surviving state must equal a SERIAL replay of exactly the committed
// transactions in commit-LSN order (the serialization the scheduler
// claims to have produced), and a restart from the WAL must recover the
// same state bit for bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "engine/engine.h"
#include "server/session_manager.h"
#include "test_util.h"
#include "wal/wal_writer.h"

namespace sopr {
namespace {

constexpr int kSessions = 8;
constexpr int kTxnsPerSession = 200;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sopr_concurrent_soak_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

/// One committed transaction, as the oracle needs it: its place in the
/// commit order, the handle counter at admission, and its SQL.
struct Committed {
  uint64_t lsn = 0;
  uint64_t first_handle = 0;
  std::string sql;
};

const char* kSchema[] = {
    "create table accounts (id int, balance double)",
    "create table ledger (id int, amount double)",
    "create table audit (n int)",
    "create index on ledger (id)",
    // Every ledger insert is audited with the set-oriented count.
    "create rule audit_ins when inserted into ledger "
    "then insert into audit (select count(*) from inserted ledger)",
    // Negative amounts are forbidden: the whole transaction rolls back.
    "create rule no_negative when inserted into ledger "
    "if exists (select * from inserted ledger where amount < 0) "
    "then rollback",
    // Deleting an account cascades to its ledger rows.
    "create rule cascade when deleted from accounts "
    "then delete from ledger where id in (select id from deleted accounts)",
};

/// Deterministic per-(session, step) operation block. ~1 in 8 ledger
/// inserts carries a negative amount and must be rolled back by the
/// guard rule.
std::string MakeBlock(int session, int step, std::mt19937* rng) {
  const int id = static_cast<int>((*rng)() % 40);
  switch ((*rng)() % 5) {
    case 0: {
      const int amount = static_cast<int>((*rng)() % 80) - 10;
      return "insert into ledger values (" + std::to_string(id) + ", " +
             std::to_string(amount) + ")";
    }
    case 1:
      return "insert into accounts values (" + std::to_string(id) + ", " +
             std::to_string(session * 1000 + step) + ")";
    case 2:
      return "update accounts set balance = balance + 1 where id = " +
             std::to_string(id);
    case 3:  // cascade: account deletion drags ledger rows along
      return "delete from accounts where id = " + std::to_string(id);
    default:  // multi-op block: two inserts in one transaction
      return "insert into ledger values (" + std::to_string(id) + ", 5); "
             "insert into accounts values (" + std::to_string(100 + id) +
             ", 1)";
  }
}

// Sites whose failure aborts the victim transaction CLEANLY (statement
// fails -> rollback to S0). Durability sites (wal.sync and friends) are
// excluded on purpose: those poison the writer by design, which is its
// own test (group_commit_test.cc).
const char* kChaosSites[] = {
    "storage.insert.pre", "storage.update.pre", "storage.delete.pre",
    "rules.block.pre",    "rules.action.pre",   "rules.commit.pre",
    "engine.execute.pre", "wal.append",         "wal.commit.pre",
    "server.submit.pre",
};

TEST(ConcurrentSoakTest, StateMatchesSerialOracleAndSurvivesRestart) {
  const std::string wal_dir = MakeTempDir();
  FailpointRegistry::Instance().DisarmAll();

  RuleEngineOptions options;
  options.wal_dir = wal_dir;
  auto opened = server::SessionManager::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  std::unique_ptr<server::SessionManager> manager = std::move(opened).value();

  ASSERT_OK_AND_ASSIGN(server::Session * setup, manager->CreateSession());
  for (const char* ddl : kSchema) {
    ASSERT_OK(setup->Execute(ddl));
  }

  // --- traffic + chaos ---------------------------------------------------
  std::mutex merge_mu;
  std::vector<Committed> committed;
  std::atomic<int> commit_count{0}, abort_count{0};
  std::atomic<bool> hard_failure{false};
  std::atomic<bool> done{false};

  std::thread chaos([&] {
    std::mt19937 rng(4242);
    size_t k = 0;
    while (!done.load()) {
      const char* site = kChaosSites[k++ % (sizeof(kChaosSites) /
                                            sizeof(kChaosSites[0]))];
      FailpointRegistry::Trigger trigger;
      trigger.mode = FailpointRegistry::Mode::kNth;
      trigger.n = 1 + rng() % 4;
      FailpointRegistry::Instance().Arm(site, trigger);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      FailpointRegistry::Instance().Disarm(site);
    }
  });

  std::vector<std::thread> threads;
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      auto session = manager->CreateSession();
      if (!session.ok()) {
        hard_failure.store(true);
        return;
      }
      std::mt19937 rng(7919u * (i + 1));
      std::vector<Committed> mine;
      for (int j = 0; j < kTxnsPerSession; ++j) {
        const std::string block = MakeBlock(i, j, &rng);
        Status st = session.value()->Execute(block);
        if (st.ok()) {
          commit_count.fetch_add(1);
          // commit_lsn == 0 marks a no-op block (e.g. an update matching
          // nothing): committed read-only, no batch, no state change —
          // nothing for the oracle to replay.
          if (session.value()->last_receipt().commit_lsn != 0) {
            mine.push_back(
                Committed{session.value()->last_receipt().commit_lsn,
                          session.value()->last_receipt().first_handle,
                          block});
          }
        } else {
          abort_count.fetch_add(1);
          // Every failure must be a clean abort — a "server halted"
          // fatal here means the chaos hit a poisoning site.
          if (st.message().find("server halted") != std::string::npos) {
            hard_failure.store(true);
          }
        }
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      committed.insert(committed.end(), mine.begin(), mine.end());
    });
  }
  for (std::thread& t : threads) t.join();
  done.store(true);
  chaos.join();
  FailpointRegistry::Instance().DisarmAll();

  ASSERT_FALSE(hard_failure.load());
  ASSERT_OK(manager->scheduler().fatal());
  EXPECT_EQ(commit_count.load() + abort_count.load(),
            kSessions * kTxnsPerSession);
  EXPECT_GT(commit_count.load(), 0);
  EXPECT_GT(abort_count.load(), 0) << "chaos+guards should abort some";
  // committed() counts no-op (read-only) blocks too; `committed` holds
  // only the blocks that staged a batch.
  EXPECT_GE(manager->scheduler().committed(),
            static_cast<uint64_t>(committed.size()));
  EXPECT_EQ(manager->scheduler().committed(),
            static_cast<uint64_t>(commit_count.load()));

  // Commit LSNs are the serialization order: unique and totally ordered.
  std::sort(committed.begin(), committed.end(),
            [](const Committed& a, const Committed& b) { return a.lsn < b.lsn; });
  for (size_t k = 1; k < committed.size(); ++k) {
    ASSERT_LT(committed[k - 1].lsn, committed[k].lsn);
  }

  const uint64_t live_checksum = manager->engine().db().Checksum();

  // --- oracle: serial replay of the committed transactions ---------------
  // A fresh in-memory engine replays the DDL, then exactly the committed
  // blocks in commit-LSN order. Handles consumed by aborted transactions
  // are skipped by bumping to each transaction's admission-time counter,
  // so handle assignment (which Checksum mixes in) reproduces exactly.
  Engine oracle((RuleEngineOptions()));
  for (const char* ddl : kSchema) {
    ASSERT_OK(oracle.Execute(ddl));
  }
  for (const Committed& txn : committed) {
    oracle.db().BumpNextHandle(txn.first_handle);
    const Status replayed = oracle.Execute(txn.sql);
    ASSERT_TRUE(replayed.ok())
        << "committed live, so the serial replay must commit too: " << txn.sql
        << " -> " << replayed;
  }
  EXPECT_EQ(oracle.db().Checksum(), live_checksum)
      << "concurrent execution diverged from its own serialization order";

  // --- group-commit accounting -------------------------------------------
  const wal::GroupCommitStats stats = manager->engine().wal()->group_stats();
  EXPECT_EQ(stats.batches, static_cast<uint64_t>(committed.size()));
  EXPECT_LE(stats.cohorts, stats.batches);

  // --- restart: the WAL must recover the identical state ------------------
  manager.reset();  // drains + closes the engine, releases the dir lock
  auto reopened = server::SessionManager::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened.value()->engine().db().Checksum(), live_checksum)
      << "recovery lost or invented transactions";
  // And the recovered engine still takes new work.
  ASSERT_OK_AND_ASSIGN(server::Session * after,
                       reopened.value()->CreateSession());
  ASSERT_OK(after->Execute("insert into ledger values (999, 1)"));
}

}  // namespace
}  // namespace sopr
