// Concurrent soak (docs/CONCURRENCY.md acceptance test): 8 sessions x
// 200 transactions hammer one engine through the session front-end
// while a chaos thread arms abort-safe failpoints — including the lock
// manager's acquisition site — and the workload itself seeds lock-order
// inversions (two-account blocks in shuffled key order) so real
// deadlocks fire mid-soak. Afterwards the surviving state must equal a
// SERIAL replay of exactly the committed transactions in commit-LSN
// order (the serialization strict 2PL + the commit mutex claim to have
// produced; compared logically — with concurrent writers, tuple-handle
// ASSIGNMENT is interleaving-dependent even though row states are not),
// no deadlock victim may leave version garbage behind, and a restart
// from the WAL must recover the live state bit for bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "engine/engine.h"
#include "server/session_manager.h"
#include "test_util.h"
#include "wal/wal_writer.h"

namespace sopr {
namespace {

constexpr int kSessions = 8;
constexpr int kTxnsPerSession = 200;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sopr_concurrent_soak_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

/// One committed transaction, as the oracle needs it: its place in the
/// commit order and its SQL.
struct Committed {
  uint64_t lsn = 0;
  std::string sql;
};

/// What a chaos reader saw through one pinned snapshot: the pinned LSN
/// and the canonicalized result of each probe query. Verified post-run
/// against the serial oracle replayed through exactly that LSN.
struct SnapshotSample {
  uint64_t lsn = 0;
  std::vector<std::string> accounts;
  std::vector<std::string> audit;
};

/// Order-insensitive canonical form of a result set (one string per row).
std::vector<std::string> Canon(const QueryResult& result) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const Row& row : result.rows) {
    std::string s;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) s += '|';
      s += row.at(i).ToString();
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

// Workload shape note (record locking, ISSUE 5): accounts has a FIXED
// population — seeded once, never inserted into or deleted from — so its
// indexed-equality updates take record X locks with no insert-phantom
// exposure (equality predicates only lock the records the index probe
// found; predicate/range locking is future work, see ROADMAP). ledger
// takes inserts (record locks on fresh handles) and unindexed deletes
// (table X, which conflicts with every insert's IX and is therefore
// phantom-free too). That keeps the serial-replay oracle EXACT while the
// workload still drives record-level conflicts and lock-order
// inversions.
const char* kSchema[] = {
    "create table accounts (id int, balance double)",
    "create table ledger (id int, amount double)",
    "create table audit (n int)",
    "create index on ledger (id)",
    // Indexed account updates take RECORD locks: the shuffled two-account
    // blocks below then produce genuine lock-order inversions.
    "create index on accounts (id)",
    // Every ledger insert is audited with the set-oriented count.
    "create rule audit_ins when inserted into ledger "
    "then insert into audit (select count(*) from inserted ledger)",
    // Negative amounts are forbidden: the whole transaction rolls back.
    "create rule no_negative when inserted into ledger "
    "if exists (select * from inserted ledger where amount < 0) "
    "then rollback",
    // Ledger deletions are audited too — a second set-oriented rule whose
    // action writes ride inside the deleting transaction's locks.
    "create rule audit_del when deleted from ledger "
    "then insert into audit (select count(*) from deleted ledger)",
};

/// Deterministic per-(session, step) operation block. A slice of the
/// ledger inserts carries a negative amount and must be rolled back by
/// the guard rule.
std::string MakeBlock(int session, int step, std::mt19937* rng) {
  (void)session;
  (void)step;
  const int id = static_cast<int>((*rng)() % 40);
  switch ((*rng)() % 6) {
    case 0: {
      const int amount = static_cast<int>((*rng)() % 80) - 10;
      return "insert into ledger values (" + std::to_string(id) + ", " +
             std::to_string(amount) + ")";
    }
    case 1:  // indexed single-record update
      return "update accounts set balance = balance + 1 where id = " +
             std::to_string(id);
    case 2:  // deadlock chaos: two record locks in shuffled key order
      return "update accounts set balance = balance + 1 where id = " +
             std::to_string(id) +
             "; update accounts set balance = balance + 1 where id = " +
             std::to_string(static_cast<int>((*rng)() % 40));
    case 3:  // unindexed delete: table X vs every insert's IX
      return "delete from ledger where amount = " +
             std::to_string(static_cast<int>((*rng)() % 20));
    case 4:  // cross-table block, ledger first (inversion vs case 5)
      return "insert into ledger values (" + std::to_string(id) + ", 5); "
             "update accounts set balance = balance + 2 where id = " +
             std::to_string(id);
    default:  // cross-table block, accounts first
      return "update accounts set balance = balance + 3 where id = " +
             std::to_string(id) +
             "; insert into ledger values (" + std::to_string(id) + ", 7)";
  }
}

/// The fixed account population (see the workload shape note above): one
/// committed block, replayed verbatim by the oracle before any traffic.
std::string SeedAccountsSql() {
  std::string sql = "insert into accounts values (0, 0)";
  for (int id = 1; id < 40; ++id) {
    sql += "; insert into accounts values (" + std::to_string(id) + ", 0)";
  }
  return sql;
}

// Sites whose failure aborts the victim transaction CLEANLY (statement
// fails -> rollback to S0). Durability sites (wal.sync and friends) are
// excluded on purpose: those poison the writer by design, which is its
// own test (group_commit_test.cc).
const char* kChaosSites[] = {
    "storage.insert.pre", "storage.update.pre", "storage.delete.pre",
    "rules.block.pre",    "rules.action.pre",   "rules.commit.pre",
    "engine.execute.pre", "wal.append",         "wal.commit.pre",
    "server.submit.pre",  "lock.acquire",
};

TEST(ConcurrentSoakTest, StateMatchesSerialOracleAndSurvivesRestart) {
  const std::string wal_dir = MakeTempDir();
  FailpointRegistry::Instance().DisarmAll();

  RuleEngineOptions options;
  options.wal_dir = wal_dir;
  // Every abort — chaos-injected or deadlock victim — must leave no
  // pending version on any row it touched (checked under its still-held
  // X locks, before they release).
  options.verify_rollback_integrity = true;
  auto opened = server::SessionManager::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  std::unique_ptr<server::SessionManager> manager = std::move(opened).value();

  ASSERT_OK_AND_ASSIGN(server::Session * setup, manager->CreateSession());
  for (const char* ddl : kSchema) {
    ASSERT_OK(setup->Execute(ddl));
  }
  ASSERT_OK(setup->Execute(SeedAccountsSql()));
  // Commits/batches staged by setup (the seed) — excluded from the
  // traffic accounting below.
  const uint64_t setup_commits = manager->scheduler().committed();
  const uint64_t setup_batches = manager->engine().wal()->group_stats().batches;

  // --- traffic + chaos ---------------------------------------------------
  std::mutex merge_mu;
  std::vector<Committed> committed;
  std::atomic<int> commit_count{0}, abort_count{0};
  std::atomic<int> deadlock_count{0};
  std::atomic<bool> hard_failure{false};
  std::atomic<bool> done{false};

  std::thread chaos([&] {
    std::mt19937 rng(4242);
    size_t k = 0;
    while (!done.load()) {
      const char* site = kChaosSites[k++ % (sizeof(kChaosSites) /
                                            sizeof(kChaosSites[0]))];
      FailpointRegistry::Trigger trigger;
      trigger.mode = FailpointRegistry::Mode::kNth;
      trigger.n = 1 + rng() % 4;
      FailpointRegistry::Instance().Arm(site, trigger);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      FailpointRegistry::Instance().Disarm(site);
    }
  });

  // --- chaos snapshot readers (ISSUE 4 satellite) ------------------------
  // Each reader loops pinning a snapshot mid-soak and reading through it.
  // Inside one pin the reads must be repeatable; a capped sample of
  // {pinned LSN, results} is kept for exact post-run verification against
  // the serial oracle replayed through that LSN.
  constexpr int kReaders = 2;
  constexpr size_t kSamplesPerReader = 32;
  std::mutex samples_mu;
  std::vector<SnapshotSample> samples;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      auto session = manager->CreateSession();
      if (!session.ok()) {
        hard_failure.store(true);
        return;
      }
      size_t iter = 0, sampled = 0;
      std::vector<SnapshotSample> mine;
      while (!done.load()) {
        auto pin = session.value()->PinSnapshot();
        if (!pin.ok()) {
          hard_failure.store(true);
          return;
        }
        auto accounts =
            session.value()->QueryAt(pin.value(), "select * from accounts");
        auto audit =
            session.value()->QueryAt(pin.value(), "select * from audit");
        auto accounts_again =
            session.value()->QueryAt(pin.value(), "select * from accounts");
        if (!accounts.ok() || !audit.ok() || !accounts_again.ok()) {
          // Snapshot reads take no failpoint-instrumented path: any
          // failure under chaos is a routing bug.
          hard_failure.store(true);
          return;
        }
        // Repeatable read within one pin, even mid-soak.
        if (Canon(accounts.value()) != Canon(accounts_again.value())) {
          hard_failure.store(true);
          return;
        }
        if (++iter % 7 == static_cast<size_t>(r) &&
            sampled < kSamplesPerReader) {
          ++sampled;
          mine.push_back(SnapshotSample{pin.value().lsn(),
                                        Canon(accounts.value()),
                                        Canon(audit.value())});
        }
      }
      std::lock_guard<std::mutex> lock(samples_mu);
      samples.insert(samples.end(), mine.begin(), mine.end());
    });
  }

  std::vector<std::thread> threads;
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      auto session = manager->CreateSession();
      if (!session.ok()) {
        hard_failure.store(true);
        return;
      }
      std::mt19937 rng(7919u * (i + 1));
      std::vector<Committed> mine;
      for (int j = 0; j < kTxnsPerSession; ++j) {
        const std::string block = MakeBlock(i, j, &rng);
        Status st = session.value()->Execute(block);
        if (st.ok()) {
          commit_count.fetch_add(1);
          // commit_lsn == 0 marks a no-op block (e.g. an update matching
          // nothing): committed read-only, no batch, no state change —
          // nothing for the oracle to replay.
          if (session.value()->last_receipt().commit_lsn != 0) {
            mine.push_back(
                Committed{session.value()->last_receipt().commit_lsn, block});
          }
        } else {
          abort_count.fetch_add(1);
          if (st.code() == StatusCode::kDeadlock) deadlock_count.fetch_add(1);
          // Every failure must be a clean abort — a "server halted"
          // fatal here means the chaos hit a poisoning site.
          if (st.message().find("server halted") != std::string::npos) {
            hard_failure.store(true);
          }
        }
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      committed.insert(committed.end(), mine.begin(), mine.end());
    });
  }
  for (std::thread& t : threads) t.join();
  done.store(true);
  chaos.join();
  for (std::thread& t : readers) t.join();
  FailpointRegistry::Instance().DisarmAll();

  ASSERT_FALSE(hard_failure.load());
  ASSERT_OK(manager->scheduler().fatal());
  EXPECT_EQ(commit_count.load() + abort_count.load(),
            kSessions * kTxnsPerSession);
  EXPECT_GT(commit_count.load(), 0);
  EXPECT_GT(abort_count.load(), 0) << "chaos+guards should abort some";
  // committed() counts no-op (read-only) blocks too; `committed` holds
  // only the blocks that staged a batch.
  EXPECT_GE(manager->scheduler().committed(),
            static_cast<uint64_t>(committed.size()));
  EXPECT_EQ(manager->scheduler().committed(),
            setup_commits + static_cast<uint64_t>(commit_count.load()));
  // Deadlock accounting: every victim the lock manager chose surfaced as
  // exactly one kDeadlock abort (and vice versa). No victim left pending
  // versions — verify_rollback_integrity checked each rollback under the
  // victim's own locks, and the final invariant sweep re-checks globally.
  EXPECT_EQ(manager->engine().db().lock_manager()->deadlocks(),
            static_cast<uint64_t>(deadlock_count.load()));
  ASSERT_OK(manager->engine().CheckInvariants());

  // Commit LSNs are the serialization order: unique and totally ordered.
  std::sort(committed.begin(), committed.end(),
            [](const Committed& a, const Committed& b) { return a.lsn < b.lsn; });
  for (size_t k = 1; k < committed.size(); ++k) {
    ASSERT_LT(committed[k - 1].lsn, committed[k].lsn);
  }

  const uint64_t live_checksum = manager->engine().db().Checksum();
  const uint64_t live_logical = manager->engine().db().LogicalChecksum();

  // --- oracle: serial replay of the committed transactions ---------------
  // A fresh in-memory engine replays the DDL, then exactly the committed
  // blocks in commit-LSN order. Compared via LogicalChecksum (schema +
  // row multisets): with concurrent writers, tuple-handle ASSIGNMENT
  // depends on the real-time interleaving of overlapping transactions,
  // so the exact Checksum is not reproducible by any serial replay —
  // but every row VALUE is, which is precisely the serializability
  // claim strict 2PL + commit-LSN ordering make.
  // Snapshot samples are verified along the way: a snapshot pinned at
  // LSN L must read exactly the oracle's state after replaying every
  // commit with lsn <= L (visible_lsn only ever exposes whole commits,
  // so every pinned LSN is a commit LSN — or 0, the empty prefix).
  Engine oracle((RuleEngineOptions()));
  for (const char* ddl : kSchema) {
    ASSERT_OK(oracle.Execute(ddl));
  }
  ASSERT_OK(oracle.Execute(SeedAccountsSql()));
  std::sort(samples.begin(), samples.end(),
            [](const SnapshotSample& a, const SnapshotSample& b) {
              return a.lsn < b.lsn;
            });
  EXPECT_FALSE(samples.empty()) << "chaos readers never sampled a snapshot";
  size_t next_sample = 0;
  auto check_samples_at = [&](uint64_t replayed_through) {
    for (; next_sample < samples.size() &&
           samples[next_sample].lsn <= replayed_through;
         ++next_sample) {
      const SnapshotSample& s = samples[next_sample];
      auto accounts = oracle.Query("select * from accounts");
      auto audit = oracle.Query("select * from audit");
      ASSERT_TRUE(accounts.ok() && audit.ok());
      EXPECT_EQ(s.accounts, Canon(accounts.value()))
          << "snapshot at lsn " << s.lsn
          << " diverged from the serial prefix (accounts)";
      EXPECT_EQ(s.audit, Canon(audit.value()))
          << "snapshot at lsn " << s.lsn
          << " diverged from the serial prefix (audit)";
    }
  };
  check_samples_at(0);  // samples pinned before the first commit
  for (const Committed& txn : committed) {
    // Samples strictly below this commit see the state replayed so far.
    check_samples_at(txn.lsn - 1);
    const Status replayed = oracle.Execute(txn.sql);
    ASSERT_TRUE(replayed.ok())
        << "committed live, so the serial replay must commit too: " << txn.sql
        << " -> " << replayed;
    check_samples_at(txn.lsn);
  }
  check_samples_at(~0ull);
  EXPECT_EQ(next_sample, samples.size());
  EXPECT_EQ(oracle.db().LogicalChecksum(), live_logical)
      << "concurrent execution diverged from its own serialization order";

  // --- group-commit accounting -------------------------------------------
  const wal::GroupCommitStats stats = manager->engine().wal()->group_stats();
  EXPECT_EQ(stats.batches, setup_batches + committed.size());
  EXPECT_LE(stats.cohorts, stats.batches);

  // --- restart: the WAL must recover the identical state ------------------
  manager.reset();  // drains + closes the engine, releases the dir lock
  auto reopened = server::SessionManager::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened.value()->engine().db().Checksum(), live_checksum)
      << "recovery lost or invented transactions";
  // And the recovered engine still takes new work.
  ASSERT_OK_AND_ASSIGN(server::Session * after,
                       reopened.value()->CreateSession());
  ASSERT_OK(after->Execute("insert into ledger values (999, 1)"));
}

}  // namespace
}  // namespace sopr
