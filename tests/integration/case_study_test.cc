// Large integrated case study, in the spirit of the [CW90] companion
// paper ("a fairly large case study"): an order-management domain where
// a dozen interacting rules — hand-written and compiler-generated —
// enforce business policy across five tables. Exercises rule interaction
// at a scale none of the unit tests do: priorities, cascades across three
// tables, aggregate guards, rollback propagation, and triggering points.

#include <gtest/gtest.h>

#include "constraints/compiler.h"
#include "engine/engine.h"
#include "test_util.h"

namespace sopr {
namespace {

class CaseStudy : public ::testing::Test {
 protected:
  void SetUp() override {
    // Schema: customers place orders for products; order_lines reference
    // both; an audit trail records noteworthy events.
    ASSERT_OK(engine_.Execute(
        "create table customers (cust_id int, name string, credit double, "
        "status string)"));
    ASSERT_OK(engine_.Execute(
        "create table products (prod_id int, price double, stock int)"));
    ASSERT_OK(engine_.Execute(
        "create table orders (order_id int, cust_id int, total double)"));
    ASSERT_OK(engine_.Execute(
        "create table order_lines (order_id int, prod_id int, qty int)"));
    ASSERT_OK(engine_.Execute("create table audit (event string, key int)"));

    // Compiler-generated referential constraints.
    ConstraintCompiler compiler(&engine_);
    ReferentialConstraint lines_orders;
    lines_orders.name = "lines_orders";
    lines_orders.child_table = "order_lines";
    lines_orders.child_column = "order_id";
    lines_orders.parent_table = "orders";
    lines_orders.parent_column = "order_id";
    lines_orders.on_parent_delete = ViolationAction::kCascade;
    ASSERT_OK(compiler.AddReferential(lines_orders).status());

    ReferentialConstraint orders_customers;
    orders_customers.name = "orders_customers";
    orders_customers.child_table = "orders";
    orders_customers.child_column = "cust_id";
    orders_customers.parent_table = "customers";
    orders_customers.parent_column = "cust_id";
    orders_customers.on_parent_delete = ViolationAction::kCascade;
    ASSERT_OK(compiler.AddReferential(orders_customers).status());

    UniqueConstraint unique_orders;
    unique_orders.name = "order_key";
    unique_orders.table = "orders";
    unique_orders.column = "order_id";
    ASSERT_OK(compiler.AddUnique(unique_orders).status());

    // Hand-written business rules.
    // R1: new order lines decrement product stock (set-oriented: one
    // update handles all lines of a batch).
    ASSERT_OK(engine_.Execute(
        "create rule take_stock when inserted into order_lines "
        "then update products set stock = stock - "
        "       (select sum(qty) from inserted order_lines l "
        "        where l.prod_id = products.prod_id) "
        "     where prod_id in (select prod_id from inserted order_lines)"));

    // R2: negative stock is impossible — abort the whole transaction.
    ASSERT_OK(engine_.Execute(
        "create rule stock_guard when updated products.stock "
        "if exists (select * from new updated products.stock "
        "           where stock < 0) "
        "then rollback"));

    // R3: new order lines recompute the order total from current prices.
    ASSERT_OK(engine_.Execute(
        "create rule total_order when inserted into order_lines "
        "then update orders set total = "
        "       (select sum(l.qty * p.price) from order_lines l, products p "
        "        where l.prod_id = p.prod_id "
        "          and l.order_id = orders.order_id) "
        "     where order_id in (select order_id from inserted order_lines)"));

    // R4: orders above a customer's credit limit are vetoed.
    ASSERT_OK(engine_.Execute(
        "create rule credit_guard when updated orders.total "
        "if exists (select * from orders o, customers c "
        "           where o.cust_id = c.cust_id and o.total > c.credit) "
        "then rollback"));

    // R5: big orders flip the customer to 'vip'.
    ASSERT_OK(engine_.Execute(
        "create rule vip when updated orders.total "
        "then update customers set status = 'vip' "
        "     where cust_id in (select cust_id from new updated orders.total "
        "                       where total > 900)"));

    // R6: audit deleted customers.
    ASSERT_OK(engine_.Execute(
        "create rule audit_cust when deleted from customers "
        "then insert into audit "
        "  (select 'customer-deleted', cust_id from deleted customers)"));

    // R7: audit stock depletion below 3.
    ASSERT_OK(engine_.Execute(
        "create rule audit_low when updated products.stock "
        "if exists (select * from new updated products.stock where stock < 3) "
        "then insert into audit "
        "  (select 'low-stock', prod_id from new updated products.stock "
        "   where stock < 3 and prod_id not in "
        "     (select key from audit where event = 'low-stock'))"));

    // Guards run before bookkeeping.
    ASSERT_OK(engine_.Execute(
        "create rule priority stock_guard before take_stock"));
    ASSERT_OK(engine_.Execute(
        "create rule priority credit_guard before vip"));

    // Seed data.
    ASSERT_OK(engine_.Execute(
        "insert into customers values (1, 'Acme', 1000, 'normal'), "
        "(2, 'Tiny', 50, 'normal')"));
    ASSERT_OK(engine_.Execute(
        "insert into products values (10, 25.0, 20), (11, 100.0, 5), "
        "(12, 4.0, 2)"));
  }

  Engine engine_;
};

TEST_F(CaseStudy, NormalOrderFlow) {
  ASSERT_OK(engine_.Execute("insert into orders values (100, 1, 0)"));
  // One block with two lines: every rule sees the SET of new lines.
  ASSERT_OK(engine_.Execute(
      "insert into order_lines values (100, 10, 4); "
      "insert into order_lines values (100, 11, 2)"));

  // Stock decremented once per product.
  EXPECT_EQ(QueryScalar(&engine_,
                        "select stock from products where prod_id = 10"),
            Value::Int(16));
  EXPECT_EQ(QueryScalar(&engine_,
                        "select stock from products where prod_id = 11"),
            Value::Int(3));
  // Total recomputed: 4*25 + 2*100 = 300.
  EXPECT_EQ(QueryScalar(&engine_,
                        "select total from orders where order_id = 100"),
            Value::Double(300));
  // No VIP flip (300 <= 900), no audit events.
  EXPECT_EQ(QueryScalar(&engine_,
                        "select status from customers where cust_id = 1"),
            Value::String("normal"));
  EXPECT_EQ(QueryScalar(&engine_, "select count(*) from audit"),
            Value::Int(0));
}

TEST_F(CaseStudy, BigOrderFlipsVip) {
  ASSERT_OK(engine_.Execute("insert into orders values (100, 1, 0)"));
  ASSERT_OK(engine_.Execute(
      "insert into order_lines values (100, 11, 5), (100, 10, 18)"));
  // total = 5*100 + 18*25 = 950 <= 1000 credit, > 900 -> vip.
  EXPECT_EQ(QueryScalar(&engine_,
                        "select total from orders where order_id = 100"),
            Value::Double(950));
  EXPECT_EQ(QueryScalar(&engine_,
                        "select status from customers where cust_id = 1"),
            Value::String("vip"));
  // Product 11 hit 0 and product 10 hit 2: both below the low-stock
  // threshold of 3, each audited exactly once.
  EXPECT_EQ(QueryScalar(&engine_,
                        "select count(*) from audit where event = 'low-stock'"),
            Value::Int(2));
}

TEST_F(CaseStudy, OverdraftRollsEverythingBack) {
  ASSERT_OK(engine_.Execute("insert into orders values (200, 2, 0)"));
  // Tiny's credit is 50; 3 * 25 = 75 > 50 -> credit_guard rolls back.
  Status s = engine_.Execute("insert into order_lines values (200, 10, 3)");
  EXPECT_EQ(s.code(), StatusCode::kRolledBack);
  // The lines, the stock decrement, and the total update are ALL undone.
  EXPECT_EQ(QueryScalar(&engine_, "select count(*) from order_lines"),
            Value::Int(0));
  EXPECT_EQ(QueryScalar(&engine_,
                        "select stock from products where prod_id = 10"),
            Value::Int(20));
  EXPECT_EQ(QueryScalar(&engine_,
                        "select total from orders where order_id = 200"),
            Value::Double(0));
}

TEST_F(CaseStudy, OversellRollsBack) {
  ASSERT_OK(engine_.Execute("insert into orders values (100, 1, 0)"));
  // 30 units of product 10 (stock 20): stock_guard vetoes first.
  Status s = engine_.Execute("insert into order_lines values (100, 10, 30)");
  EXPECT_EQ(s.code(), StatusCode::kRolledBack);
  EXPECT_EQ(QueryScalar(&engine_,
                        "select stock from products where prod_id = 10"),
            Value::Int(20));
}

TEST_F(CaseStudy, CustomerDeletionCascadesThroughThreeTables) {
  ASSERT_OK(engine_.Execute("insert into orders values (100, 1, 0)"));
  ASSERT_OK(engine_.Execute("insert into order_lines values (100, 10, 1)"));
  ASSERT_OK(engine_.Execute("insert into orders values (101, 1, 0)"));
  ASSERT_OK(engine_.Execute("insert into order_lines values (101, 10, 1)"));

  // Deleting the customer cascades: orders -> order_lines; audit records
  // the deletion. (Stock is NOT restored — returns are business logic we
  // deliberately left out.)
  ASSERT_OK(engine_.Execute("delete from customers where cust_id = 1"));
  EXPECT_EQ(QueryScalar(&engine_, "select count(*) from orders"),
            Value::Int(0));
  EXPECT_EQ(QueryScalar(&engine_, "select count(*) from order_lines"),
            Value::Int(0));
  EXPECT_EQ(
      QueryScalar(&engine_,
                  "select count(*) from audit where event = 'customer-deleted'"),
      Value::Int(1));
}

TEST_F(CaseStudy, DuplicateOrderIdRejected) {
  ASSERT_OK(engine_.Execute("insert into orders values (100, 1, 0)"));
  EXPECT_EQ(engine_.Execute("insert into orders values (100, 2, 0)").code(),
            StatusCode::kRolledBack);
  EXPECT_EQ(QueryScalar(&engine_, "select count(*) from orders"),
            Value::Int(1));
}

TEST_F(CaseStudy, DanglingOrderRejected) {
  EXPECT_EQ(engine_.Execute("insert into orders values (300, 99, 0)").code(),
            StatusCode::kRolledBack);
}

TEST_F(CaseStudy, TriggeringPointSplitsStockAccounting) {
  // §5.3: force rule processing between two line batches of one
  // transaction; each batch's stock accounting is applied separately but
  // the whole thing still commits atomically.
  ASSERT_OK(engine_.Execute("insert into orders values (100, 1, 0)"));
  ASSERT_OK(engine_.Begin());
  ASSERT_OK(engine_.Run("insert into order_lines values (100, 10, 2)"));
  ASSERT_OK(engine_.ProcessRules().status());
  ASSERT_OK(engine_.Run("insert into order_lines values (100, 10, 3)"));
  ASSERT_OK(engine_.Commit().status());
  EXPECT_EQ(QueryScalar(&engine_,
                        "select stock from products where prod_id = 10"),
            Value::Int(15));
  EXPECT_EQ(QueryScalar(&engine_,
                        "select total from orders where order_id = 100"),
            Value::Double(125));
}

TEST_F(CaseStudy, MixedBatchAcrossCustomers) {
  // A single transaction with orders for two customers, one of which
  // violates credit: the WHOLE batch rolls back (transaction-granular
  // atomicity, §4).
  ASSERT_OK(engine_.Execute(
      "insert into orders values (100, 1, 0); "
      "insert into orders values (200, 2, 0)"));
  Status s = engine_.Execute(
      "insert into order_lines values (100, 10, 1); "
      "insert into order_lines values (200, 11, 1)");  // 100 > Tiny's 50
  EXPECT_EQ(s.code(), StatusCode::kRolledBack);
  EXPECT_EQ(QueryScalar(&engine_, "select count(*) from order_lines"),
            Value::Int(0));
  EXPECT_EQ(QueryScalar(&engine_,
                        "select stock from products where prod_id = 11"),
            Value::Int(5));
}

}  // namespace
}  // namespace sopr
