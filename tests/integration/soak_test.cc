// Randomized soak: rules (cascades, guards with rollback, audits),
// indexes, and random operation blocks hammered together. After every
// transaction the engine must satisfy its invariants: empty undo log,
// index-vs-scan agreement, conservation between tables maintained by the
// rules, and continued usability.

#include <gtest/gtest.h>

#include <random>

#include "engine/engine.h"
#include "test_util.h"

namespace sopr {
namespace {

class SoakTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SoakTest, InvariantsHoldUnderRandomWorkload) {
  std::mt19937 rng(GetParam() * 977 + 11);

  RuleEngineOptions options;
  // Mix maintenance modes across seeds.
  options.maintenance = GetParam() % 2 == 0 ? MaintenanceMode::kPerRule
                                            : MaintenanceMode::kSharedLog;
  options.tie_break = static_cast<TieBreak>(GetParam() % 3);
  Engine engine(options);

  ASSERT_OK(engine.Execute("create table emp (id int, salary double, "
                           "dept int)"));
  ASSERT_OK(engine.Execute("create table dept (id int)"));
  ASSERT_OK(engine.Execute("create table audit (emp_id int)"));
  ASSERT_OK(engine.Execute("create index on emp (dept)"));
  ASSERT_OK(engine.Execute("create index on emp (id)"));

  for (int d = 0; d < 5; ++d) {
    ASSERT_OK(engine.Execute("insert into dept values (" +
                             std::to_string(d) + ")"));
  }

  // R1: cascade emp deletion when dept disappears.
  ASSERT_OK(engine.Execute(
      "create rule cascade when deleted from dept "
      "then delete from emp where dept in (select id from deleted dept)"));
  // R2: every deleted employee is audited.
  ASSERT_OK(engine.Execute(
      "create rule audit_del when deleted from emp "
      "then insert into audit (select id from deleted emp)"));
  // R3: salaries must stay positive (guard with rollback).
  ASSERT_OK(engine.Execute(
      "create rule positive when inserted into emp or updated emp.salary "
      "if exists (select * from inserted emp where salary < 0) "
      "or exists (select * from new updated emp.salary where salary < 0) "
      "then rollback"));
  // R4: employees may not reference missing departments.
  ASSERT_OK(engine.Execute(
      "create rule fk when inserted into emp "
      "if exists (select * from inserted emp where dept not in "
      "           (select id from dept)) "
      "then rollback"));

  int committed = 0, rolled_back = 0;
  int64_t deleted_emps = 0;

  for (int step = 0; step < 120; ++step) {
    std::string block;
    switch (rng() % 6) {
      case 0:  // possibly-negative salary insert
        block = "insert into emp values (" + std::to_string(step) + ", " +
                std::to_string(static_cast<int>(rng() % 200) - 20) + ", " +
                std::to_string(rng() % 7) + ")";  // dept may not exist
        break;
      case 1:
        block = "update emp set salary = salary - " +
                std::to_string(rng() % 50) + " where id = " +
                std::to_string(rng() % (step + 1));
        break;
      case 2:
        block = "delete from emp where dept = " + std::to_string(rng() % 5);
        break;
      case 3:  // delete and recreate a department (cascade + audits)
        block = "delete from dept where id = " + std::to_string(rng() % 5) +
                "; insert into dept values (" + std::to_string(rng() % 5) +
                ")";
        break;
      case 4:  // multi-op block
        block = "insert into emp values (" + std::to_string(1000 + step) +
                ", 50, 1); update emp set salary = salary + 1 where dept = 1";
        break;
      default:
        block = "update emp set dept = " + std::to_string(rng() % 5) +
                " where id = " + std::to_string(rng() % (step + 1));
        break;
    }

    // Count deletions that a committed block would cause (for the audit
    // conservation check, count rows before/after instead).
    auto before = engine.Query("select count(*) from emp");
    ASSERT_TRUE(before.ok());
    int64_t emp_before = before.value().rows[0].at(0).AsInt();

    Status s = engine.Execute(block);
    if (s.ok()) {
      ++committed;
    } else {
      ASSERT_EQ(s.code(), StatusCode::kRolledBack) << block << " -> " << s;
      ++rolled_back;
    }

    // Invariant 1: no transaction leaves undo state behind.
    ASSERT_EQ(engine.db().undo_log_size(), 0u) << block;

    // Invariant 2: audit conservation — every net emp deletion audited.
    auto after = engine.Query("select count(*) from emp");
    ASSERT_TRUE(after.ok());
    int64_t emp_after = after.value().rows[0].at(0).AsInt();
    if (s.ok() && emp_after < emp_before) {
      deleted_emps += emp_before - emp_after;
    }
    auto audited = engine.Query("select count(*) from audit");
    ASSERT_TRUE(audited.ok());
    ASSERT_EQ(audited.value().rows[0].at(0).AsInt(), deleted_emps) << block;

    // Invariant 3 (every 10 steps): indexed point lookups agree with
    // full-scan counts.
    if (step % 10 == 9) {
      for (int d = 0; d < 5; ++d) {
        auto via_index = engine.Query(
            "select count(*) from emp where dept = " + std::to_string(d));
        auto via_scan = engine.Query(
            "select count(*) from emp where dept + 0 = " + std::to_string(d));
        ASSERT_TRUE(via_index.ok());
        ASSERT_TRUE(via_scan.ok());
        ASSERT_EQ(via_index.value().rows[0].at(0),
                  via_scan.value().rows[0].at(0))
            << "index disagreement for dept " << d;
      }
      // Invariant 4: no employee with a negative salary ever committed,
      // and no orphaned employees (the guards enforce these).
      EXPECT_EQ(QueryScalar(&engine,
                            "select count(*) from emp where salary < 0"),
                Value::Int(0));
    }
  }

  // The workload must have exercised both paths.
  EXPECT_GT(committed, 20);
  EXPECT_GT(rolled_back, 0);

  // Engine still fully functional (dept 999 is fresh, so the FK guard
  // cannot object).
  ASSERT_OK(engine.Execute("insert into dept values (999)"));
  ASSERT_OK(engine.Execute("insert into emp values (99999, 1, 999)"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest, ::testing::Range(0u, 10u));

}  // namespace
}  // namespace sopr
