// Deterministic chaos soak: replays a rule-heavy workload while each
// registered failpoint (one at a time, then seeded random combinations)
// injects failures, and asserts the paper's §2.1/§4 atomicity contract:
// every operation block either commits (rules quiescent, indexes
// consistent with heaps) or rolls back to the exact transaction-start
// state S0 (verified by Database::Checksum) — never a third state.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "engine/engine.h"
#include "test_util.h"

namespace sopr {
namespace {

FailpointRegistry& Registry() { return FailpointRegistry::Instance(); }

/// The workload blocks. Each is one transaction: an external operation
/// block, rule processing to quiescence, then commit. Together they
/// exercise inserts, updates, deletes, a cascading delete rule, a
/// detached audit rule, and an aggregate-maintenance rule over indexed
/// tables.
const char* const kBlocks[] = {
    "insert into emp values ('Jane', 10, 90000, 1); "
    "insert into emp values ('Mary', 20, 70000, 1); "
    "insert into emp values ('Jim', 30, 65000, 2)",
    "update emp set salary = salary + 1000 where dept_no = 1",
    "insert into emp values ('Bill', 40, 25000, 2); "
    "update emp set dept_no = 1 where emp_no = 30",
    "delete from dept where dept_no = 2",
    "insert into dept values (3, 10); "
    "insert into emp values ('Sam', 50, 40000, 3)",
};

class ChaosEngine {
 public:
  explicit ChaosEngine(MaintenanceMode maintenance, bool with_detached) {
    RuleEngineOptions options;
    options.maintenance = maintenance;
    options.verify_rollback_integrity = true;
    options.max_rule_firings = 200;
    engine_ = std::make_unique<Engine>(options);
    Setup(with_detached);
  }

  Engine& engine() { return *engine_; }
  Database& db() { return engine_->db(); }

 private:
  void Setup(bool with_detached) {
    Engine& e = *engine_;
    ASSERT_OK(e.Execute(
        "create table emp (name string, emp_no int, salary double, "
        "dept_no int)"));
    ASSERT_OK(e.Execute("create table dept (dept_no int, mgr_no int)"));
    ASSERT_OK(e.Execute("create table audit (emp_no int)"));
    ASSERT_OK(e.Execute("create table stats (n int)"));
    ASSERT_OK(e.Execute("create index on emp (dept_no)"));
    ASSERT_OK(e.Execute("create index on dept (dept_no)"));
    ASSERT_OK(e.Execute("insert into dept values (1, 10); "
                        "insert into dept values (2, 20); "
                        "insert into stats values (0)"));
    // Cascading delete (the paper's Example 4.1 shape).
    ASSERT_OK(e.Execute(
        "create rule drop_emps when deleted from dept "
        "then delete from emp where dept_no in "
        "(select dept_no from deleted dept)"));
    // Derived-data maintenance keeping stats.n == count of audit rows.
    ASSERT_OK(e.Execute(
        "create rule count_audit when inserted into audit "
        "then update stats set n = n + "
        "(select count(*) from inserted audit)"));
    // Audit every hired employee; optionally detached (§5.3).
    ASSERT_OK(e.Execute(
        "create rule log_hires when inserted into emp "
        "then insert into audit (select emp_no from inserted emp)"));
    if (with_detached) {
      ASSERT_OK(e.rules().SetDetached("log_hires", true));
    }
  }

  std::unique_ptr<Engine> engine_;
};

/// Runs every workload block against `chaos` with the current failpoint
/// arming, asserting after each block that the engine is in exactly one
/// of the two legal states.
void ReplayAndCheck(ChaosEngine* chaos, const std::string& context) {
  for (const char* block : kBlocks) {
    uint64_t s0 = chaos->db().Checksum();
    Status status = chaos->engine().Execute(block);
    SCOPED_TRACE(context + " block: " + block);
    EXPECT_FALSE(chaos->engine().in_transaction());
    ASSERT_OK(chaos->db().CheckInvariants());
    if (!status.ok()) {
      // Failure path (including a rule-requested kRolledBack): the
      // transaction must have rolled back to the exact pre-block state.
      EXPECT_EQ(chaos->db().Checksum(), s0) << status;
    }
  }
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry().DisarmAll(); }
  void TearDown() override { Registry().DisarmAll(); }
};

/// Every registered failpoint, one at a time, in several trigger
/// positions, against both maintenance modes and both detached settings.
TEST_F(ChaosTest, EverySiteOneAtATime) {
  const FailpointRegistry::Trigger kTriggers[] = {
      {FailpointRegistry::Mode::kOnce, 1, StatusCode::kInjectedFault},
      {FailpointRegistry::Mode::kNth, 3, StatusCode::kResourceExhausted},
      {FailpointRegistry::Mode::kEveryK, 4, StatusCode::kInjectedFault},
  };
  for (MaintenanceMode mode :
       {MaintenanceMode::kPerRule, MaintenanceMode::kSharedLog}) {
    for (bool detached : {false, true}) {
      for (const std::string& site : FailpointRegistry::KnownSites()) {
        for (const auto& trigger : kTriggers) {
          ChaosEngine chaos(mode, detached);
          if (::testing::Test::HasFatalFailure()) return;
          Registry().DisarmAll();
          Registry().Arm(site, trigger);
          std::string context =
              site + " mode=" +
              std::to_string(static_cast<int>(trigger.mode)) +
              (detached ? " detached" : "") +
              (mode == MaintenanceMode::kSharedLog ? " sharedlog" : "");
          ReplayAndCheck(&chaos, context);
          Registry().DisarmAll();
          // The engine must stay serviceable after injected failures.
          ASSERT_OK(chaos.engine().Execute(
              "insert into emp values ('After', 99, 1000, 1)"));
          ASSERT_OK(chaos.db().CheckInvariants());
        }
      }
    }
  }
}

/// Seeded random combinations of several simultaneously armed sites.
TEST_F(ChaosTest, RandomizedCombinations) {
  const auto& sites = FailpointRegistry::KnownSites();
  for (uint32_t seed = 1; seed <= 8; ++seed) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<size_t> pick_site(0, sites.size() - 1);
    std::uniform_int_distribution<uint64_t> pick_n(1, 6);
    std::uniform_int_distribution<int> pick_mode(0, 2);
    ChaosEngine chaos(seed % 2 == 0 ? MaintenanceMode::kSharedLog
                                    : MaintenanceMode::kPerRule,
                      seed % 3 == 0);
    if (::testing::Test::HasFatalFailure()) return;
    Registry().DisarmAll();
    size_t arm_count = 2 + seed % 3;
    for (size_t i = 0; i < arm_count; ++i) {
      FailpointRegistry::Trigger trigger;
      switch (pick_mode(rng)) {
        case 0:
          trigger.mode = FailpointRegistry::Mode::kOnce;
          break;
        case 1:
          trigger.mode = FailpointRegistry::Mode::kNth;
          break;
        default:
          trigger.mode = FailpointRegistry::Mode::kEveryK;
          break;
      }
      trigger.n = pick_n(rng);
      trigger.code = (seed % 2 == 0) ? StatusCode::kInjectedFault
                                     : StatusCode::kResourceExhausted;
      Registry().Arm(sites[pick_site(rng)], trigger);
    }
    ReplayAndCheck(&chaos, "seed " + std::to_string(seed));
    Registry().DisarmAll();
  }
}

/// The undo-log budget: a block that outgrows it must abort to exact S0.
TEST_F(ChaosTest, UndoBudgetAbortsToS0) {
  RuleEngineOptions options;
  options.max_undo_records = 4;
  options.verify_rollback_integrity = true;
  Engine engine(options);
  ASSERT_OK(engine.Execute("create table t (a int)"));
  ASSERT_OK(engine.Execute("create index on t (a)"));
  ASSERT_OK(engine.Execute("insert into t values (1); "
                           "insert into t values (2)"));
  uint64_t s0 = engine.db().Checksum();
  Status s = engine.Execute(
      "insert into t values (3); insert into t values (4); "
      "insert into t values (5); insert into t values (6); "
      "insert into t values (7)");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s;
  EXPECT_EQ(engine.db().Checksum(), s0);
  ASSERT_OK(engine.db().CheckInvariants());
  // Budget is per transaction: the next small block fits.
  ASSERT_OK(engine.Execute("insert into t values (6)"));
}

/// A cascade that exceeds the wall-clock deadline aborts with kTimeout
/// and restores S0.
TEST_F(ChaosTest, DeadlineAbortsToS0) {
  RuleEngineOptions options;
  options.txn_deadline = std::chrono::milliseconds(30);
  options.verify_rollback_integrity = true;
  options.max_rule_firings = 1000000;
  Engine engine(options);
  ASSERT_OK(engine.Execute("create table t (a int)"));
  // Unbounded self-triggering cascade: only the deadline can stop it.
  ASSERT_OK(engine.Execute(
      "create rule forever when inserted into t "
      "then insert into t (select a + 1 from inserted t)"));
  uint64_t s0 = engine.db().Checksum();
  Status s = engine.Execute("insert into t values (0)");
  EXPECT_EQ(s.code(), StatusCode::kTimeout) << s;
  EXPECT_EQ(engine.db().Checksum(), s0);
  ASSERT_OK(engine.db().CheckInvariants());
}

/// CI entry point: when SOPR_FAILPOINTS is set in the environment the
/// registry arms itself lazily; the same either/or contract must hold.
TEST(ChaosEnv, EnvSpecDrivesInjection) {
  const char* spec = std::getenv("SOPR_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') {
    GTEST_SKIP() << "SOPR_FAILPOINTS not set";
  }
  // Env arming is lazy (first Hit anywhere), so the spec may already be
  // live while we build the schema and rules; only the workload replay
  // is under attack.
  std::unique_ptr<ChaosEngine> chaos;
  {
    FailpointRegistry::SuppressScope setup_guard;
    chaos = std::make_unique<ChaosEngine>(MaintenanceMode::kPerRule, true);
  }
  if (::testing::Test::HasFatalFailure()) return;
  ReplayAndCheck(chaos.get(), std::string("env spec ") + spec);
}

}  // namespace
}  // namespace sopr
