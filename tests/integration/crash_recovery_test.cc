// Crash-recovery harness: fork a child running a rule-heavy durable
// workload, kill it (@Crash failpoints = _Exit at exact code sites),
// restart on the same WAL directory, and require the recovered state to
// equal a committed-prefix oracle bit for bit (Engine::StateChecksum).
//
// The oracle: the workload is deterministic, so replaying its first k
// transactions into a fresh in-memory engine yields the exact state a
// correct recovery must produce when k transactions had committed. Group
// commit makes every crash land on a transaction boundary; a marker row
// per transaction (committed_log) tells the harness which k it landed on.
//
// Runs with real fsyncs by default; the crash_recovery_fast_test ctest
// entry sets SOPR_WAL_FSYNC=off (process kills cannot lose the page
// cache, so the fast mode checks the same property).

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "engine/engine.h"
#include "test_util.h"

namespace sopr {
namespace {

constexpr int kTxns = 12;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sopr_crash_test_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

RuleEngineOptions DurableOptions(const std::string& dir) {
  RuleEngineOptions options;
  options.wal_dir = dir;
  options.wal_checkpoint_interval = 5;  // checkpoints happen mid-workload
  return options;
}

const std::vector<std::string>& WorkloadDdl() {
  static const std::vector<std::string>* ddl = new std::vector<std::string>{
      "create table committed_log (seq int)",
      "create table t (a int)",
      "create table audit (n int)",
      "create index on t (a)",
      "create rule audit_rule when inserted into t "
      "then insert into audit (select count(*) from inserted t)",
  };
  return *ddl;
}

/// Transaction i: marker row + rule-triggering inserts; every third one
/// also updates and deletes so all three redo record types hit the log.
Status RunTxn(Engine* engine, int i) {
  std::string block =
      "insert into committed_log values (" + std::to_string(i) + "); " +
      "insert into t values (" + std::to_string(i) + "); " +
      "insert into t values (" + std::to_string(i + 1000) + ")";
  if (i % 3 == 2) {
    block += "; update t set a = a + 10000 where a = " + std::to_string(i - 1);
    block += "; delete from t where a = " + std::to_string(i + 999);
  }
  return engine->Execute(block);
}

/// Checksums a correct engine must land on: after each DDL prefix (a
/// crash can interrupt setup) and after each committed transaction count.
struct Oracle {
  std::vector<uint64_t> ddl_prefix;  // [j] = first j DDL statements
  std::vector<uint64_t> after_txn;   // [k] = full DDL + k transactions
};

const Oracle& GetOracle() {
  static const Oracle* oracle = [] {
    auto* o = new Oracle();
    Engine engine;
    o->ddl_prefix.push_back(engine.StateChecksum());
    for (const std::string& ddl : WorkloadDdl()) {
      Status s = engine.Execute(ddl);
      if (!s.ok()) ADD_FAILURE() << "oracle DDL failed: " << s;
      o->ddl_prefix.push_back(engine.StateChecksum());
    }
    o->after_txn.push_back(engine.StateChecksum());
    // One extra transaction past the workload: the post-recovery firing
    // check runs transaction k on the recovered engine.
    for (int i = 0; i <= kTxns; ++i) {
      Status s = RunTxn(&engine, i);
      if (!s.ok()) ADD_FAILURE() << "oracle txn " << i << " failed: " << s;
      o->after_txn.push_back(engine.StateChecksum());
    }
    return o;
  }();
  return *oracle;
}

/// Child body: arm one @Crash trigger, run the whole workload. Exit 0 =
/// trigger never fired; kFailpointCrashExitCode = simulated power loss;
/// 43 = real workload failure (a harness bug).
[[noreturn]] void ChildWorkload(const std::string& dir,
                                const std::string& site, uint64_t nth) {
  FailpointRegistry::Trigger trigger;
  trigger.mode = FailpointRegistry::Mode::kNth;
  trigger.n = nth;
  trigger.crash = true;
  FailpointRegistry::Instance().Arm(site, trigger);

  auto engine = Engine::Open(DurableOptions(dir));
  if (!engine.ok()) std::_Exit(43);
  for (const std::string& ddl : WorkloadDdl()) {
    if (!engine.value()->Execute(ddl).ok()) std::_Exit(43);
  }
  for (int i = 0; i < kTxns; ++i) {
    if (!RunTxn(engine.value().get(), i).ok()) std::_Exit(43);
  }
  std::_Exit(0);
}

/// Child body for crash-during-recovery: arm a @Crash on a wal.recover.*
/// site and attempt a restart.
[[noreturn]] void ChildRecover(const std::string& dir,
                               const std::string& site, uint64_t nth) {
  FailpointRegistry::Trigger trigger;
  trigger.mode = FailpointRegistry::Mode::kNth;
  trigger.n = nth;
  trigger.crash = true;
  FailpointRegistry::Instance().Arm(site, trigger);
  auto engine = Engine::Open(DurableOptions(dir));
  std::_Exit(engine.ok() ? 0 : 43);
}

/// Forks, runs `body` in the child, returns the child's exit code.
template <typename Body>
int ForkChild(Body body) {
  ::pid_t pid = ::fork();
  EXPECT_NE(pid, -1);
  if (pid == 0) body();  // never returns
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status)) << "child killed by signal "
                                 << (WIFSIGNALED(status) ? WTERMSIG(status)
                                                         : 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Restarts on `dir` and certifies the recovered state against the
/// oracle; then proves the recovered rule set is live by running the next
/// workload transaction and checking the oracle again.
void VerifyRecovered(const std::string& dir, bool child_completed,
                     const std::string& context) {
  SCOPED_TRACE(context);
  const Oracle& oracle = GetOracle();

  auto opened = Engine::Open(DurableOptions(dir));
  ASSERT_TRUE(opened.ok()) << "recovery failed: " << opened.status();
  std::unique_ptr<Engine> engine = std::move(opened).value();
  EXPECT_OK(engine->CheckInvariants());
  const uint64_t recovered = engine->StateChecksum();

  if (engine->rules().num_rules() == 0) {
    // Crash landed inside setup: some DDL prefix committed.
    EXPECT_FALSE(child_completed);
    EXPECT_NE(std::find(oracle.ddl_prefix.begin(), oracle.ddl_prefix.end(),
                        recovered),
              oracle.ddl_prefix.end())
        << "recovered state matches no DDL prefix";
    return;
  }

  Value count = QueryScalar(engine.get(),
                            "select count(*) from committed_log");
  const int k = static_cast<int>(count.AsInt());
  ASSERT_GE(k, 0);
  ASSERT_LE(k, kTxns);
  if (child_completed) {
    EXPECT_EQ(k, kTxns);
  }
  EXPECT_EQ(recovered, oracle.after_txn[k])
      << "recovered state is not the committed prefix (k=" << k << ")";

  // The recovered rules must fire on fresh transitions: running the next
  // transaction lands exactly on the next oracle state (audit_rule's
  // output is part of the checksum).
  ASSERT_OK(RunTxn(engine.get(), k));
  EXPECT_EQ(engine->StateChecksum(), oracle.after_txn[k + 1])
      << "recovered rules did not fire correctly (k=" << k << ")";
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisarmAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }

  void RunCrashPoint(const std::string& site, uint64_t nth) {
    std::string dir = MakeTempDir();
    int code = ForkChild([&] { ChildWorkload(dir, site, nth); });
    ASSERT_TRUE(code == 0 || code == kFailpointCrashExitCode)
        << site << " nth=" << nth << " exited " << code;
    VerifyRecovered(dir, code == 0,
                    site + " nth=" + std::to_string(nth));
  }
};

TEST_F(CrashRecoveryTest, WorkloadWithoutCrashesIsTheOracle) {
  // Baseline: an unarmed child completes and recovery lands on the full
  // oracle (also proves the oracle itself is reachable).
  RunCrashPoint("no.such.site", 1);
}

TEST_F(CrashRecoveryTest, EveryCatalogedWalSite) {
  int attacked = 0;
  for (const std::string& site : FailpointRegistry::KnownSites()) {
    if (site.rfind("wal.", 0) != 0) continue;
    ++attacked;
    for (uint64_t nth : {uint64_t{1}, uint64_t{2}, uint64_t{7}}) {
      RunCrashPoint(site, nth);
      if (HasFatalFailure()) return;
    }
  }
  // The catalog must actually contain the WAL layer.
  EXPECT_GE(attacked, 15);
}

TEST_F(CrashRecoveryTest, CommitDurabilityPointSites) {
  // Extra depth at the commit path: kills on both sides of the
  // durability point across the whole workload.
  for (const std::string& site :
       {std::string("wal.commit.pre"), std::string("wal.commit.sync")}) {
    for (uint64_t nth = 1; nth <= 12; nth += 2) {
      RunCrashPoint(site, nth);
      if (HasFatalFailure()) return;
    }
  }
}

TEST_F(CrashRecoveryTest, SeededRandomKillPoints) {
  // >= 50 reproducible random (site, hit-count) kill points over the
  // frequently-hit write path. An nth past the last hit simply lets the
  // child complete — still a valid oracle check.
  const std::vector<std::string> sites = {
      "wal.append",     "wal.write",       "wal.write.mid",
      "wal.commit.pre", "wal.commit.sync", "wal.ddl.append",
  };
  std::mt19937 rng(0xC0FFEE);
  for (int i = 0; i < 50; ++i) {
    const std::string& site = sites[rng() % sites.size()];
    const uint64_t nth = 1 + rng() % 45;
    RunCrashPoint(site, nth);
    if (HasFatalFailure()) return;
  }
}

TEST_F(CrashRecoveryTest, CrashDuringRecoveryIsIdempotent) {
  std::string dir = MakeTempDir();
  // Crash mid-batch-write, leaving a genuinely torn tail on disk.
  int code = ForkChild([&] { ChildWorkload(dir, "wal.write.mid", 8); });
  ASSERT_EQ(code, kFailpointCrashExitCode);
  // Crash again during the recovery that cleans it up: first at the
  // torn-tail truncation, then mid-replay on the next attempt.
  code = ForkChild([&] { ChildRecover(dir, "wal.recover.truncate", 1); });
  ASSERT_EQ(code, kFailpointCrashExitCode);
  code = ForkChild([&] { ChildRecover(dir, "wal.recover.replay", 3); });
  ASSERT_EQ(code, kFailpointCrashExitCode);
  // Recovery never writes anything it cannot re-derive, so the final
  // attempt still lands on the oracle.
  VerifyRecovered(dir, false, "after two crashed recoveries");
}

TEST_F(CrashRecoveryTest, CrashDuringCheckpointNeverLosesCommits) {
  // Checkpoints run after commit (interval 5): a kill anywhere inside
  // one must preserve every committed transaction, whether the snapshot
  // installed or not.
  for (const std::string& site :
       {std::string("wal.checkpoint.write"), std::string("wal.checkpoint.sync"),
        std::string("wal.checkpoint.install"),
        std::string("wal.checkpoint.truncate")}) {
    for (uint64_t nth : {uint64_t{1}, uint64_t{2}}) {
      RunCrashPoint(site, nth);
      if (HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace sopr
