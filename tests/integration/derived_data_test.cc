// Incremental view maintenance via rules ([Esw76] use case from §1):
// property test that a rule-maintained aggregate table stays EXACTLY
// consistent with recomputation from scratch under random workloads —
// the strongest end-to-end check of transition-table value semantics
// (inserted/deleted values, old/new update deltas) composing correctly.

#include <gtest/gtest.h>

#include <random>

#include "engine/engine.h"
#include "query/result_set.h"
#include "test_util.h"

namespace sopr {
namespace {

void DefineView(Engine* engine, int num_depts) {
  ASSERT_OK(engine->Execute(
      "create table emp (id int, salary double, dept_no int)"));
  ASSERT_OK(engine->Execute(
      "create table dept_stats (dept_no int, headcount int, "
      "total_salary double)"));
  for (int d = 0; d < num_depts; ++d) {
    ASSERT_OK(engine->Execute("insert into dept_stats values (" +
                              std::to_string(d) + ", 0, 0)"));
  }
  ASSERT_OK(engine->Execute(
      "create rule dd_ins when inserted into emp "
      "then update dept_stats set "
      "  headcount = headcount + (select count(*) from inserted emp i "
      "                           where i.dept_no = dept_stats.dept_no), "
      "  total_salary = total_salary + "
      "    (select sum(i.salary) from inserted emp i "
      "     where i.dept_no = dept_stats.dept_no) "
      "where dept_no in (select dept_no from inserted emp)"));
  ASSERT_OK(engine->Execute(
      "create rule dd_del when deleted from emp "
      "then update dept_stats set "
      "  headcount = headcount - (select count(*) from deleted emp d "
      "                           where d.dept_no = dept_stats.dept_no), "
      "  total_salary = total_salary - "
      "    (select sum(d.salary) from deleted emp d "
      "     where d.dept_no = dept_stats.dept_no) "
      "where dept_no in (select dept_no from deleted emp)"));
  ASSERT_OK(engine->Execute(
      "create rule dd_upd when updated emp.salary "
      "then update dept_stats set total_salary = total_salary "
      "  + (select sum(n.salary) from new updated emp.salary n "
      "     where n.dept_no = dept_stats.dept_no) "
      "  - (select sum(o.salary) from old updated emp.salary o "
      "     where o.dept_no = dept_stats.dept_no) "
      "where dept_no in (select dept_no from new updated emp.salary)"));
}

void CheckConsistent(Engine* engine, int num_depts) {
  for (int d = 0; d < num_depts; ++d) {
    std::string where = " from emp where dept_no = " + std::to_string(d);
    Value truth_count = QueryScalar(engine, "select count(*)" + where);
    Value view_count = QueryScalar(
        engine, "select headcount from dept_stats where dept_no = " +
                    std::to_string(d));
    ASSERT_EQ(truth_count, view_count) << "headcount, dept " << d;

    auto truth_sum = engine->Query("select sum(salary)" + where);
    ASSERT_TRUE(truth_sum.ok());
    Value ts = truth_sum.value().rows[0].at(0);
    double expected = ts.is_null() ? 0.0 : ts.NumericAsDouble();
    Value vs = QueryScalar(
        engine, "select total_salary from dept_stats where dept_no = " +
                    std::to_string(d));
    ASSERT_NEAR(vs.NumericAsDouble(), expected, 1e-6)
        << "total_salary, dept " << d;
  }
}

class DerivedDataProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DerivedDataProperty, ViewStaysConsistentUnderRandomWorkload) {
  constexpr int kDepts = 4;
  std::mt19937 rng(GetParam() * 131 + 7);
  Engine engine;
  DefineView(&engine, kDepts);

  for (int step = 0; step < 80; ++step) {
    std::string block;
    switch (rng() % 5) {
      case 0: {  // multi-row hire across random departments
        block = "insert into emp values ";
        int n = 1 + rng() % 4;
        for (int i = 0; i < n; ++i) {
          if (i > 0) block += ", ";
          block += "(" + std::to_string(step * 10 + i) + ", " +
                   std::to_string(100 + rng() % 900) + ", " +
                   std::to_string(rng() % kDepts) + ")";
        }
        break;
      }
      case 1:
        block = "delete from emp where dept_no = " +
                std::to_string(rng() % kDepts) + " and id < " +
                std::to_string(rng() % (step * 10 + 1));
        break;
      case 2:
        block = "update emp set salary = salary * 1.05 where dept_no = " +
                std::to_string(rng() % kDepts);
        break;
      case 3:  // mixed block: hire + raise in one transition
        block = "insert into emp values (" + std::to_string(step * 10) +
                ", 500, " + std::to_string(rng() % kDepts) +
                "); update emp set salary = salary + 10 where id = " +
                std::to_string(step * 10);
        break;
      default:  // churn: delete then rehire same ids in one block
        block = "delete from emp where id = " + std::to_string(rng() % 50) +
                "; insert into emp values (" + std::to_string(rng() % 50) +
                ", " + std::to_string(100 + rng() % 500) + ", " +
                std::to_string(rng() % kDepts) + ")";
        break;
    }
    SCOPED_TRACE(block);
    ASSERT_OK(engine.Execute(block));
    CheckConsistent(&engine, kDepts);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DerivedDataProperty,
                         ::testing::Range(0u, 8u));

TEST(DerivedData, MixedBlockNetsOut) {
  // A block that hires and fires the same person nets to nothing — the
  // view must not move (Definition 2.1 cancellation observed through
  // view maintenance).
  Engine engine;
  DefineView(&engine, 2);
  ASSERT_OK(engine.Execute("insert into emp values (1, 100, 0)"));
  ASSERT_OK(engine.Execute(
      "insert into emp values (2, 999, 1); delete from emp where id = 2"));
  CheckConsistent(&engine, 2);
  EXPECT_EQ(QueryScalar(&engine,
                        "select headcount from dept_stats where dept_no = 1"),
            Value::Int(0));
}

TEST(DerivedData, UpdateThenDeleteUsesPreTransitionValue) {
  // Raise someone and delete them in one block: the view must subtract
  // their ORIGINAL salary (the net effect is just a delete of the
  // pre-transition tuple).
  Engine engine;
  DefineView(&engine, 2);
  ASSERT_OK(engine.Execute("insert into emp values (1, 100, 0)"));
  ASSERT_OK(engine.Execute(
      "update emp set salary = 5000 where id = 1; "
      "delete from emp where id = 1"));
  CheckConsistent(&engine, 2);
  EXPECT_EQ(QueryScalar(&engine,
                        "select total_salary from dept_stats "
                        "where dept_no = 0"),
            Value::Double(0));
}

}  // namespace
}  // namespace sopr
