// Constraint compiler ([CW90]/§6): high-level constraints compile into
// production rules that enforce them.

#include "constraints/compiler.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sopr {
namespace {

class CompilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CreatePaperSchema(&engine_);
    LoadOrgChart(&engine_);
  }
  Engine engine_;
  ConstraintCompiler compiler_{&engine_};
};

TEST_F(CompilerTest, ReferentialCascade) {
  ReferentialConstraint fk;
  fk.name = "emp_dept_fk";
  fk.child_table = "emp";
  fk.child_column = "dept_no";
  fk.parent_table = "dept";
  fk.parent_column = "dept_no";
  fk.on_parent_delete = ViolationAction::kCascade;
  ASSERT_OK_AND_ASSIGN(std::vector<std::string> rules,
                       compiler_.AddReferential(fk));
  EXPECT_EQ(rules.size(), 3u);

  // Parent delete cascades to children.
  ASSERT_OK(engine_.Execute("delete from dept where dept_no = 3"));
  EXPECT_EQ(EmpNames(&engine_),
            (std::vector<std::string>{"Bill", "Jane", "Jim", "Mary"}));

  // Dangling child insert is rolled back.
  EXPECT_EQ(engine_.Execute("insert into emp values ('Bad', 99, 1, 77)").code(),
            StatusCode::kRolledBack);
  EXPECT_EQ(EmpNames(&engine_).size(), 4u);

  // NULL FK is allowed.
  ASSERT_OK(engine_.Execute("insert into emp values ('Free', 99, 1, null)"));

  // FK update to a dangling value is rolled back; to a valid value is OK.
  EXPECT_EQ(
      engine_.Execute("update emp set dept_no = 77 where name = 'Bill'").code(),
      StatusCode::kRolledBack);
  ASSERT_OK(
      engine_.Execute("update emp set dept_no = 1 where name = 'Bill'"));

  // Parent key update that orphans children is rolled back.
  EXPECT_EQ(
      engine_.Execute("update dept set dept_no = 9 where dept_no = 1").code(),
      StatusCode::kRolledBack);
}

TEST_F(CompilerTest, ReferentialRestrict) {
  ReferentialConstraint fk;
  fk.name = "fk";
  fk.child_table = "emp";
  fk.child_column = "dept_no";
  fk.parent_table = "dept";
  fk.parent_column = "dept_no";
  fk.on_parent_delete = ViolationAction::kRollback;
  ASSERT_OK(compiler_.AddReferential(fk).status());

  // Deleting a referenced parent aborts.
  EXPECT_EQ(engine_.Execute("delete from dept where dept_no = 3").code(),
            StatusCode::kRolledBack);
  EXPECT_EQ(QueryScalar(&engine_, "select count(*) from dept"), Value::Int(4));

  // Deleting an unreferenced parent is fine once its children are gone.
  ASSERT_OK(engine_.Execute("delete from emp where dept_no = 3"));
  ASSERT_OK(engine_.Execute("delete from dept where dept_no = 3"));
}

TEST_F(CompilerTest, ReferentialSetNull) {
  ReferentialConstraint fk;
  fk.name = "fk";
  fk.child_table = "emp";
  fk.child_column = "dept_no";
  fk.parent_table = "dept";
  fk.parent_column = "dept_no";
  fk.on_parent_delete = ViolationAction::kSetNull;
  ASSERT_OK(compiler_.AddReferential(fk).status());

  ASSERT_OK(engine_.Execute("delete from dept where dept_no = 3"));
  EXPECT_EQ(QueryScalar(&engine_,
                        "select count(*) from emp where dept_no is null"),
            Value::Int(2));
  EXPECT_EQ(EmpNames(&engine_).size(), 6u);  // nobody deleted
}

TEST_F(CompilerTest, DomainConstraint) {
  DomainConstraint dc;
  dc.name = "salary_range";
  dc.table = "emp";
  dc.column = "salary";
  dc.predicate_sql = "salary >= 0 and salary < 1000000";
  ASSERT_OK(compiler_.AddDomain(dc).status());

  EXPECT_EQ(
      engine_.Execute("insert into emp values ('Bad', 99, -5, 1)").code(),
      StatusCode::kRolledBack);
  EXPECT_EQ(
      engine_.Execute("update emp set salary = -1 where name = 'Bill'").code(),
      StatusCode::kRolledBack);
  ASSERT_OK(engine_.Execute("insert into emp values ('Ok', 99, 5, 1)"));
  EXPECT_EQ(QueryScalar(&engine_,
                        "select salary from emp where name = 'Bill'"),
            Value::Double(25000));
}

TEST_F(CompilerTest, UniqueConstraint) {
  UniqueConstraint uc;
  uc.name = "emp_no_key";
  uc.table = "emp";
  uc.column = "emp_no";
  ASSERT_OK(compiler_.AddUnique(uc).status());

  // Duplicate emp_no rejected (10 == Jane).
  EXPECT_EQ(
      engine_.Execute("insert into emp values ('Dup', 10, 1, 1)").code(),
      StatusCode::kRolledBack);
  // Update creating a duplicate rejected.
  EXPECT_EQ(
      engine_.Execute("update emp set emp_no = 10 where name = 'Bill'").code(),
      StatusCode::kRolledBack);
  // Fresh value fine; multiple NULLs fine.
  ASSERT_OK(engine_.Execute("insert into emp values ('New', 70, 1, 1)"));
  ASSERT_OK(engine_.Execute("insert into emp values ('N1', null, 1, 1)"));
  ASSERT_OK(engine_.Execute("insert into emp values ('N2', null, 1, 1)"));
}

TEST_F(CompilerTest, AggregateConstraint) {
  AggregateConstraint ac;
  ac.name = "payroll_cap";
  ac.table = "emp";
  ac.predicate_sql = "(select sum(salary) from emp) < 400000";
  ASSERT_OK(compiler_.AddAggregate(ac).status());

  // Current payroll is 332000; +50000 is fine, +100000 violates.
  ASSERT_OK(engine_.Execute("insert into emp values ('Ok', 70, 50000, 1)"));
  EXPECT_EQ(
      engine_.Execute("insert into emp values ('Pricey', 71, 100000, 1)")
          .code(),
      StatusCode::kRolledBack);
  // Raising salaries past the cap also rolls back.
  EXPECT_EQ(engine_.Execute("update emp set salary = salary * 2").code(),
            StatusCode::kRolledBack);
  // Deleting below the cap is always fine.
  ASSERT_OK(engine_.Execute("delete from emp where name = 'Ok'"));
}

TEST_F(CompilerTest, GeneratedSqlIsRecorded) {
  DomainConstraint dc;
  dc.name = "pos";
  dc.table = "emp";
  dc.column = "salary";
  dc.predicate_sql = "salary >= 0";
  ASSERT_OK(compiler_.AddDomain(dc).status());
  ASSERT_EQ(compiler_.generated_sql().size(), 1u);
  EXPECT_NE(compiler_.generated_sql()[0].find("create rule pos_domain"),
            std::string::npos);
}

TEST_F(CompilerTest, ValidationRejectsBadIdentifiers) {
  DomainConstraint dc;
  dc.name = "bad name";  // space
  dc.table = "emp";
  dc.column = "salary";
  dc.predicate_sql = "salary >= 0";
  EXPECT_EQ(compiler_.AddDomain(dc).status().code(),
            StatusCode::kInvalidArgument);

  UniqueConstraint uc;
  uc.name = "u";
  uc.table = "emp; drop";  // injection attempt
  uc.column = "emp_no";
  EXPECT_EQ(compiler_.AddUnique(uc).status().code(),
            StatusCode::kInvalidArgument);

  AggregateConstraint ac;
  ac.name = "a";
  ac.table = "emp";
  ac.predicate_sql = "";
  EXPECT_EQ(compiler_.AddAggregate(ac).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CompilerTest, ConstraintsComposeAcrossTables) {
  // Referential cascade + aggregate cap installed together.
  ReferentialConstraint fk;
  fk.name = "fk";
  fk.child_table = "emp";
  fk.child_column = "dept_no";
  fk.parent_table = "dept";
  fk.parent_column = "dept_no";
  fk.on_parent_delete = ViolationAction::kCascade;
  ASSERT_OK(compiler_.AddReferential(fk).status());

  AggregateConstraint ac;
  ac.name = "min_headcount";
  ac.table = "emp";
  ac.predicate_sql = "(select count(*) from emp) >= 5";
  ASSERT_OK(compiler_.AddAggregate(ac).status());

  // Deleting dept 3 cascades 2 employees: 6 -> 4 < 5 violates the
  // headcount constraint -> whole transaction rolled back.
  EXPECT_EQ(engine_.Execute("delete from dept where dept_no = 3").code(),
            StatusCode::kRolledBack);
  EXPECT_EQ(EmpNames(&engine_).size(), 6u);
  EXPECT_EQ(QueryScalar(&engine_, "select count(*) from dept"), Value::Int(4));

  // Deleting dept 2 cascades only Bill: 6 -> 5 satisfies everything.
  ASSERT_OK(engine_.Execute("delete from dept where dept_no = 2"));
  EXPECT_EQ(EmpNames(&engine_).size(), 5u);
}

}  // namespace
}  // namespace sopr
