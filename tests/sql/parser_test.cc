#include "sql/parser.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sopr {
namespace {

StmtPtr Parse(const std::string& sql) {
  auto result = Parser::ParseStatement(sql);
  EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
  return result.ok() ? std::move(result).value() : nullptr;
}

template <typename T>
const T* As(const StmtPtr& stmt, StmtKind kind) {
  if (!stmt || stmt->kind != kind) {
    ADD_FAILURE() << "wrong statement kind";
    return nullptr;
  }
  return static_cast<const T*>(stmt.get());
}

TEST(ParserSelect, BasicProjectionAndWhere) {
  auto stmt = Parse("select name, salary from emp where salary > 100");
  const auto* sel = As<SelectStmt>(stmt, StmtKind::kSelect);
  ASSERT_NE(sel, nullptr);
  ASSERT_EQ(sel->items.size(), 2u);
  EXPECT_FALSE(sel->items[0].star);
  ASSERT_EQ(sel->from.size(), 1u);
  EXPECT_EQ(sel->from[0].table, "emp");
  EXPECT_EQ(sel->from[0].kind, TableRefKind::kBase);
  ASSERT_NE(sel->where, nullptr);
  EXPECT_EQ(sel->where->ToString(), "(salary > 100)");
}

TEST(ParserSelect, StarAndAliases) {
  auto stmt = Parse("select * from emp e1, dept d");
  const auto* sel = As<SelectStmt>(stmt, StmtKind::kSelect);
  ASSERT_NE(sel, nullptr);
  EXPECT_TRUE(sel->items[0].star);
  ASSERT_EQ(sel->from.size(), 2u);
  EXPECT_EQ(sel->from[0].alias, "e1");
  EXPECT_EQ(sel->from[0].binding_name(), "e1");
  EXPECT_EQ(sel->from[1].alias, "d");
}

TEST(ParserSelect, TransitionTables) {
  auto stmt = Parse(
      "select * from inserted emp i, deleted dept, "
      "old updated emp.salary ou, new updated emp nu");
  const auto* sel = As<SelectStmt>(stmt, StmtKind::kSelect);
  ASSERT_NE(sel, nullptr);
  ASSERT_EQ(sel->from.size(), 4u);
  EXPECT_EQ(sel->from[0].kind, TableRefKind::kInserted);
  EXPECT_EQ(sel->from[0].table, "emp");
  EXPECT_EQ(sel->from[0].alias, "i");
  EXPECT_EQ(sel->from[1].kind, TableRefKind::kDeleted);
  EXPECT_EQ(sel->from[1].binding_name(), "dept");
  EXPECT_EQ(sel->from[2].kind, TableRefKind::kOldUpdated);
  EXPECT_EQ(sel->from[2].column, "salary");
  EXPECT_EQ(sel->from[3].kind, TableRefKind::kNewUpdated);
  EXPECT_TRUE(sel->from[3].column.empty());
}

TEST(ParserSelect, GroupByHavingOrderByDistinct) {
  auto stmt = Parse(
      "select distinct dept_no, avg(salary) a from emp "
      "group by dept_no having count(*) > 1 order by a desc, dept_no");
  const auto* sel = As<SelectStmt>(stmt, StmtKind::kSelect);
  ASSERT_NE(sel, nullptr);
  EXPECT_TRUE(sel->distinct);
  ASSERT_EQ(sel->group_by.size(), 1u);
  ASSERT_NE(sel->having, nullptr);
  ASSERT_EQ(sel->order_by.size(), 2u);
  EXPECT_FALSE(sel->order_by[0].ascending);
  EXPECT_TRUE(sel->order_by[1].ascending);
  EXPECT_EQ(sel->items[1].alias, "a");
}

TEST(ParserSelect, NestedSubqueries) {
  auto stmt = Parse(
      "select name from emp where dept_no in "
      "(select dept_no from dept where mgr_no = "
      " (select emp_no from emp where name = 'Jane'))");
  ASSERT_NE(As<SelectStmt>(stmt, StmtKind::kSelect), nullptr);
}

TEST(ParserInsert, ValuesSingleAndMultiRow) {
  auto stmt = Parse("insert into emp values ('a', 1, 2.5, 3)");
  const auto* ins = As<InsertStmt>(stmt, StmtKind::kInsert);
  ASSERT_NE(ins, nullptr);
  ASSERT_EQ(ins->rows.size(), 1u);
  EXPECT_EQ(ins->rows[0].size(), 4u);

  auto multi = Parse("insert into t values (1, 2), (3, 4)");
  const auto* m = As<InsertStmt>(multi, StmtKind::kInsert);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->rows.size(), 2u);
}

TEST(ParserInsert, BareValuesWithoutParens) {
  // The paper's grammar shows `values v1, v2, ..., vn` without parens.
  auto stmt = Parse("insert into t values 1, 2, 3");
  const auto* ins = As<InsertStmt>(stmt, StmtKind::kInsert);
  ASSERT_NE(ins, nullptr);
  ASSERT_EQ(ins->rows.size(), 1u);
  EXPECT_EQ(ins->rows[0].size(), 3u);
}

TEST(ParserInsert, FromSelect) {
  auto stmt = Parse("insert into audit (select name, 1 from inserted emp)");
  const auto* ins = As<InsertStmt>(stmt, StmtKind::kInsert);
  ASSERT_NE(ins, nullptr);
  EXPECT_TRUE(ins->rows.empty());
  ASSERT_NE(ins->select, nullptr);
  EXPECT_EQ(ins->select->from[0].kind, TableRefKind::kInserted);
}

TEST(ParserDelete, WithAndWithoutWhere) {
  auto stmt = Parse("delete from emp where salary > 10");
  const auto* del = As<DeleteStmt>(stmt, StmtKind::kDelete);
  ASSERT_NE(del, nullptr);
  EXPECT_NE(del->where, nullptr);

  auto all = Parse("delete from emp");
  const auto* d2 = As<DeleteStmt>(all, StmtKind::kDelete);
  ASSERT_NE(d2, nullptr);
  EXPECT_EQ(d2->where, nullptr);
}

TEST(ParserUpdate, MultipleAssignments) {
  auto stmt = Parse("update emp set salary = salary * 1.1, dept_no = 2 "
                    "where name = 'x'");
  const auto* upd = As<UpdateStmt>(stmt, StmtKind::kUpdate);
  ASSERT_NE(upd, nullptr);
  ASSERT_EQ(upd->assignments.size(), 2u);
  EXPECT_EQ(upd->assignments[0].column, "salary");
  EXPECT_EQ(upd->assignments[1].column, "dept_no");
}

TEST(ParserCreateTable, ColumnTypes) {
  auto stmt = Parse(
      "create table t (a int, b integer, c double, d float, e string, "
      "f varchar, g bool)");
  const auto* ct = As<CreateTableStmt>(stmt, StmtKind::kCreateTable);
  ASSERT_NE(ct, nullptr);
  ASSERT_EQ(ct->columns.size(), 7u);
  EXPECT_EQ(ct->columns[0].second, ValueType::kInt);
  EXPECT_EQ(ct->columns[2].second, ValueType::kDouble);
  EXPECT_EQ(ct->columns[4].second, ValueType::kString);
  EXPECT_EQ(ct->columns[6].second, ValueType::kBool);
}

TEST(ParserCreateTable, UnknownTypeFails) {
  EXPECT_EQ(Parser::ParseStatement("create table t (a blob)").status().code(),
            StatusCode::kParseError);
}

TEST(ParserCreateRule, FullForm) {
  auto stmt = Parse(
      "create rule r1 "
      "when inserted into emp or deleted from emp or updated emp.salary "
      "     or updated dept "
      "if exists (select * from inserted emp) "
      "then delete from emp where salary > 10; "
      "     update dept set mgr_no = 0");
  const auto* rule = As<CreateRuleStmt>(stmt, StmtKind::kCreateRule);
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->name, "r1");
  ASSERT_EQ(rule->when.size(), 4u);
  EXPECT_EQ(rule->when[0].kind, BasicTransPred::Kind::kInsertedInto);
  EXPECT_EQ(rule->when[1].kind, BasicTransPred::Kind::kDeletedFrom);
  EXPECT_EQ(rule->when[2].kind, BasicTransPred::Kind::kUpdated);
  EXPECT_EQ(rule->when[2].column, "salary");
  EXPECT_EQ(rule->when[3].column, "");
  ASSERT_NE(rule->condition, nullptr);
  EXPECT_FALSE(rule->action_is_rollback);
  // Both statements belong to the action op-block.
  EXPECT_EQ(rule->action.size(), 2u);
}

TEST(ParserCreateRule, NoConditionAndRollback) {
  auto stmt = Parse("create rule guard when updated emp.salary then rollback");
  const auto* rule = As<CreateRuleStmt>(stmt, StmtKind::kCreateRule);
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->condition, nullptr);
  EXPECT_TRUE(rule->action_is_rollback);
  EXPECT_TRUE(rule->action.empty());
}

TEST(ParserCreateRule, SelectedPredicate) {
  auto stmt =
      Parse("create rule audit when selected emp.salary then "
            "insert into log values (1)");
  const auto* rule = As<CreateRuleStmt>(stmt, StmtKind::kCreateRule);
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->when[0].kind, BasicTransPred::Kind::kSelectedFrom);
  EXPECT_EQ(rule->when[0].column, "salary");
}

TEST(ParserCreatePriority, Pair) {
  auto stmt = Parse("create rule priority r2 before r1");
  const auto* p = As<CreatePriorityStmt>(stmt, StmtKind::kCreatePriority);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->higher, "r2");
  EXPECT_EQ(p->lower, "r1");
}

TEST(ParserDropRule, Basic) {
  auto stmt = Parse("drop rule r1");
  const auto* d = As<DropRuleStmt>(stmt, StmtKind::kDropRule);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->name, "r1");
}

TEST(ParserScript, MultipleStatements) {
  auto result = Parser::ParseScript(
      "insert into t values (1); delete from t; update t set a = 2");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().size(), 3u);
}

TEST(ParserScript, EmptyFails) {
  EXPECT_FALSE(Parser::ParseScript("").ok());
  EXPECT_FALSE(Parser::ParseScript("   -- just a comment").ok());
}

TEST(ParserExpr, PrecedenceArithmetic) {
  auto expr = Parser::ParseExpression("1 + 2 * 3 - 4 / 2");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr.value()->ToString(), "((1 + (2 * 3)) - (4 / 2))");
}

TEST(ParserExpr, PrecedenceLogic) {
  auto expr = Parser::ParseExpression("a = 1 or b = 2 and not c = 3");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr.value()->ToString(),
            "((a = 1) or ((b = 2) and not ((c = 3))))");
}

TEST(ParserExpr, InBetweenIsNull) {
  EXPECT_TRUE(Parser::ParseExpression("x in (1, 2, 3)").ok());
  EXPECT_TRUE(Parser::ParseExpression("x not in (select a from t)").ok());
  EXPECT_TRUE(Parser::ParseExpression("x between 1 and 10").ok());
  EXPECT_TRUE(Parser::ParseExpression("x not between 1 and 10").ok());
  EXPECT_TRUE(Parser::ParseExpression("x is null").ok());
  EXPECT_TRUE(Parser::ParseExpression("x is not null").ok());
}

TEST(ParserExpr, Aggregates) {
  EXPECT_TRUE(Parser::ParseExpression("count(*)").ok());
  EXPECT_TRUE(Parser::ParseExpression("count(distinct dept_no)").ok());
  EXPECT_TRUE(Parser::ParseExpression("sum(salary) / count(*)").ok());
  // '*' only valid for count.
  EXPECT_FALSE(Parser::ParseExpression("sum(*)").ok());
  // Unknown function.
  EXPECT_FALSE(Parser::ParseExpression("median(x)").ok());
}

TEST(ParserExpr, QualifiedColumns) {
  auto expr = Parser::ParseExpression("e1.salary > e2.salary");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr.value()->ToString(), "(e1.salary > e2.salary)");
}

TEST(ParserErrors, Diagnostics) {
  EXPECT_FALSE(Parser::ParseStatement("select from emp").ok());
  EXPECT_FALSE(Parser::ParseStatement("insert emp values (1)").ok());
  EXPECT_FALSE(Parser::ParseStatement("update emp salary = 1").ok());
  EXPECT_FALSE(Parser::ParseStatement("create rule r then rollback").ok());
  EXPECT_FALSE(
      Parser::ParseStatement("create rule r when inserted emp then rollback")
          .ok());  // missing 'into'
  EXPECT_FALSE(Parser::ParseStatement("select * from emp extra garbage ,")
                   .ok());
}

TEST(ParserRoundTrip, ToStringReparses) {
  const char* statements[] = {
      "select name from emp where salary > 100",
      "select distinct a, sum(b) from t group by a having sum(b) > 1",
      "insert into t values (1, 'x', null, true)",
      "delete from emp where dept_no in (select dept_no from deleted dept)",
      "update emp set salary = (0.95 * salary) where dept_no = 2",
  };
  for (const char* sql : statements) {
    auto first = Parser::ParseStatement(sql);
    ASSERT_TRUE(first.ok()) << sql;
    std::string printed = first.value()->ToString();
    auto second = Parser::ParseStatement(printed);
    ASSERT_TRUE(second.ok()) << printed;
    EXPECT_EQ(second.value()->ToString(), printed);
  }
}

}  // namespace
}  // namespace sopr
