// Robustness fuzzing: the lexer/parser (and the whole engine) must never
// crash on malformed input — every failure is a clean ParseError status.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "engine/engine.h"
#include "sql/parser.h"
#include "test_util.h"

namespace sopr {
namespace {

class ParserFuzz : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ParserFuzz, RandomBytesNeverCrash) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    size_t len = rng() % 120;
    std::string input;
    input.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      // Printable-ish ASCII plus some controls.
      input.push_back(static_cast<char>(rng() % 96 + 32));
    }
    auto result = Parser::ParseScript(input);
    // Either parses or errors; must not crash or hang.
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError);
    }
  }
}

TEST_P(ParserFuzz, MutatedSqlNeverCrashes) {
  std::mt19937 rng(GetParam() * 7 + 3);
  const std::string seeds[] = {
      "select name, sum(salary) from emp e, dept d where e.dept_no = "
      "d.dept_no group by name having count(*) > 1 order by name desc",
      "create rule r when inserted into emp or updated emp.salary if "
      "(select avg(salary) from new updated emp.salary) > 50K then delete "
      "from emp where salary > 80K; update emp set salary = 0.9 * salary",
      "insert into t values (1, 'a''b', null, true), (2, 3.5e-2, 50K, "
      "false)",
      "update emp set salary = salary * 1.1, dept_no = (select dept_no "
      "from dept where mgr_no = 7) where name in ('a', 'b') and salary "
      "between 1 and 2",
  };
  for (int trial = 0; trial < 300; ++trial) {
    std::string input = seeds[rng() % 4];
    // Apply a few random mutations: delete, duplicate, or scramble bytes.
    int mutations = 1 + static_cast<int>(rng() % 6);
    for (int m = 0; m < mutations && !input.empty(); ++m) {
      size_t pos = rng() % input.size();
      switch (rng() % 4) {
        case 0:
          input.erase(pos, 1 + rng() % 5);
          break;
        case 1:
          input.insert(pos, input.substr(pos, 1 + rng() % 8));
          break;
        case 2:
          input[pos] = static_cast<char>(rng() % 96 + 32);
          break;
        default:
          input.insert(pos, std::string(1, "()';.*,"[rng() % 7]));
          break;
      }
    }
    auto result = Parser::ParseScript(input);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError) << input;
    }
  }
}

TEST_P(ParserFuzz, EngineExecuteNeverCrashesOnValidParseInvalidSemantics) {
  // Statements that parse but reference missing tables/columns/rules:
  // must fail cleanly, never crash, and leave the engine usable.
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (a int)"));
  std::mt19937 rng(GetParam() * 31 + 7);
  const std::string tables[] = {"t", "nosuch", "t2"};
  const std::string cols[] = {"a", "b", "nope"};
  for (int trial = 0; trial < 100; ++trial) {
    const std::string& table = tables[rng() % 3];
    const std::string& col = cols[rng() % 3];
    std::string sql;
    switch (rng() % 5) {
      case 0:
        sql = "select " + col + " from " + table;
        break;
      case 1:
        sql = "insert into " + table + " values (1)";
        break;
      case 2:
        sql = "update " + table + " set " + col + " = 1";
        break;
      case 3:
        sql = "delete from " + table + " where " + col + " = 1";
        break;
      default:
        sql = "create rule fz" + std::to_string(trial) + " when inserted into " +
              table + " then delete from " + table + " where " + col + " = 1";
        break;
    }
    Status s = engine.Execute(sql);
    (void)s;  // any status is fine; no crash is the property
  }
  // Drop whatever rules the fuzz loop managed to define (some reference
  // columns that only fail at runtime), then check the engine still works.
  for (const std::string& name : engine.rules().RuleNames()) {
    ASSERT_OK(engine.Execute("drop rule " + name));
  }
  ASSERT_OK(engine.Execute("insert into t values (42)"));
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from t"), Value::Int(1));
}

TEST(ParserFuzzEdge, PathologicalInputs) {
  const char* inputs[] = {
      "",
      ";",
      ";;;;",
      "(((((((((((((((((",
      "select",
      "select * from",
      "'unterminated",
      "1e999999",
      "select * from t where x = 1 and and and",
      "create rule when then",
      "insert into t values ",
      "-- only a comment",
      "select * from t order by",
      "update t set",
      "call",
      "process",
  };
  for (const char* input : inputs) {
    auto result = Parser::ParseScript(input);
    EXPECT_FALSE(result.ok()) << input;
  }
  // Deep nesting parses without stack issues at reasonable depth.
  std::string nested = "select * from t where ";
  for (int i = 0; i < 200; ++i) nested += "(";
  nested += "1 = 1";
  for (int i = 0; i < 200; ++i) nested += ")";
  EXPECT_TRUE(Parser::ParseScript(nested).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0u, 8u));

}  // namespace
}  // namespace sopr
