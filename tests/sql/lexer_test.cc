#include "sql/lexer.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sopr {
namespace {

std::vector<Token> Lex(const std::string& sql) {
  Lexer lexer(sql);
  auto result = lexer.Tokenize();
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? std::move(result).value() : std::vector<Token>{};
}

TEST(Lexer, KeywordsAreCaseInsensitive) {
  auto tokens = Lex("SELECT From wHeRe");
  ASSERT_EQ(tokens.size(), 4u);  // + EOF
  EXPECT_EQ(tokens[0].type, TokenType::kSelect);
  EXPECT_EQ(tokens[1].type, TokenType::kFrom);
  EXPECT_EQ(tokens[2].type, TokenType::kWhere);
  EXPECT_EQ(tokens[3].type, TokenType::kEof);
}

TEST(Lexer, IdentifiersLowercased) {
  auto tokens = Lex("Emp dept_NO _x1");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "emp");
  EXPECT_EQ(tokens[1].text, "dept_no");
  EXPECT_EQ(tokens[2].text, "_x1");
}

TEST(Lexer, IntAndDoubleLiterals) {
  auto tokens = Lex("42 3.5 0.95 1e3 2.5e-1");
  EXPECT_EQ(tokens[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].type, TokenType::kDoubleLiteral);
  EXPECT_EQ(tokens[1].double_value, 3.5);
  EXPECT_EQ(tokens[2].double_value, 0.95);
  EXPECT_EQ(tokens[3].type, TokenType::kDoubleLiteral);
  EXPECT_EQ(tokens[3].double_value, 1000.0);
  EXPECT_EQ(tokens[4].double_value, 0.25);
}

TEST(Lexer, MagnitudeSuffixes) {
  // The paper writes salaries as 50K / 80K.
  auto tokens = Lex("50K 80k 2M 1.5K");
  EXPECT_EQ(tokens[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[0].int_value, 50000);
  EXPECT_EQ(tokens[1].int_value, 80000);
  EXPECT_EQ(tokens[2].int_value, 2000000);
  EXPECT_EQ(tokens[3].type, TokenType::kDoubleLiteral);
  EXPECT_EQ(tokens[3].double_value, 1500.0);
}

TEST(Lexer, StringLiteralsWithEscapes) {
  auto tokens = Lex("'hello' 'it''s'");
  EXPECT_EQ(tokens[0].type, TokenType::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(Lexer, UnterminatedStringFails) {
  Lexer lexer("'oops");
  EXPECT_EQ(lexer.Tokenize().status().code(), StatusCode::kParseError);
}

TEST(Lexer, OperatorsAndPunctuation) {
  auto tokens = Lex("= <> != < <= > >= + - * / ( ) , ; .");
  std::vector<TokenType> expected = {
      TokenType::kEq,     TokenType::kNe,    TokenType::kNe,
      TokenType::kLt,     TokenType::kLe,    TokenType::kGt,
      TokenType::kGe,     TokenType::kPlus,  TokenType::kMinus,
      TokenType::kStar,   TokenType::kSlash, TokenType::kLParen,
      TokenType::kRParen, TokenType::kComma, TokenType::kSemicolon,
      TokenType::kDot,    TokenType::kEof};
  ASSERT_EQ(tokens.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(tokens[i].type, expected[i]) << "token " << i;
  }
}

TEST(Lexer, CommentsAndWhitespaceSkipped) {
  auto tokens = Lex("select -- a comment\n  1");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kSelect);
  EXPECT_EQ(tokens[1].type, TokenType::kIntLiteral);
}

TEST(Lexer, TransitionKeywords) {
  auto tokens = Lex("inserted deleted updated selected old new");
  EXPECT_EQ(tokens[0].type, TokenType::kInserted);
  EXPECT_EQ(tokens[1].type, TokenType::kDeleted);
  EXPECT_EQ(tokens[2].type, TokenType::kUpdated);
  EXPECT_EQ(tokens[3].type, TokenType::kSelected);
  EXPECT_EQ(tokens[4].type, TokenType::kOld);
  EXPECT_EQ(tokens[5].type, TokenType::kNew);
}

TEST(Lexer, UnexpectedCharacterFails) {
  Lexer lexer("select @");
  EXPECT_EQ(lexer.Tokenize().status().code(), StatusCode::kParseError);
}

TEST(Lexer, OffsetsReported) {
  auto tokens = Lex("ab cd");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 3u);
}

}  // namespace
}  // namespace sopr
