// End-to-end tests for the TCP front-end (docs/NETWORK.md): real
// sockets against a real Server on an ephemeral port, exercising the
// handshake, pipelined execution (consecutive commits sharing a
// group-commit cohort), the STATS admin frame round-trip, the overload
// and session-limit control planes, and — via the net.* failpoints and
// raw malformed bytes — the failure matrix: every protocol error gets a
// clean kError + close without touching the engine, and a mid-statement
// disconnect cancels the statement and rolls its transaction back
// checksum-exact.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "net/client.h"
#include "net/server.h"
#include "server/session_manager.h"
#include "test_util.h"

namespace sopr {
namespace net {
namespace {

using std::chrono::milliseconds;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sopr_net_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

/// Spins (bounded) until `pred` holds — for the few cross-thread
/// conditions with no event to wait on (connection teardown completing,
/// a cancelled session being reaped).
bool EventuallyTrue(const std::function<bool()>& pred,
                    milliseconds budget = milliseconds(10000)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(2));
  }
  return pred();
}

struct Fixture {
  std::unique_ptr<server::SessionManager> manager;
  std::unique_ptr<Server> server;

  explicit Fixture(Server::Options server_options = {}) {
    FailpointRegistry::Instance().DisarmAll();
    RuleEngineOptions options;
    options.wal_dir = MakeTempDir();
    options.verify_rollback_integrity = true;
    auto opened = server::SessionManager::Open(options);
    EXPECT_TRUE(opened.ok()) << opened.status();
    if (!opened.ok()) return;
    manager = std::move(opened).value();
    auto started = Server::Start(manager.get(), std::move(server_options));
    EXPECT_TRUE(started.ok()) << started.status();
    if (!started.ok()) return;
    server = std::move(started).value();
  }
  ~Fixture() {
    FailpointRegistry::Instance().DisarmAll();
    if (server) server->Shutdown();
  }

  std::unique_ptr<Client> Connect() {
    Client::Options options;
    options.port = server->port();
    auto client = Client::Connect(options);
    EXPECT_TRUE(client.ok()) << client.status();
    return client.ok() ? std::move(client).value() : nullptr;
  }

  uint64_t Checksum() { return manager->engine().db().Checksum(); }
};

/// Raw TCP connection that speaks bytes, not the protocol — for the
/// tests that must violate it (no handshake, garbage, truncation).
struct RawConn {
  int fd = -1;

  explicit RawConn(uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }

  void SendBytes(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
      ASSERT_GT(n, 0);
      off += static_cast<size_t>(n);
    }
  }

  /// Reads until EOF; returns everything received.
  std::string DrainToEof() {
    std::string all;
    char buf[4096];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
      all.append(buf, static_cast<size_t>(n));
    }
    return all;
  }

  /// Decodes the frames inside a fully drained byte stream.
  static std::vector<Frame> Frames(const std::string& bytes) {
    FrameDecoder decoder;
    decoder.Feed(bytes.data(), bytes.size());
    std::vector<Frame> frames;
    while (true) {
      auto next = decoder.Next();
      if (!next.ok() || !next.value().has_value()) break;
      frames.push_back(std::move(*next.value()));
    }
    return frames;
  }
};

// --- Happy path -----------------------------------------------------------

TEST(NetworkServer, HandshakeExecuteQueryRoundTrip) {
  Fixture f;
  auto client = f.Connect();
  ASSERT_NE(client, nullptr);
  EXPECT_NE(client->session_id(), 0u);

  ASSERT_OK_AND_ASSIGN(uint64_t ddl_lsn,
                       client->Execute("create table t (id int, v int)"));
  EXPECT_EQ(ddl_lsn, 0u);  // DDL carries no commit receipt
  ASSERT_OK_AND_ASSIGN(uint64_t lsn1,
                       client->Execute("insert into t values (1, 10)"));
  EXPECT_GT(lsn1, 0u);
  ASSERT_OK_AND_ASSIGN(uint64_t lsn2,
                       client->Execute("insert into t values (2, 20)"));
  EXPECT_GT(lsn2, lsn1);

  ASSERT_OK_AND_ASSIGN(QueryResult rows,
                       client->Query("select v from t order by v"));
  ASSERT_EQ(rows.rows.size(), 2u);
  EXPECT_EQ(rows.rows[0].at(0).AsInt(), 10);
  EXPECT_EQ(rows.rows[1].at(0).AsInt(), 20);

  // Errors come back typed: a parse error is a kParseError over the wire.
  auto bad = client->Execute("insert into nowhere valu (1)");
  ASSERT_FALSE(bad.ok());
  client->Close();
}

TEST(NetworkServer, ActiveRulesFireThroughTheWire) {
  Fixture f;
  auto client = f.Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_OK_AND_ASSIGN(uint64_t ignored, client->Execute(
      "create table emp (name string, salary double)"));
  (void)ignored;
  ASSERT_OK_AND_ASSIGN(uint64_t ignored2, client->Execute(
      "create table audit (name string)"));
  (void)ignored2;
  ASSERT_OK_AND_ASSIGN(uint64_t ignored3, client->Execute(
      "create rule log_hires when inserted into emp "
      "then insert into audit (select name from inserted emp)"));
  (void)ignored3;
  ASSERT_OK_AND_ASSIGN(uint64_t lsn, client->Execute(
      "insert into emp values ('Jane', 90000)"));
  EXPECT_GT(lsn, 0u);
  ASSERT_OK_AND_ASSIGN(QueryResult rows,
                       client->Query("select name from audit"));
  ASSERT_EQ(rows.rows.size(), 1u);
  EXPECT_EQ(rows.rows[0].at(0).AsString(), "Jane");
  client->Close();
}

TEST(NetworkServer, PinnedSnapshotReadsAreFrozen) {
  Fixture f;
  auto client = f.Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_OK_AND_ASSIGN(uint64_t ddl,
                       client->Execute("create table t (id int)"));
  (void)ddl;
  ASSERT_OK_AND_ASSIGN(uint64_t first,
                       client->Execute("insert into t values (1)"));
  (void)first;

  ASSERT_OK_AND_ASSIGN(uint64_t pin_lsn, client->Pin());
  EXPECT_GT(pin_lsn, 0u);
  ASSERT_OK_AND_ASSIGN(uint64_t second,
                       client->Execute("insert into t values (2)"));
  (void)second;

  // The pinned view still sees one row; an unpinned query sees both.
  ASSERT_OK_AND_ASSIGN(QueryResult pinned,
                       client->QueryAt("select count(*) from t"));
  EXPECT_EQ(pinned.rows[0].at(0).AsInt(), 1);
  ASSERT_OK_AND_ASSIGN(QueryResult fresh,
                       client->Query("select count(*) from t"));
  EXPECT_EQ(fresh.rows[0].at(0).AsInt(), 2);

  ASSERT_OK(client->Unpin());
  auto unpinned = client->QueryAt("select count(*) from t");
  ASSERT_FALSE(unpinned.ok());  // no pin to read at anymore
  client->Close();
}

// --- Pipelining and group commit ------------------------------------------

TEST(NetworkServer, PipelinedCommitsShareAGroupCommitCohort) {
  Fixture f;
  auto client = f.Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_OK_AND_ASSIGN(uint64_t ddl,
                       client->Execute("create table t (id int)"));
  (void)ddl;
  ASSERT_OK_AND_ASSIGN(WireStats before, client->Stats());

  constexpr size_t kScripts = 16;
  std::vector<std::string> scripts;
  for (size_t i = 0; i < kScripts; ++i) {
    scripts.push_back("insert into t values (" + std::to_string(i) + ")");
  }
  ASSERT_OK_AND_ASSIGN(auto outcomes, client->ExecutePipelined(scripts));
  ASSERT_EQ(outcomes.size(), kScripts);
  uint64_t prev_lsn = 0;
  for (const auto& o : outcomes) {
    EXPECT_OK(o.status);
    EXPECT_GT(o.commit_lsn, prev_lsn);  // read-your-writes order held
    prev_lsn = o.commit_lsn;
  }
  ASSERT_OK_AND_ASSIGN(QueryResult rows,
                       client->Query("select count(*) from t"));
  EXPECT_EQ(rows.rows[0].at(0).AsInt(), static_cast<int64_t>(kScripts));

  // The cohort evidence: 16 batches landed in strictly fewer fsync
  // cohorts (one-at-a-time execution would need one cohort per commit —
  // this single-connection pipeline stages back-to-back, so the first
  // awaiter's leader syncs the whole run).
  ASSERT_OK_AND_ASSIGN(WireStats after, client->Stats());
  const uint64_t batches = after.group_commit.batches -
                           before.group_commit.batches;
  const uint64_t cohorts = after.group_commit.cohorts -
                           before.group_commit.cohorts;
  EXPECT_EQ(batches, kScripts);
  EXPECT_LT(cohorts, batches);
  EXPECT_GE(after.group_commit.largest_cohort, 2u);
  client->Close();
}

TEST(NetworkServer, PipelinedScriptsFailIndependently) {
  Fixture f;
  auto client = f.Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_OK_AND_ASSIGN(uint64_t ddl,
                       client->Execute("create table t (id int)"));
  (void)ddl;
  ASSERT_OK_AND_ASSIGN(
      auto outcomes,
      client->ExecutePipelined({
          "insert into t values (1)",
          "insert into nonexistent values (2)",  // fails
          "insert into t values (3)",            // still runs
      }));
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_OK(outcomes[0].status);
  EXPECT_FALSE(outcomes[1].status.ok());
  EXPECT_OK(outcomes[2].status);
  ASSERT_OK_AND_ASSIGN(QueryResult rows,
                       client->Query("select count(*) from t"));
  EXPECT_EQ(rows.rows[0].at(0).AsInt(), 2);
  client->Close();
}

// --- STATS admin frame ----------------------------------------------------

TEST(NetworkServer, StatsFrameRoundTripsInspectAndGroupCommit) {
  Fixture f;
  auto client = f.Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_OK_AND_ASSIGN(uint64_t ddl,
                       client->Execute("create table t (id int)"));
  (void)ddl;
  ASSERT_OK_AND_ASSIGN(uint64_t lsn,
                       client->Execute("insert into t values (1)"));
  (void)lsn;

  ASSERT_OK_AND_ASSIGN(WireStats stats, client->Stats());
  // Mirror of SessionManager::Inspect at this quiet moment.
  const auto inspect = f.manager->Inspect();
  EXPECT_EQ(stats.num_sessions, inspect.num_sessions);
  EXPECT_EQ(stats.max_sessions, inspect.max_sessions);
  EXPECT_EQ(stats.admitted, inspect.admission.admitted);
  EXPECT_GE(stats.admitted, 1u);  // our insert passed admission

  // Our own session appears with its counters.
  bool found = false;
  for (const auto& s : stats.sessions) {
    if (s.id != client->session_id()) continue;
    found = true;
    EXPECT_GE(s.statements, 2u);
    EXPECT_GE(s.commits, 1u);
    EXPECT_FALSE(s.killed);
  }
  EXPECT_TRUE(found);

  // Group commit flowed through WalWriter::group_stats.
  EXPECT_EQ(stats.group_commit.batches,
            f.manager->engine().wal()->group_stats().batches);
  EXPECT_GE(stats.group_commit.batches, 1u);

  // Connection-level counters come from the live loop.
  EXPECT_GE(stats.connections_accepted, 1u);
  EXPECT_GE(stats.connections_active, 1u);
  client->Close();
}

// --- Control planes: session limit, overload, KILL ------------------------

TEST(NetworkServer, SessionLimitRefusalIsAStructuredHandshakeError) {
  Fixture f;
  f.manager->set_max_sessions(1);
  auto first = f.Connect();
  ASSERT_NE(first, nullptr);

  Client::Options options;
  options.port = f.server->port();
  auto refused = Client::Connect(options);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(ParseRetryAfterMs(refused.status().message()), 0u)
      << refused.status();

  // Closing the first connection frees the slot for the next handshake.
  first->Close();
  ASSERT_TRUE(EventuallyTrue([&] { return f.manager->num_sessions() == 0; }));
  auto second = Client::Connect(options);
  ASSERT_TRUE(second.ok()) << second.status();
  second.value()->Close();
}

TEST(NetworkServer, OverloadedWriteCarriesEscalatingRetryAfterHint) {
  Fixture f;
  auto client = f.Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_OK_AND_ASSIGN(uint64_t ddl,
                       client->Execute("create table t (id int)"));
  (void)ddl;

  // Zero capacity everywhere: every write is shed at admission.
  server::AdmissionOptions zero;
  zero.max_inflight_writers = 0;
  zero.max_queued_writers = 0;
  f.manager->scheduler().admission().set_options(zero);

  uint32_t last_hint = 0;
  for (int i = 0; i < 3; ++i) {
    auto shed = client->Execute("insert into t values (1)");
    ASSERT_FALSE(shed.ok());
    EXPECT_EQ(shed.status().code(), StatusCode::kOverloaded) << shed.status();
    EXPECT_GT(client->retry_after_ms(), last_hint)
        << "hint must escalate while saturation persists";
    last_hint = client->retry_after_ms();
  }
  // Reads keep flowing while writes shed — degradation is structural.
  ASSERT_OK_AND_ASSIGN(QueryResult rows,
                       client->Query("select count(*) from t"));
  EXPECT_EQ(rows.rows[0].at(0).AsInt(), 0);

  f.manager->scheduler().admission().set_options(server::AdmissionOptions{});
  ASSERT_OK_AND_ASSIGN(uint64_t lsn, client->Execute("insert into t values (1)"));
  EXPECT_GT(lsn, 0u);
  client->Close();
}

TEST(NetworkServer, KillFrameCancelsTheTargetSession) {
  Fixture f;
  auto victim = f.Connect();
  auto killer = f.Connect();
  ASSERT_NE(victim, nullptr);
  ASSERT_NE(killer, nullptr);

  ASSERT_OK(killer->Kill(victim->session_id(), "test kill"));
  // The victim's next statement is refused up front with kCancelled.
  auto refused = victim->Execute("create table t (id int)");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kCancelled)
      << refused.status();
  // And the STATS view marks it killed.
  ASSERT_OK_AND_ASSIGN(WireStats stats, killer->Stats());
  bool found = false;
  for (const auto& s : stats.sessions) {
    if (s.id == victim->session_id()) {
      found = true;
      EXPECT_TRUE(s.killed);
    }
  }
  EXPECT_TRUE(found);

  // Killing an unknown session is a typed error, not a hang.
  auto missing = killer->Kill(999999, "nobody home");
  ASSERT_FALSE(missing.ok());
  victim->Abort();
  killer->Close();
}

// --- Protocol robustness: the engine is never touched ---------------------

TEST(NetworkServer, GarbageBytesGetOneErrorFrameAndAClose) {
  Fixture f;
  const uint64_t before = f.Checksum();
  RawConn raw(f.server->port());
  // An HTTP request's first 4 bytes decode as a ~1.2 GB length.
  raw.SendBytes("GET / HTTP/1.1\r\nHost: sopr\r\n\r\n");
  const auto frames = RawConn::Frames(raw.DrainToEof());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kError);
  uint32_t retry = 0;
  const Status error = DecodeError(frames[0].payload, &retry);
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(error.message().find("protocol error"), std::string::npos);

  ASSERT_TRUE(EventuallyTrue(
      [&] { return f.server->loop_counters().protocol_errors >= 1; }));
  EXPECT_EQ(f.manager->num_sessions(), 0u);  // never reached the handshake
  EXPECT_EQ(f.Checksum(), before);
}

TEST(NetworkServer, TruncatedFrameThenDisconnectIsAQuietClose) {
  Fixture f;
  const uint64_t before = f.Checksum();
  {
    RawConn raw(f.server->port());
    // Header declares an 80-byte payload; send 3 bytes of it and vanish.
    PayloadWriter header;
    header.U32(80);
    header.U8(static_cast<uint8_t>(FrameType::kExecute));
    raw.SendBytes(header.bytes() + "ins");
  }  // destructor closes the socket mid-frame
  ASSERT_TRUE(
      EventuallyTrue([&] { return f.server->loop_counters().closed >= 1; }));
  // A truncated frame from a vanished client is not a protocol error —
  // and it certainly is not SQL.
  EXPECT_EQ(f.server->loop_counters().protocol_errors, 0u);
  EXPECT_EQ(f.manager->num_sessions(), 0u);
  EXPECT_EQ(f.Checksum(), before);
}

TEST(NetworkServer, RequestBeforeHelloIsRefused) {
  Fixture f;
  RawConn raw(f.server->port());
  PayloadWriter w;
  w.Str("insert into t values (1)");
  raw.SendBytes(EncodeFrame(FrameType::kExecute, w.bytes()));
  const auto frames = RawConn::Frames(raw.DrainToEof());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kError);
  const Status error = DecodeError(frames[0].payload, nullptr);
  EXPECT_NE(error.message().find("HELLO"), std::string::npos) << error;
  EXPECT_EQ(f.manager->num_sessions(), 0u);
}

TEST(NetworkServer, UnknownFrameTypeIsRefused) {
  Fixture f;
  RawConn raw(f.server->port());
  raw.SendBytes(EncodeFrame(static_cast<FrameType>(0x5a), "???"));
  const auto frames = RawConn::Frames(raw.DrainToEof());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kError);
  EXPECT_GE(f.server->dispatch_protocol_errors(), 1u);
}

TEST(NetworkServer, VersionMismatchIsRefusedAtHandshake) {
  Fixture f;
  RawConn raw(f.server->port());
  PayloadWriter hello;
  hello.U32(kProtocolVersion + 7);
  hello.Str("time traveler");
  raw.SendBytes(EncodeFrame(FrameType::kHello, hello.bytes()));
  const auto frames = RawConn::Frames(raw.DrainToEof());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kError);
  const Status error = DecodeError(frames[0].payload, nullptr);
  EXPECT_NE(error.message().find("version"), std::string::npos) << error;
  EXPECT_EQ(f.manager->num_sessions(), 0u);
}

TEST(NetworkServer, MalformedExecutePayloadFailsThatRequestOnly) {
  Fixture f;
  auto client = f.Connect();
  ASSERT_NE(client, nullptr);
  // A kExecute whose string length field runs past the payload.
  PayloadWriter w;
  w.U32(1000);  // declares 1000 chars...
  ASSERT_OK(client->SendRaw(
      EncodeFrame(FrameType::kExecute, w.bytes() + "short")));
  ASSERT_OK_AND_ASSIGN(Frame reply, client->ReadFrame());
  EXPECT_EQ(reply.type, FrameType::kError);
  // The connection survives; the next request works.
  ASSERT_OK(client->Ping());
  client->Close();
}

// --- Mid-statement disconnect ---------------------------------------------

TEST(NetworkServer, MidStatementDisconnectCancelsAndRollsBackExactly) {
  Fixture f;
  auto setup = f.Connect();
  ASSERT_NE(setup, nullptr);
  ASSERT_OK_AND_ASSIGN(uint64_t ddl, setup->Execute(
      "create table accts (id int, bal int)"));
  (void)ddl;
  ASSERT_OK_AND_ASSIGN(uint64_t seed, setup->Execute(
      "insert into accts values (1, 100); insert into accts values (2, 200)"));
  (void)seed;
  setup->Close();
  ASSERT_TRUE(EventuallyTrue([&] { return f.manager->num_sessions() == 0; }));
  const uint64_t before = f.Checksum();

  // Park the update after it has applied a mutation (undo exists, locks
  // held) — the worst moment to lose the client.
  auto& registry = FailpointRegistry::Instance();
  registry.ArmBlocking("storage.update.post");
  auto victim = f.Connect();
  ASSERT_NE(victim, nullptr);
  PayloadWriter w;
  w.Str("update accts set bal = bal + 1");
  ASSERT_OK(victim->SendFrame(FrameType::kExecute, w.bytes()));
  registry.WaitForBlocked("storage.update.post", 1);

  // The client vanishes mid-statement. Wait for the loop to notice the
  // close (which cancels the session) BEFORE releasing the worker.
  const uint64_t closed_before = f.server->loop_counters().closed;
  victim->Abort();
  ASSERT_TRUE(EventuallyTrue(
      [&] { return f.server->loop_counters().closed > closed_before; }));
  registry.Release("storage.update.post");

  // The cancelled transaction rolls back through the normal structural
  // path and the connection's session is reaped.
  ASSERT_TRUE(EventuallyTrue([&] { return f.manager->num_sessions() == 0; }));
  registry.DisarmAll();
  EXPECT_EQ(f.Checksum(), before) << "rollback must restore S0 exactly";

  // The engine is healthy: a fresh connection reads the seeded rows.
  auto after = f.Connect();
  ASSERT_NE(after, nullptr);
  ASSERT_OK_AND_ASSIGN(QueryResult rows,
                       after->Query("select sum(bal) from accts"));
  EXPECT_EQ(rows.rows[0].at(0).AsInt(), 300);
  after->Close();
}

// --- net.* failpoints ------------------------------------------------------

TEST(NetworkServer, InjectedAcceptFaultRefusesAtTheDoor) {
  Fixture f;
  auto& registry = FailpointRegistry::Instance();
  FailpointRegistry::Trigger once;
  once.mode = FailpointRegistry::Mode::kOnce;
  registry.Arm("net.accept", once);

  Client::Options options;
  options.port = f.server->port();
  auto refused = Client::Connect(options);
  ASSERT_FALSE(refused.ok());  // clean close before any frame
  ASSERT_TRUE(EventuallyTrue(
      [&] { return f.server->loop_counters().accept_failures >= 1; }));
  EXPECT_EQ(f.manager->num_sessions(), 0u);

  // The next accept (trigger exhausted) succeeds.
  auto fine = Client::Connect(options);
  ASSERT_TRUE(fine.ok()) << fine.status();
  fine.value()->Close();
}

TEST(NetworkServer, InjectedDecodeFaultIsAProtocolError) {
  Fixture f;
  auto client = f.Connect();
  ASSERT_NE(client, nullptr);
  FailpointRegistry::Trigger once;
  once.mode = FailpointRegistry::Mode::kOnce;
  FailpointRegistry::Instance().Arm("net.frame.decode", once);

  ASSERT_OK(client->SendFrame(FrameType::kPing, std::string_view()));
  ASSERT_OK_AND_ASSIGN(Frame reply, client->ReadFrame());
  EXPECT_EQ(reply.type, FrameType::kError);
  auto eof = client->ReadFrame();  // server closed after the error
  ASSERT_FALSE(eof.ok());
  ASSERT_TRUE(EventuallyTrue(
      [&] { return f.server->loop_counters().protocol_errors >= 1; }));
}

TEST(NetworkServer, InjectedWriteFaultTearsTheConnectionDown) {
  Fixture f;
  auto client = f.Connect();
  ASSERT_NE(client, nullptr);
  FailpointRegistry::Trigger once;
  once.mode = FailpointRegistry::Mode::kOnce;
  FailpointRegistry::Instance().Arm("net.conn.write", once);

  // The response write hits the injected EPIPE; the server drops the
  // connection instead of retrying into a dead peer.
  ASSERT_OK(client->SendFrame(FrameType::kPing, std::string_view()));
  auto reply = client->ReadFrame();
  ASSERT_FALSE(reply.ok());
  ASSERT_TRUE(EventuallyTrue([&] { return f.manager->num_sessions() == 0; }));
}

// --- Lifecycle ------------------------------------------------------------

TEST(NetworkServer, GoodbyeIsAnOrderlyFlushThenClose) {
  Fixture f;
  auto client = f.Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_OK(client->Ping());
  client->Close();  // sends kGoodbye, drains to EOF
  ASSERT_TRUE(
      EventuallyTrue([&] { return f.server->loop_counters().active == 0; }));
  ASSERT_TRUE(EventuallyTrue([&] { return f.manager->num_sessions() == 0; }));
}

TEST(NetworkServer, ShutdownWithLiveConnectionsIsClean) {
  Fixture f;
  auto a = f.Connect();
  auto b = f.Connect();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_OK(a->Ping());
  f.server->Shutdown();
  EXPECT_EQ(f.manager->num_sessions(), 0u);
  // Both clients observe EOF, not a hang.
  auto dead = a->ReadFrame();
  EXPECT_FALSE(dead.ok());
}

TEST(NetworkServer, ConcurrentShutdownCallsAreSafe) {
  Fixture f;
  auto client = f.Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_OK(client->Ping());
  // Shutdown is documented idempotent, which includes racing callers
  // (owner teardown vs. a signal handler): every caller must return
  // only once the server is down, and exactly one may join the threads.
  std::vector<std::thread> callers;
  for (int i = 0; i < 4; ++i) {
    callers.emplace_back([&] { f.server->Shutdown(); });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(f.manager->num_sessions(), 0u);
}

/// Counts frames and pauses after every one — the strictest consumer of
/// the Handler::OnFrame keep-reading contract.
class PausingHandler : public EventLoop::Handler {
 public:
  void OnOpen(uint64_t conn_id) override { conn_id_.store(conn_id); }
  bool OnFrame(uint64_t, Frame) override {
    ++frames_;
    return false;
  }
  void OnClose(uint64_t, const Status&) override {}

  std::atomic<uint64_t> conn_id_{0};
  std::atomic<int> frames_{0};
};

TEST(NetworkServer, PauseSignalBoundsDecodingMidBurst) {
  PausingHandler handler;
  ASSERT_OK_AND_ASSIGN(auto loop,
                       EventLoop::Listen(EventLoop::Options(), &handler));
  loop->Start();
  RawConn raw(loop->port());
  // One TCP burst of 32 frames arrives in (at most a few) read() calls.
  // The pause must be honored between frames — the handler sees exactly
  // one frame per resume, never the whole burst.
  std::string burst;
  for (int i = 0; i < 32; ++i) {
    AppendFrame(FrameType::kPing, std::string_view(), &burst);
  }
  raw.SendBytes(burst);
  ASSERT_TRUE(EventuallyTrue([&] { return handler.frames_.load() == 1; }));
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_EQ(handler.frames_.load(), 1);
  // Resume releases the next frame from the decode buffer (the socket
  // alone would never re-deliver it), then the handler re-pauses.
  loop->SetReadPaused(handler.conn_id_.load(), false);
  ASSERT_TRUE(EventuallyTrue([&] { return handler.frames_.load() == 2; }));
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_EQ(handler.frames_.load(), 2);
  loop->Stop();
}

TEST(NetworkServer, ManyConcurrentConnectionsMultiplexOntoWorkers) {
  Server::Options options;
  options.workers = 3;
  Fixture f(options);
  auto ddl_client = f.Connect();
  ASSERT_NE(ddl_client, nullptr);
  ASSERT_OK_AND_ASSIGN(uint64_t ddl,
                       ddl_client->Execute("create table t (id int)"));
  (void)ddl;

  constexpr int kClients = 24;
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < kClients; ++i) {
    auto c = f.Connect();
    ASSERT_NE(c, nullptr);
    clients.push_back(std::move(c));
  }
  // Drive them all from a handful of threads (the container has 1 CPU;
  // the point is connection multiplexing, not thread count).
  std::vector<std::thread> drivers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    drivers.emplace_back([&, t] {
      for (int i = t; i < kClients; i += 4) {
        auto lsn = clients[i]->Execute("insert into t values (" +
                                       std::to_string(i) + ")");
        if (!lsn.ok()) ++failures;
      }
    });
  }
  for (auto& d : drivers) d.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_OK_AND_ASSIGN(QueryResult rows,
                       ddl_client->Query("select count(*) from t"));
  EXPECT_EQ(rows.rows[0].at(0).AsInt(), kClients);
  for (auto& c : clients) c->Close();
  ddl_client->Close();
}

}  // namespace
}  // namespace net
}  // namespace sopr
