// Wire-protocol codec tests (docs/NETWORK.md): payload primitive and
// typed round-trips, incremental frame decoding under arbitrary byte
// fragmentation, and — the part that keeps the server alive — malformed
// input: every truncated, oversized, or garbage payload must come back
// as a clean kInvalidArgument from the bounds-checked reader, never an
// out-of-bounds read or a giant allocation.

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "net/frame.h"
#include "test_util.h"

namespace sopr {
namespace net {
namespace {

TEST(PayloadCodec, PrimitiveRoundTrip) {
  PayloadWriter w;
  w.U8(0xab);
  w.U32(0xdeadbeefu);
  w.U64(0x0123456789abcdefull);
  w.Str("hello");
  w.Str("");  // empty strings are legal

  PayloadReader r(w.bytes());
  ASSERT_OK_AND_ASSIGN(uint8_t u8, r.U8());
  EXPECT_EQ(u8, 0xab);
  ASSERT_OK_AND_ASSIGN(uint32_t u32, r.U32());
  EXPECT_EQ(u32, 0xdeadbeefu);
  ASSERT_OK_AND_ASSIGN(uint64_t u64, r.U64());
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  ASSERT_OK_AND_ASSIGN(std::string s, r.Str());
  EXPECT_EQ(s, "hello");
  ASSERT_OK_AND_ASSIGN(std::string empty, r.Str());
  EXPECT_EQ(empty, "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(PayloadCodec, LittleEndianOnTheWire) {
  PayloadWriter w;
  w.U32(0x01020304u);
  const std::string& b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(b[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(b[3]), 0x01);
}

TEST(PayloadCodec, ValueRoundTripAllTypes) {
  const std::vector<Value> values = {
      Value::Null(),          Value::Bool(true),
      Value::Bool(false),     Value::Int(-42),
      Value::Int(std::numeric_limits<int64_t>::min()),
      Value::Double(3.25),    Value::Double(-0.0),
      Value::String(""),      Value::String("widom & finkelstein"),
  };
  PayloadWriter w;
  for (const Value& v : values) w.Val(v);
  PayloadReader r(w.bytes());
  for (const Value& expected : values) {
    ASSERT_OK_AND_ASSIGN(Value got, r.Val());
    EXPECT_TRUE(got == expected) << got.ToString();
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(PayloadCodec, QueryResultRoundTrip) {
  QueryResult result;
  result.columns = {"name", "salary", "active"};
  result.rows.push_back(
      Row({Value::String("Jane"), Value::Double(90000), Value::Bool(true)}));
  result.rows.push_back(
      Row({Value::Null(), Value::Int(7), Value::String("x")}));

  PayloadWriter w;
  w.PutResult(result);
  PayloadReader r(w.bytes());
  ASSERT_OK_AND_ASSIGN(QueryResult got, r.GetResult());
  ASSERT_EQ(got.columns, result.columns);
  ASSERT_EQ(got.rows.size(), result.rows.size());
  for (size_t i = 0; i < got.rows.size(); ++i) {
    EXPECT_TRUE(got.rows[i] == result.rows[i]);
  }
}

TEST(PayloadCodec, TruncationIsAlwaysInvalidArgument) {
  // Every proper prefix of a valid payload must fail cleanly somewhere.
  PayloadWriter w;
  w.U32(7);
  w.Str("payload");
  w.Val(Value::Int(5));
  const std::string full = w.bytes();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    PayloadReader r(std::string_view(full).substr(0, cut));
    auto a = r.U32();
    if (!a.ok()) {
      EXPECT_EQ(a.status().code(), StatusCode::kInvalidArgument);
      continue;
    }
    auto b = r.Str();
    if (!b.ok()) {
      EXPECT_EQ(b.status().code(), StatusCode::kInvalidArgument);
      continue;
    }
    auto c = r.Val();
    EXPECT_FALSE(c.ok()) << "cut=" << cut;
    EXPECT_EQ(c.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(PayloadCodec, DeclaredCountsAreCheckedAgainstRemainingBytes) {
  // A malicious row header declaring 2^32-1 values must be rejected
  // before any allocation, not reserved for.
  PayloadWriter w;
  w.U32(0xffffffffu);
  PayloadReader r(w.bytes());
  auto row = r.GetRow();
  ASSERT_FALSE(row.ok());
  EXPECT_EQ(row.status().code(), StatusCode::kInvalidArgument);

  PayloadReader r2(w.bytes());
  auto result = r2.GetResult();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameCodec, DecoderReassemblesByteAtATime) {
  std::string stream;
  AppendFrame(FrameType::kExecute, "insert into t values (1)", &stream);
  AppendFrame(FrameType::kPing, "", &stream);
  AppendFrame(FrameType::kQuery, "select * from t", &stream);

  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (char c : stream) {
    decoder.Feed(&c, 1);
    while (true) {
      auto next = decoder.Next();
      ASSERT_OK(next.status());
      if (!next.value().has_value()) break;
      frames.push_back(std::move(*next.value()));
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, FrameType::kExecute);
  EXPECT_EQ(frames[0].payload, "insert into t values (1)");
  EXPECT_EQ(frames[1].type, FrameType::kPing);
  EXPECT_TRUE(frames[1].payload.empty());
  EXPECT_EQ(frames[2].type, FrameType::kQuery);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameCodec, PartialFrameIsNotAFrame) {
  FrameDecoder decoder;
  std::string frame = EncodeFrame(FrameType::kExecute, "abcdef");
  decoder.Feed(frame.data(), frame.size() - 1);  // all but the last byte
  auto next = decoder.Next();
  ASSERT_OK(next.status());
  EXPECT_FALSE(next.value().has_value());
}

TEST(FrameCodec, OversizedDeclaredLengthIsUnrecoverable) {
  // "GET / HTTP/1.1" — the first 4 bytes read as a huge little-endian
  // length, which is exactly how random-protocol garbage gets rejected.
  FrameDecoder decoder;
  const std::string garbage = "GET / HTTP/1.1\r\n\r\n";
  decoder.Feed(garbage.data(), garbage.size());
  auto next = decoder.Next(kMaxPayloadBytes);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameCodec, RequestTypePredicate) {
  EXPECT_TRUE(IsRequestType(static_cast<uint8_t>(FrameType::kHello)));
  EXPECT_TRUE(IsRequestType(static_cast<uint8_t>(FrameType::kGoodbye)));
  EXPECT_FALSE(IsRequestType(0x00));
  EXPECT_FALSE(IsRequestType(0x7f));
  EXPECT_FALSE(IsRequestType(static_cast<uint8_t>(FrameType::kError)));
  EXPECT_FALSE(IsRequestType(static_cast<uint8_t>(FrameType::kHelloOk)));
}

TEST(ErrorCodec, StatusRoundTripWithRetryHint) {
  const Status in =
      Status::Overloaded("writer admission queue full retry-after-ms=40");
  uint32_t retry = 0;
  const Status out = DecodeError(EncodeError(in, 40), &retry);
  EXPECT_EQ(out.code(), StatusCode::kOverloaded);
  EXPECT_EQ(out.message(), in.message());
  EXPECT_EQ(retry, 40u);
}

TEST(ErrorCodec, UnknownStatusCodeClampsToInternal) {
  PayloadWriter w;
  w.U8(0xee);  // far beyond the enum
  w.U32(0);
  w.Str("from the future");
  uint32_t retry = 9;
  const Status out = DecodeError(w.bytes(), &retry);
  EXPECT_EQ(out.code(), StatusCode::kInternal);
  EXPECT_EQ(retry, 0u);
}

TEST(ErrorCodec, ParseRetryAfterMs) {
  EXPECT_EQ(ParseRetryAfterMs("no hint here"), 0u);
  EXPECT_EQ(ParseRetryAfterMs("shed; retry-after-ms=125 (queue full)"), 125u);
  EXPECT_EQ(ParseRetryAfterMs("retry-after-ms="), 0u);  // no digits
  EXPECT_EQ(ParseRetryAfterMs("retry-after-ms=99999999999999"),
            0xffffffffu);  // clamped
}

TEST(StatsCodec, RoundTrip) {
  WireStats in;
  in.num_sessions = 3;
  in.max_sessions = 256;
  in.admitted = 100;
  in.shed_queue_full = 5;
  in.shed_queue_deadline = 2;
  in.shed_cancelled = 1;
  in.admission_inflight = 4;
  in.admission_queued = 7;
  in.group_commit.cohorts = 11;
  in.group_commit.batches = 44;
  in.group_commit.largest_cohort = 9;
  in.group_commit.cohort_size_hist[3] = 17;
  in.connections_accepted = 1000;
  in.connections_active = 12;
  in.protocol_errors = 3;
  in.sessions.push_back({42, 10, 2, 15, 1, true});

  ASSERT_OK_AND_ASSIGN(WireStats out, DecodeStats(EncodeStats(in)));
  EXPECT_EQ(out.num_sessions, in.num_sessions);
  EXPECT_EQ(out.max_sessions, in.max_sessions);
  EXPECT_EQ(out.admitted, in.admitted);
  EXPECT_EQ(out.shed_queue_full, in.shed_queue_full);
  EXPECT_EQ(out.shed_queue_deadline, in.shed_queue_deadline);
  EXPECT_EQ(out.shed_cancelled, in.shed_cancelled);
  EXPECT_EQ(out.admission_inflight, in.admission_inflight);
  EXPECT_EQ(out.admission_queued, in.admission_queued);
  EXPECT_EQ(out.group_commit.cohorts, in.group_commit.cohorts);
  EXPECT_EQ(out.group_commit.batches, in.group_commit.batches);
  EXPECT_EQ(out.group_commit.largest_cohort, in.group_commit.largest_cohort);
  EXPECT_EQ(out.group_commit.cohort_size_hist, in.group_commit.cohort_size_hist);
  EXPECT_EQ(out.connections_accepted, in.connections_accepted);
  EXPECT_EQ(out.connections_active, in.connections_active);
  EXPECT_EQ(out.protocol_errors, in.protocol_errors);
  ASSERT_EQ(out.sessions.size(), 1u);
  EXPECT_EQ(out.sessions[0].id, 42u);
  EXPECT_EQ(out.sessions[0].commits, 10u);
  EXPECT_EQ(out.sessions[0].aborts, 2u);
  EXPECT_EQ(out.sessions[0].statements, 15u);
  EXPECT_EQ(out.sessions[0].inflight_statements, 1u);
  EXPECT_TRUE(out.sessions[0].killed);

  // Truncated stats payloads fail cleanly like everything else.
  const std::string bytes = EncodeStats(in);
  auto truncated = DecodeStats(std::string_view(bytes).substr(0, 20));
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace net
}  // namespace sopr
