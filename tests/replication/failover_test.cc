// Failover litmus (docs/REPLICATION.md): kill a primary mid-cohort at
// every cataloged wal.* crash site, bootstrap a follower from its WAL
// directory, and require the follower's replayed state to equal the
// committed-prefix oracle bit for bit (Engine::StateChecksum — the same
// oracle discipline as the crash-recovery harness). Then promote the
// follower, prove the promoted engine fires rules and appends durable
// commits (a fresh Engine::Open recovers the post-promotion state), and
// chaos the follower's own repl.* sites.
//
// Also covers the live-primary path in-process: a follower tailing a
// primary under write load serves monotone snapshot reads, reports a lag
// bound, refuses writes with kReadOnlyReplica, and survives checkpoint
// rotations (re-bootstrap) without breaking pinned sessions.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "engine/engine.h"
#include "replication/follower.h"
#include "test_util.h"
#include "wal/wal_writer.h"

namespace sopr {
namespace {

using replication::Follower;
using replication::FollowerOptions;
using replication::LagBound;
using replication::PollResult;

constexpr int kTxns = 12;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sopr_failover_test_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

RuleEngineOptions DurableOptions(const std::string& dir) {
  RuleEngineOptions options;
  options.wal_dir = dir;
  options.wal_checkpoint_interval = 5;  // rotations happen mid-workload
  return options;
}

/// Tight backoff so a litmus run spends microseconds, not wall-clock,
/// inside retry loops; bounded so a dead primary's torn tail surfaces as
/// kUnavailable instead of hanging CatchUp.
FollowerOptions MakeFollowerOptions(const std::string& dir) {
  FollowerOptions options;
  options.engine = DurableOptions(dir);
  options.retry.initial_delay = std::chrono::microseconds(50);
  options.retry.max_delay = std::chrono::microseconds(500);
  options.retry.max_attempts = 8;
  return options;
}

// Same deterministic workload as the crash-recovery harness: marker row
// per transaction, a rule that must never re-fire during replay, and all
// three redo record types on the log.
const std::vector<std::string>& WorkloadDdl() {
  static const std::vector<std::string>* ddl = new std::vector<std::string>{
      "create table committed_log (seq int)",
      "create table t (a int)",
      "create table audit (n int)",
      "create index on t (a)",
      "create rule audit_rule when inserted into t "
      "then insert into audit (select count(*) from inserted t)",
  };
  return *ddl;
}

Status RunTxn(Engine* engine, int i) {
  std::string block =
      "insert into committed_log values (" + std::to_string(i) + "); " +
      "insert into t values (" + std::to_string(i) + "); " +
      "insert into t values (" + std::to_string(i + 1000) + ")";
  if (i % 3 == 2) {
    block += "; update t set a = a + 10000 where a = " + std::to_string(i - 1);
    block += "; delete from t where a = " + std::to_string(i + 999);
  }
  return engine->Execute(block);
}

struct Oracle {
  std::vector<uint64_t> ddl_prefix;  // [j] = first j DDL statements
  std::vector<uint64_t> after_txn;   // [k] = full DDL + k transactions
};

const Oracle& GetOracle() {
  static const Oracle* oracle = [] {
    auto* o = new Oracle();
    Engine engine;
    o->ddl_prefix.push_back(engine.StateChecksum());
    for (const std::string& ddl : WorkloadDdl()) {
      Status s = engine.Execute(ddl);
      if (!s.ok()) ADD_FAILURE() << "oracle DDL failed: " << s;
      o->ddl_prefix.push_back(engine.StateChecksum());
    }
    o->after_txn.push_back(engine.StateChecksum());
    for (int i = 0; i <= kTxns; ++i) {
      Status s = RunTxn(&engine, i);
      if (!s.ok()) ADD_FAILURE() << "oracle txn " << i << " failed: " << s;
      o->after_txn.push_back(engine.StateChecksum());
    }
    return o;
  }();
  return *oracle;
}

/// Primary child: arm one @Crash trigger, run the workload. Exit 0 =
/// trigger never fired, kFailpointCrashExitCode = killed mid-flight,
/// 43 = harness bug.
[[noreturn]] void ChildPrimary(const std::string& dir,
                               const std::string& site, uint64_t nth) {
  FailpointRegistry::Trigger trigger;
  trigger.mode = FailpointRegistry::Mode::kNth;
  trigger.n = nth;
  trigger.crash = true;
  FailpointRegistry::Instance().Arm(site, trigger);

  auto engine = Engine::Open(DurableOptions(dir));
  if (!engine.ok()) std::_Exit(43);
  for (const std::string& ddl : WorkloadDdl()) {
    if (!engine.value()->Execute(ddl).ok()) std::_Exit(43);
  }
  for (int i = 0; i < kTxns; ++i) {
    if (!RunTxn(engine.value().get(), i).ok()) std::_Exit(43);
  }
  std::_Exit(0);
}

/// Follower child for repl.* chaos: arm one @Crash trigger, then do a
/// full failover (bootstrap, catch up, promote, one write). The promote
/// path must leave the directory recoverable no matter where it dies.
[[noreturn]] void ChildFailover(const std::string& dir,
                                const std::string& site, uint64_t nth) {
  FailpointRegistry::Trigger trigger;
  trigger.mode = FailpointRegistry::Mode::kNth;
  trigger.n = nth;
  trigger.crash = true;
  FailpointRegistry::Instance().Arm(site, trigger);

  auto follower = Follower::Open(MakeFollowerOptions(dir));
  if (!follower.ok()) std::_Exit(43);
  Status caught = follower.value()->CatchUp();
  if (!caught.ok() && caught.code() != StatusCode::kUnavailable) {
    std::_Exit(43);
  }
  auto promoted = follower.value()->Promote();
  if (!promoted.ok()) std::_Exit(43);
  auto count = QueryScalar(promoted.value().get(),
                           "select count(*) from committed_log");
  if (!RunTxn(promoted.value().get(), static_cast<int>(count.AsInt()))
           .ok()) {
    std::_Exit(43);
  }
  std::_Exit(0);
}

template <typename Body>
int ForkChild(Body body) {
  ::pid_t pid = ::fork();
  EXPECT_NE(pid, -1);
  if (pid == 0) body();  // never returns
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status)) << "child killed by signal "
                                 << (WIFSIGNALED(status) ? WTERMSIG(status)
                                                         : 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// The litmus core: bootstrap a follower on the dead primary's
/// directory, catch up, and compare bit-exactly against the oracle; then
/// promote and prove the promoted engine is a working, durable primary.
void VerifyFailover(const std::string& dir, bool primary_completed,
                    const std::string& context) {
  SCOPED_TRACE(context);
  const Oracle& oracle = GetOracle();

  auto opened = Follower::Open(MakeFollowerOptions(dir));
  ASSERT_TRUE(opened.ok()) << "follower bootstrap failed: "
                           << opened.status();
  std::unique_ptr<Follower> follower = std::move(opened).value();
  Status caught = follower->CatchUp();
  // A torn tail left by the kill never completes: CatchUp reports the
  // degradation as kUnavailable while reads stay consistent. Everything
  // else must catch up cleanly.
  ASSERT_TRUE(caught.ok() || caught.code() == StatusCode::kUnavailable)
      << caught;

  const uint64_t replayed = follower->StateChecksum();

  // Crash inside setup: some strict DDL prefix committed. committed_log
  // is the FIRST DDL statement, so the marker table existing does not
  // imply the schema is complete — compare against the prefix oracle
  // before trusting the marker count (the full prefix equals
  // after_txn[0] and falls through to the k-branch below).
  auto marker = follower->Query("select count(*) from committed_log");
  const auto strict_ddl_end = std::prev(oracle.ddl_prefix.end());
  const bool mid_ddl =
      !marker.ok() || std::find(oracle.ddl_prefix.begin(), strict_ddl_end,
                                replayed) != strict_ddl_end;
  if (mid_ddl) {
    EXPECT_FALSE(primary_completed);
    EXPECT_NE(std::find(oracle.ddl_prefix.begin(), oracle.ddl_prefix.end(),
                        replayed),
              oracle.ddl_prefix.end())
        << "follower state matches no DDL prefix";
  } else {
    ASSERT_EQ(marker.value().rows.size(), 1u);
    const int k = static_cast<int>(marker.value().rows[0].at(0).AsInt());
    ASSERT_GE(k, 0);
    ASSERT_LE(k, kTxns);
    if (primary_completed) {
      EXPECT_EQ(k, kTxns);
    }
    EXPECT_EQ(replayed, oracle.after_txn[k])
        << "follower replay is not the committed prefix (k=" << k << ")";

    // The follower is read-only until promoted.
    Status refused = follower->Execute("insert into t values (777777)");
    EXPECT_EQ(refused.code(), StatusCode::kReadOnlyReplica) << refused;

    // Promote: take the dead primary's lock, drop its torn tail, attach
    // a writer. The promoted engine must fire the recovered rules on the
    // next transaction and land exactly on the next oracle state.
    auto promoted = follower->Promote();
    ASSERT_TRUE(promoted.ok()) << "promotion failed: " << promoted.status();
    std::unique_ptr<Engine> engine = std::move(promoted).value();
    EXPECT_TRUE(engine->durable());
    EXPECT_OK(engine->CheckInvariants());
    EXPECT_EQ(engine->StateChecksum(), oracle.after_txn[k]);
    ASSERT_OK(RunTxn(engine.get(), k));
    EXPECT_EQ(engine->StateChecksum(), oracle.after_txn[k + 1])
        << "promoted engine did not fire rules correctly (k=" << k << ")";
    engine.reset();  // close the log, release the lock

    // The promoted commit is durable: a cold Engine::Open recovers it.
    auto reopened = Engine::Open(DurableOptions(dir));
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    EXPECT_EQ(reopened.value()->StateChecksum(), oracle.after_txn[k + 1])
        << "promoted engine's commit did not survive restart (k=" << k
        << ")";
  }
}

class FailoverTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisarmAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }

  void RunKillPoint(const std::string& site, uint64_t nth) {
    std::string dir = MakeTempDir();
    int code = ForkChild([&] { ChildPrimary(dir, site, nth); });
    ASSERT_TRUE(code == 0 || code == kFailpointCrashExitCode)
        << site << " nth=" << nth << " exited " << code;
    VerifyFailover(dir, code == 0, site + " nth=" + std::to_string(nth));
  }
};

TEST_F(FailoverTest, CompletedPrimaryFailsOverToTheFullOracle) {
  RunKillPoint("no.such.site", 1);
}

TEST_F(FailoverTest, KillPrimaryMidCohortAtEveryCatalogedWalSite) {
  int attacked = 0;
  for (const std::string& site : FailpointRegistry::KnownSites()) {
    if (site.rfind("wal.", 0) != 0) continue;
    ++attacked;
    for (uint64_t nth : {uint64_t{1}, uint64_t{7}}) {
      RunKillPoint(site, nth);
      if (HasFatalFailure()) return;
    }
  }
  EXPECT_GE(attacked, 15);
}

TEST_F(FailoverTest, TornTailMidBatchIsDroppedAtPromotion) {
  // wal.write.mid leaves a genuinely torn commit batch on disk: the
  // follower must classify it retryable (not corruption), degrade with a
  // reported lag bound, and promotion must truncate it exactly like
  // primary recovery would.
  std::string dir = MakeTempDir();
  int code = ForkChild([&] { ChildPrimary(dir, "wal.write.mid", 8); });
  ASSERT_EQ(code, kFailpointCrashExitCode);

  auto opened = Follower::Open(MakeFollowerOptions(dir));
  ASSERT_TRUE(opened.ok()) << opened.status();
  std::unique_ptr<Follower> follower = std::move(opened).value();
  Status caught = follower->CatchUp();
  ASSERT_EQ(caught.code(), StatusCode::kUnavailable) << caught;
  LagBound lag = follower->Lag();
  EXPECT_GT(lag.lag_bytes, 0u) << "torn tail must be reported as lag";
  EXPECT_GT(lag.replayed_lsn, 0u);

  VerifyFailover(dir, false, "torn tail at failover");
}

TEST_F(FailoverTest, EveryReplFailpointCrashLeavesDirectoryRecoverable) {
  // Chaos on the follower's own sites: die at each repl.* site during a
  // full failover, then require a cold Engine::Open to land on SOME
  // oracle state — the follower/promotion path must never corrupt the
  // directory, no matter where it stops.
  const Oracle& oracle = GetOracle();
  std::string dir = MakeTempDir();
  int code = ForkChild([&] { ChildPrimary(dir, "wal.commit.sync", 5); });
  ASSERT_EQ(code, kFailpointCrashExitCode);

  int attacked = 0;
  bool oracle_exhausted = false;
  for (const std::string& site : FailpointRegistry::KnownSites()) {
    if (site.rfind("repl.", 0) != 0) continue;
    if (oracle_exhausted) break;
    ++attacked;
    for (uint64_t nth : {uint64_t{1}, uint64_t{2}}) {
      SCOPED_TRACE(site + " nth=" + std::to_string(nth));
      code = ForkChild([&] { ChildFailover(dir, site, nth); });
      ASSERT_TRUE(code == 0 || code == kFailpointCrashExitCode)
          << site << " exited " << code;
      auto reopened = Engine::Open(DurableOptions(dir));
      ASSERT_TRUE(reopened.ok())
          << "directory unrecoverable after crash at " << site << ": "
          << reopened.status();
      EXPECT_OK(reopened.value()->CheckInvariants());
      const uint64_t recovered = reopened.value()->StateChecksum();
      EXPECT_NE(std::find(oracle.after_txn.begin(), oracle.after_txn.end(),
                          recovered),
                oracle.after_txn.end())
          << "recovered state matches no committed prefix after " << site;
      // A completed child appended one transaction; keep the directory's
      // committed_log count for the next iteration's oracle lookup (the
      // oracle covers kTxns + 1 transactions, so at most a few completed
      // failovers fit — nth kills keep most children short of the end).
      if (reopened.value()->TableSize("committed_log").ok() &&
          reopened.value()->TableSize("committed_log").value() >
              static_cast<size_t>(kTxns)) {
        oracle_exhausted = true;  // no oracle entry past kTxns + 1
        break;
      }
    }
  }
  EXPECT_GE(attacked, 6);
}

TEST_F(FailoverTest, FollowerTailsALivePrimaryInProcess) {
  // Live-tailing path: primary and follower share the process (the
  // follower never takes the DirLock, so both can run). The follower
  // must deliver monotone snapshot reads, a truthful lag bound, and
  // survive checkpoint rotations happening under it.
  std::string dir = MakeTempDir();
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> primary,
                       Engine::Open(DurableOptions(dir)));
  for (const std::string& ddl : WorkloadDdl()) {
    ASSERT_OK(primary->Execute(ddl));
  }

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Follower> follower,
                       Follower::Open(MakeFollowerOptions(dir)));
  ASSERT_OK(follower->CatchUp());
  EXPECT_EQ(follower->StateChecksum(), primary->StateChecksum());

  uint64_t last_seen_lsn = 0;
  int last_count = -1;
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_OK(RunTxn(primary.get(), i));
    // Pin BEFORE catching up: the snapshot must stay consistent even as
    // replay advances under it.
    Follower::Snapshot pinned = follower->PinSnapshot();
    ASSERT_OK(follower->CatchUp());

    LagBound lag = follower->Lag();
    EXPECT_TRUE(lag.primary_reachable);
    EXPECT_EQ(lag.lag_bytes, 0u) << "caught up must mean zero lag";
    EXPECT_GE(lag.replayed_lsn, last_seen_lsn) << "replayed_lsn regressed";
    last_seen_lsn = lag.replayed_lsn;

    // Fresh snapshot read sees exactly i+1 committed markers; the pinned
    // (pre-catch-up) snapshot sees a count that never regresses.
    ASSERT_OK_AND_ASSIGN(QueryResult fresh, follower->Query(
        "select count(*) from committed_log"));
    EXPECT_EQ(static_cast<int>(fresh.rows[0].at(0).AsInt()), i + 1);
    ASSERT_OK_AND_ASSIGN(QueryResult stale, follower->QueryAt(
        pinned, "select count(*) from committed_log"));
    const int stale_count = static_cast<int>(stale.rows[0].at(0).AsInt());
    EXPECT_GE(stale_count, last_count);
    EXPECT_LE(stale_count, i + 1);
    last_count = stale_count;

    // Writes and DDL are refused no matter how they arrive.
    EXPECT_EQ(follower->Execute("insert into t values (888888)").code(),
              StatusCode::kReadOnlyReplica);
    EXPECT_EQ(follower->Execute("create table nope (x int)").code(),
              StatusCode::kReadOnlyReplica);
  }
  // The workload crossed the checkpoint interval several times, so the
  // follower necessarily handled at least one rotation to stay exact.
  EXPECT_EQ(follower->StateChecksum(), primary->StateChecksum());
  EXPECT_EQ(follower->StateChecksum(), GetOracle().after_txn[kTxns]);
}

TEST_F(FailoverTest, PinnedSnapshotSurvivesRotationRebootstrap) {
  // Pin a snapshot, force the primary through a checkpoint rotation that
  // makes the follower re-bootstrap, and require the old pinned session
  // to keep answering from its stale-but-consistent generation.
  std::string dir = MakeTempDir();
  RuleEngineOptions primary_options = DurableOptions(dir);
  primary_options.wal_checkpoint_interval = 2;  // rotate aggressively
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> primary,
                       Engine::Open(primary_options));
  for (const std::string& ddl : WorkloadDdl()) {
    ASSERT_OK(primary->Execute(ddl));
  }
  ASSERT_OK(RunTxn(primary.get(), 0));

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Follower> follower,
                       Follower::Open(MakeFollowerOptions(dir)));
  ASSERT_OK(follower->CatchUp());
  Follower::Snapshot pinned = follower->PinSnapshot();

  // Several checkpoints pass without the follower polling: by the time
  // it looks again, the prefix it was tailing lives only in the
  // snapshot, forcing the rotation/re-bootstrap path.
  for (int i = 1; i < 7; ++i) ASSERT_OK(RunTxn(primary.get(), i));
  ASSERT_OK(follower->CatchUp());
  EXPECT_EQ(follower->StateChecksum(), primary->StateChecksum());

  // The pre-rotation pin still answers, with its old consistent count.
  ASSERT_OK_AND_ASSIGN(QueryResult stale, follower->QueryAt(
      pinned, "select count(*) from committed_log"));
  EXPECT_EQ(static_cast<int>(stale.rows[0].at(0).AsInt()), 1);
  ASSERT_OK_AND_ASSIGN(QueryResult fresh, follower->Query(
      "select count(*) from committed_log"));
  EXPECT_EQ(static_cast<int>(fresh.rows[0].at(0).AsInt()), 7);
}

TEST_F(FailoverTest, ConcurrentSnapshotReadersDuringReplay) {
  // The TSan target: reader threads hammer snapshot reads while the main
  // thread alternates primary commits with follower replay. Readers must
  // never block replay, never error, and never observe a count going
  // backwards (monotone replayed_lsn) or a torn transaction (the marker
  // and its rule-generated audit row commit together).
  std::string dir = MakeTempDir();
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> primary,
                       Engine::Open(DurableOptions(dir)));
  for (const std::string& ddl : WorkloadDdl()) {
    ASSERT_OK(primary->Execute(ddl));
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Follower> follower,
                       Follower::Open(MakeFollowerOptions(dir)));
  ASSERT_OK(follower->CatchUp());

  std::atomic<bool> stop{false};
  std::atomic<int> reader_failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      int64_t last = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto audits = follower->Query("select count(*) from audit");
        auto markers =
            follower->Query("select count(*) from committed_log");
        if (!markers.ok() || markers.value().rows.size() != 1) {
          reader_failures.fetch_add(1);
          return;
        }
        const int64_t n = markers.value().rows[0].at(0).AsInt();
        if (n < last) {
          reader_failures.fetch_add(1);
          return;
        }
        last = n;
        if (!audits.ok()) {
          reader_failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_OK(RunTxn(primary.get(), i));
    ASSERT_OK(follower->CatchUp());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(reader_failures.load(), 0);
  EXPECT_EQ(follower->StateChecksum(), primary->StateChecksum());
}

TEST_F(FailoverTest, PromotionFencesAgainstALivePrimary) {
  std::string dir = MakeTempDir();
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> primary,
                       Engine::Open(DurableOptions(dir)));
  ASSERT_OK(primary->Execute("create table t (a int)"));
  ASSERT_OK(primary->Execute("insert into t values (1)"));

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Follower> follower,
                       Follower::Open(MakeFollowerOptions(dir)));
  ASSERT_OK(follower->CatchUp());
  // The primary still holds the DirLock: promotion must refuse rather
  // than create a second writer.
  Result<std::unique_ptr<Engine>> promoted = follower->Promote();
  ASSERT_FALSE(promoted.ok());
  EXPECT_EQ(promoted.status().code(), StatusCode::kIoError);

  // The primary dies (releasing the flock); now promotion wins, and a
  // pre-promotion pin is told to move on rather than read freed state.
  Follower::Snapshot pinned = follower->PinSnapshot();
  primary.reset();
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                       follower->Promote());
  ASSERT_OK(engine->Execute("insert into t values (2)"));
  EXPECT_EQ(follower->QueryAt(pinned, "select count(*) from t")
                .status()
                .code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(follower->Query("select count(*) from t").status().code(),
            StatusCode::kUnavailable);
  Result<PollResult> poll = follower->PollOnce();
  EXPECT_FALSE(poll.ok());
}

}  // namespace
}  // namespace sopr
