// WalTailer unit suite: incremental tailing of a growing wal.log —
// resume offsets, torn-tail retry classification, rotation detection —
// plus the incremental-scan contract (a resumed scan must equal a full
// scan) and the shared backoff helper's determinism and bounds.

#include "replication/wal_tailer.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/retry.h"
#include "test_util.h"
#include "wal/wal_format.h"
#include "wal/wal_writer.h"

namespace sopr {
namespace replication {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sopr_tailer_test_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

void AppendFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

void TruncateFile(const std::string& path, uint64_t size) {
  ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(size)), 0) << path;
}

/// One committed group: BEGIN + COMMIT (the tailer never interprets
/// bodies, so redo records add nothing to these tests).
std::string EncodeGroup(uint64_t first_lsn, uint64_t txn) {
  std::string bytes;
  wal::AppendRecord(&bytes, wal::WalRecord::Begin(first_lsn, txn));
  wal::AppendRecord(&bytes, wal::WalRecord::Commit(first_lsn + 1, txn, 1));
  return bytes;
}

std::string EncodeDdl(uint64_t lsn, const std::string& sql) {
  std::string bytes;
  wal::AppendRecord(&bytes, wal::WalRecord::Ddl(lsn, sql));
  return bytes;
}

class TailerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Instance().DisarmAll();
    dir_ = MakeTempDir();
    log_ = wal::WalWriter::LogPath(dir_);
  }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }

  std::string dir_;
  std::string log_;
};

TEST_F(TailerTest, MissingLogIsIdleNotAnError) {
  WalTailer tailer(dir_, 0, 0);
  ASSERT_OK_AND_ASSIGN(TailBatch batch, tailer.Poll());
  EXPECT_EQ(batch.outcome, TailOutcome::kIdle);
  EXPECT_TRUE(batch.records.empty());
  EXPECT_EQ(tailer.bytes_read(), 0u);
}

TEST_F(TailerTest, DeliversRecordsIncrementallyWithoutRereading) {
  const std::string group1 = EncodeGroup(1, 1);
  AppendFileBytes(log_, group1);

  WalTailer tailer(dir_, 0, 0);
  ASSERT_OK_AND_ASSIGN(TailBatch batch, tailer.Poll());
  EXPECT_EQ(batch.outcome, TailOutcome::kProgress);
  ASSERT_EQ(batch.records.size(), 2u);
  EXPECT_EQ(batch.records[0].lsn, 1u);
  EXPECT_EQ(batch.records[1].lsn, 2u);
  EXPECT_EQ(batch.records[0].offset, 0u);
  EXPECT_EQ(tailer.offset(), group1.size());
  EXPECT_EQ(tailer.last_lsn(), 2u);
  EXPECT_EQ(batch.lag_bytes, 0u);

  // Nothing new: idle, and no bytes re-read.
  const uint64_t read_after_first = tailer.bytes_read();
  ASSERT_OK_AND_ASSIGN(batch, tailer.Poll());
  EXPECT_EQ(batch.outcome, TailOutcome::kIdle);
  EXPECT_EQ(tailer.bytes_read(), read_after_first);

  // The primary appends: only the new bytes are read, the new records'
  // offsets are absolute, and LSN continuity holds across the seam.
  const std::string group2 = EncodeGroup(3, 2);
  AppendFileBytes(log_, group2);
  ASSERT_OK_AND_ASSIGN(batch, tailer.Poll());
  EXPECT_EQ(batch.outcome, TailOutcome::kProgress);
  ASSERT_EQ(batch.records.size(), 2u);
  EXPECT_EQ(batch.records[0].lsn, 3u);
  EXPECT_EQ(batch.records[0].offset, group1.size());
  EXPECT_EQ(tailer.bytes_read(), read_after_first + group2.size());
  EXPECT_EQ(tailer.offset(), group1.size() + group2.size());
}

TEST_F(TailerTest, TornTailIsRetryableThenPickedUpWithoutRescan) {
  const std::string group1 = EncodeGroup(1, 1);
  const std::string group2 = EncodeGroup(3, 2);
  // 10 bytes cuts inside group 2's first record (8-byte header + a sliver
  // of payload), so no record of group 2 is deliverable yet.
  const size_t torn = 10;
  // Group 1 complete, group 2 only half-written (primary mid-write).
  AppendFileBytes(log_, group1);
  AppendFileBytes(log_, group2.substr(0, torn));

  WalTailer tailer(dir_, 0, 0);
  ASSERT_OK_AND_ASSIGN(TailBatch batch, tailer.Poll());
  // The complete prefix is delivered; the torn bytes are reported as lag,
  // classified retryable — NOT as corruption or data loss.
  EXPECT_EQ(batch.outcome, TailOutcome::kProgress);
  ASSERT_EQ(batch.records.size(), 2u);
  EXPECT_EQ(tailer.offset(), group1.size());
  EXPECT_EQ(batch.lag_bytes, torn);

  // Still torn: poll says retry-later, no records, no duplicated groups.
  ASSERT_OK_AND_ASSIGN(batch, tailer.Poll());
  EXPECT_EQ(batch.outcome, TailOutcome::kRetryLater);
  EXPECT_TRUE(batch.records.empty());
  EXPECT_FALSE(batch.detail.empty());

  // The primary finishes its write: the completed group arrives, exactly
  // once, and the tailer never re-read group 1 — total bytes read are
  // group1 + the torn fragment (twice: poll 1 and poll 2) + the full
  // group2 on poll 3, never 2x group1.
  AppendFileBytes(log_, group2.substr(torn));
  ASSERT_OK_AND_ASSIGN(batch, tailer.Poll());
  EXPECT_EQ(batch.outcome, TailOutcome::kProgress);
  ASSERT_EQ(batch.records.size(), 2u);
  EXPECT_EQ(batch.records[0].lsn, 3u);
  EXPECT_EQ(batch.records[1].lsn, 4u);
  EXPECT_EQ(batch.lag_bytes, 0u);
  EXPECT_EQ(tailer.offset(), group1.size() + group2.size());
  EXPECT_EQ(tailer.bytes_read(),
            group1.size() + torn + torn + group2.size());
}

TEST_F(TailerTest, ShrunkenLogIsRotation) {
  AppendFileBytes(log_, EncodeGroup(1, 1));
  WalTailer tailer(dir_, 0, 0);
  ASSERT_OK_AND_ASSIGN(TailBatch batch, tailer.Poll());
  ASSERT_EQ(batch.outcome, TailOutcome::kProgress);

  // A checkpoint truncated the log (StartNewLog): size < resume offset.
  TruncateFile(log_, 0);
  ASSERT_OK_AND_ASSIGN(batch, tailer.Poll());
  EXPECT_EQ(batch.outcome, TailOutcome::kRotated);

  // Re-anchored at the top of the fresh log, tailing resumes — and the
  // LSN seed still enforces monotonicity across the rotation.
  AppendFileBytes(log_, EncodeGroup(3, 2));
  tailer.Reposition(0, 2);
  ASSERT_OK_AND_ASSIGN(batch, tailer.Poll());
  EXPECT_EQ(batch.outcome, TailOutcome::kProgress);
  ASSERT_EQ(batch.records.size(), 2u);
  EXPECT_EQ(batch.records[0].lsn, 3u);
}

TEST_F(TailerTest, MidLogCorruptionIsDataLoss) {
  std::string bytes = EncodeGroup(1, 1) + EncodeGroup(3, 2);
  bytes[12] ^= 0x40;  // damage group 1's payload, valid data after it
  AppendFileBytes(log_, bytes);
  WalTailer tailer(dir_, 0, 0);
  Result<TailBatch> polled = tailer.Poll();
  ASSERT_FALSE(polled.ok());
  EXPECT_EQ(polled.status().code(), StatusCode::kDataLoss);
}

TEST_F(TailerTest, LsnRegressionAcrossSeamIsCaught) {
  // A stale tailer whose seed LSN is beyond the records it reads (the
  // "log was rotated underneath us at the same offset" shape) must not
  // silently deliver old LSNs again.
  AppendFileBytes(log_, EncodeGroup(5, 3));
  WalTailer tailer(dir_, 0, 100);
  Result<TailBatch> polled = tailer.Poll();
  ASSERT_FALSE(polled.ok());
  EXPECT_EQ(polled.status().code(), StatusCode::kDataLoss);
}

TEST_F(TailerTest, ReadFailpointSurfacesAsUnavailable) {
  AppendFileBytes(log_, EncodeGroup(1, 1));
  FailpointRegistry::Trigger trigger;
  trigger.mode = FailpointRegistry::Mode::kOnce;
  trigger.code = StatusCode::kUnavailable;
  FailpointRegistry::Instance().Arm("repl.tail.read", trigger);

  WalTailer tailer(dir_, 0, 0);
  Result<TailBatch> polled = tailer.Poll();
  ASSERT_FALSE(polled.ok());
  EXPECT_EQ(polled.status().code(), StatusCode::kUnavailable);
  // Retry succeeds and nothing was consumed by the failed attempt.
  ASSERT_OK_AND_ASSIGN(TailBatch batch, tailer.Poll());
  EXPECT_EQ(batch.outcome, TailOutcome::kProgress);
  EXPECT_EQ(batch.records.size(), 2u);
}

// --- Incremental-scan contract (wal/wal_format.h ScanOptions) ---

TEST_F(TailerTest, ResumedScanEqualsFullScan) {
  // Any split point that lands on a record boundary must make
  // (prefix scan) + (resumed scan) equal the full scan, record for
  // record, offset for offset.
  std::string bytes;
  bytes += EncodeDdl(1, "create table t (a int)");
  bytes += EncodeGroup(2, 1);
  bytes += EncodeGroup(4, 2);
  bytes += EncodeDdl(6, "create table u (b int)");
  AppendFileBytes(log_, bytes);

  ASSERT_OK_AND_ASSIGN(wal::ScanResult full, wal::ScanLogFile(log_));
  ASSERT_EQ(full.end, wal::ScanEnd::kClean);
  ASSERT_EQ(full.records.size(), 6u);

  for (size_t split = 1; split < full.records.size(); ++split) {
    SCOPED_TRACE("split=" + std::to_string(split));
    const uint64_t boundary = split < full.records.size()
                                  ? full.records[split].offset
                                  : full.valid_bytes;
    wal::ScanResult prefix =
        wal::ScanLogImage(std::string_view(bytes).substr(0, boundary));
    ASSERT_EQ(prefix.records.size(), split);

    wal::ScanOptions opts;
    opts.start_offset = prefix.valid_bytes;
    opts.last_lsn = prefix.records.back().lsn;
    ASSERT_OK_AND_ASSIGN(wal::ScanResult rest,
                         wal::ScanLogFile(log_, opts));
    ASSERT_EQ(prefix.records.size() + rest.records.size(),
              full.records.size());
    EXPECT_EQ(rest.valid_bytes, full.valid_bytes);
    EXPECT_EQ(rest.end, wal::ScanEnd::kClean);
    for (size_t i = 0; i < rest.records.size(); ++i) {
      const wal::WalRecord& got = rest.records[i];
      const wal::WalRecord& want = full.records[split + i];
      EXPECT_EQ(got.lsn, want.lsn);
      EXPECT_EQ(got.type, want.type);
      EXPECT_EQ(got.offset, want.offset);
      EXPECT_EQ(got.txn_id, want.txn_id);
      EXPECT_EQ(got.sql, want.sql);
    }
  }
}

TEST_F(TailerTest, ScanOffsetPastEofIsInvalidArgument) {
  AppendFileBytes(log_, EncodeGroup(1, 1));
  wal::ScanOptions opts;
  opts.start_offset = 1u << 20;
  Result<wal::ScanResult> scanned = wal::ScanLogFile(log_, opts);
  ASSERT_FALSE(scanned.ok());
  EXPECT_EQ(scanned.status().code(), StatusCode::kInvalidArgument);
}

// --- Backoff (common/retry.h) ---

TEST(BackoffTest, DeterministicBoundedAndMonotoneToTheCap) {
  RetryPolicy policy;
  policy.initial_delay = std::chrono::microseconds(100);
  policy.max_delay = std::chrono::microseconds(1600);
  policy.multiplier = 2.0;
  policy.jitter = 0.25;
  policy.max_attempts = 0;

  Backoff a(policy, /*seed=*/7);
  Backoff b(policy, /*seed=*/7);
  std::vector<int64_t> delays;
  for (int i = 0; i < 12; ++i) {
    auto da = a.NextDelay();
    auto db = b.NextDelay();
    EXPECT_EQ(da.count(), db.count()) << "same seed must be deterministic";
    delays.push_back(da.count());
    // Every delay stays inside the jitter envelope of the capped base.
    const double base = std::min<double>(100.0 * (1 << i), 1600.0);
    EXPECT_GE(da.count(), static_cast<int64_t>(base * 0.75) - 1);
    EXPECT_LE(da.count(), static_cast<int64_t>(base * 1.25) + 1);
  }
  // Late delays hover at the cap — exponential growth stopped.
  EXPECT_LE(delays.back(), 2000);
  EXPECT_GE(delays.back(), 1200);

  a.Reset();
  EXPECT_EQ(a.attempts(), 0u);
  auto first_again = a.NextDelay();
  EXPECT_GE(first_again.count(), 74);
  EXPECT_LE(first_again.count(), 126);
}

TEST(BackoffTest, MaxAttemptsBoundsShouldRetry) {
  RetryPolicy policy;
  policy.initial_delay = std::chrono::microseconds(1);
  policy.max_delay = std::chrono::microseconds(2);
  policy.max_attempts = 3;
  Backoff backoff(policy);
  int retries = 0;
  while (backoff.ShouldRetry()) {
    backoff.NextDelay();
    ++retries;
    ASSERT_LE(retries, 10);
  }
  EXPECT_EQ(retries, 3);
}

TEST(BackoffTest, RetryWithBackoffRetriesOnlyUnavailable) {
  RetryPolicy policy;
  policy.initial_delay = std::chrono::microseconds(1);
  policy.max_delay = std::chrono::microseconds(2);
  policy.max_attempts = 10;

  Backoff backoff(policy);
  int calls = 0;
  Status ok = RetryWithBackoff(&backoff, [&calls]() -> Status {
    ++calls;
    if (calls < 4) return Status::Unavailable("not yet");
    return Status::OK();
  });
  EXPECT_OK(ok);
  EXPECT_EQ(calls, 4);

  Backoff backoff2(policy);
  calls = 0;
  Status failed = RetryWithBackoff(&backoff2, [&calls]() -> Status {
    ++calls;
    return Status::DataLoss("permanent");
  });
  EXPECT_EQ(failed.code(), StatusCode::kDataLoss);
  EXPECT_EQ(calls, 1) << "non-transient failures must not be retried";
}

}  // namespace
}  // namespace replication
}  // namespace sopr
