// Group-commit pipeline tests (docs/CONCURRENCY.md): staged tickets,
// cohort formation/stats, and the poison matrix — most importantly the
// fsync-failure case with several committers queued, where the leader's
// one failed fsync must fail EVERY follower's ticket (a follower that
// reported success for a batch the leader never made durable would be a
// lost commit).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "test_util.h"
#include "types/value.h"
#include "wal/wal_writer.h"

namespace sopr {
namespace wal {
namespace {

Row SampleRow() {
  return Row({Value::String("Jane"), Value::Int(10)});
}

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sopr_group_commit_test_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

class GroupCommitTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisarmAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

// Stages `n` transactions back to back (the serialized commit section
// admits them one at a time; none awaits yet, so they pile up in the
// staging queue). Returns the tickets.
std::vector<CommitTicketPtr> StageN(WalWriter* writer, int n,
                                    uint64_t first_handle) {
  std::vector<CommitTicketPtr> tickets;
  for (int i = 0; i < n; ++i) {
    writer->BeginTxn();
    EXPECT_OK(writer->RedoInsert(0, "emp", first_handle + i, SampleRow()));
    auto staged = writer->StageCommitTxn(first_handle + i + 1);
    EXPECT_TRUE(staged.ok()) << staged.status();
    if (staged.ok()) tickets.push_back(staged.value());
  }
  return tickets;
}

TEST_F(GroupCommitTest, StagedTicketResolvesOnAwait) {
  WalWriter writer(WalFsyncPolicy::kOff);
  ASSERT_OK(writer.Open(MakeTempDir(), 1, 1));

  writer.BeginTxn();
  ASSERT_OK(writer.RedoInsert(0, "emp", 1, SampleRow()));
  ASSERT_OK_AND_ASSIGN(CommitTicketPtr ticket, writer.StageCommitTxn(2));
  ASSERT_NE(ticket, nullptr);
  EXPECT_FALSE(writer.in_txn()) << "staging ends the transaction";
  // Nothing is durable until someone leads the cohort.
  EXPECT_EQ(writer.durable_lsn(), 0u);

  ASSERT_OK(writer.AwaitDurable(ticket));
  EXPECT_TRUE(ticket->done);
  EXPECT_EQ(ticket->last_lsn, 3u);  // BEGIN(1) INSERT(2) COMMIT(3)
  EXPECT_EQ(writer.durable_lsn(), 3u);
  writer.Close();
}

TEST_F(GroupCommitTest, ReadOnlyStageReturnsNullTicket) {
  WalWriter writer(WalFsyncPolicy::kOff);
  ASSERT_OK(writer.Open(MakeTempDir(), 1, 1));
  writer.BeginTxn();
  ASSERT_OK_AND_ASSIGN(CommitTicketPtr ticket, writer.StageCommitTxn(1));
  EXPECT_EQ(ticket, nullptr);
  ASSERT_OK(writer.AwaitDurable(ticket));  // null ticket: trivially durable
  EXPECT_EQ(writer.durable_lsn(), 0u);
  writer.Close();
}

TEST_F(GroupCommitTest, QueuedBatchesFormOneCohort) {
  WalWriter writer(WalFsyncPolicy::kCommit);
  ASSERT_OK(writer.Open(MakeTempDir(), 1, 1));

  std::vector<CommitTicketPtr> tickets = StageN(&writer, 3, 1);
  ASSERT_EQ(tickets.size(), 3u);

  // The first awaiter becomes leader and drains ALL three batches with
  // one write + one fsync.
  ASSERT_OK(writer.AwaitDurable(tickets[0]));
  for (const CommitTicketPtr& t : tickets) {
    EXPECT_TRUE(t->done);
    EXPECT_OK(t->status);
    ASSERT_OK(writer.AwaitDurable(t));  // already-resolved: returns status
  }
  const GroupCommitStats stats = writer.group_stats();
  EXPECT_EQ(stats.cohorts, 1u);
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_EQ(stats.largest_cohort, 3u);
  EXPECT_EQ(stats.cohort_size_hist[3], 1u);
  EXPECT_EQ(writer.durable_lsn(), 9u);  // 3 txns x (BEGIN+INSERT+COMMIT)
  writer.Close();
}

TEST_F(GroupCommitTest, FlushDrainsTheQueue) {
  WalWriter writer(WalFsyncPolicy::kOff);
  ASSERT_OK(writer.Open(MakeTempDir(), 1, 1));
  std::vector<CommitTicketPtr> tickets = StageN(&writer, 2, 1);
  ASSERT_OK(writer.Flush());
  for (const CommitTicketPtr& t : tickets) {
    EXPECT_TRUE(t->done);
    EXPECT_OK(t->status);
  }
  EXPECT_EQ(writer.group_stats().batches, 2u);
  writer.Close();
}

// --- The fsync-failure poison matrix -------------------------------------

// Satellite: leader's failed fsync fails every queued committer. Three
// transactions stage; wal.sync is armed to fail once; the single cohort
// leader's fsync failure must resolve all three tickets with the error
// and poison the writer for good.
TEST_F(GroupCommitTest, FailedFsyncFailsWholeCohortDeterministic) {
  WalWriter writer(WalFsyncPolicy::kCommit);
  ASSERT_OK(writer.Open(MakeTempDir(), 1, 1));

  std::vector<CommitTicketPtr> tickets = StageN(&writer, 3, 1);
  FailpointRegistry::Instance().Arm(
      "wal.sync", {FailpointRegistry::Mode::kOnce});

  EXPECT_FALSE(writer.AwaitDurable(tickets[0]).ok());
  for (const CommitTicketPtr& t : tickets) {
    EXPECT_TRUE(t->done);
    EXPECT_FALSE(t->status.ok())
        << "a follower must not report durability the leader lost";
    EXPECT_FALSE(writer.AwaitDurable(t).ok());
  }
  // Sticky poison: the writer refuses new work.
  EXPECT_FALSE(writer.poison_status().ok());
  writer.BeginTxn();
  EXPECT_FALSE(writer.RedoInsert(0, "emp", 9, SampleRow()).ok());
  EXPECT_FALSE(writer.StageCommitTxn(10).ok());
  EXPECT_EQ(writer.durable_lsn(), 0u) << "nothing in the cohort is durable";
  writer.Close();
}

// Same property driven by real concurrency: committers on their own
// threads, staging serialized (as the commit scheduler does), awaiting
// in parallel. Whoever ends up leading, no thread may see success.
TEST_F(GroupCommitTest, FailedFsyncFailsWholeCohortThreaded) {
  WalWriter writer(WalFsyncPolicy::kCommit);
  ASSERT_OK(writer.Open(MakeTempDir(), 1, 1));

  FailpointRegistry::Instance().Arm(
      "wal.sync", {FailpointRegistry::Mode::kAlways});

  constexpr int kThreads = 4;
  std::mutex commit_section;
  std::atomic<int> successes{0}, failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      CommitTicketPtr ticket;
      {
        std::lock_guard<std::mutex> lock(commit_section);
        writer.BeginTxn();
        if (!writer.RedoInsert(0, "emp", 100 + i, SampleRow()).ok()) {
          writer.AbortTxn();
          failures.fetch_add(1);  // poisoned before this txn staged
          return;
        }
        auto staged = writer.StageCommitTxn(100 + i + 1);
        if (!staged.ok()) {
          writer.AbortTxn();
          failures.fetch_add(1);
          return;
        }
        ticket = staged.value();
      }
      if (writer.AwaitDurable(ticket).ok()) {
        successes.fetch_add(1);
      } else {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(successes.load(), 0) << "an fsync never succeeded, so no "
                                    "transaction may claim durability";
  EXPECT_EQ(failures.load(), kThreads);
  EXPECT_FALSE(writer.poison_status().ok());
  writer.Close();
}

// A failed batch WRITE for a cohort of one stays recoverable: the tail is
// scrubbed, the ticket fails, the writer is NOT poisoned (the one caller
// still holds its undo and rolls back).
TEST_F(GroupCommitTest, SingleBatchWriteFailureDoesNotPoison) {
  WalWriter writer(WalFsyncPolicy::kOff);
  ASSERT_OK(writer.Open(MakeTempDir(), 1, 1));

  writer.BeginTxn();
  ASSERT_OK(writer.RedoInsert(0, "emp", 1, SampleRow()));
  ASSERT_OK_AND_ASSIGN(CommitTicketPtr ticket, writer.StageCommitTxn(2));
  FailpointRegistry::Instance().Arm(
      "wal.write.mid", {FailpointRegistry::Mode::kOnce});
  EXPECT_FALSE(writer.AwaitDurable(ticket).ok());

  EXPECT_OK(writer.poison_status());
  // The writer stays usable and the next commit lands cleanly.
  writer.BeginTxn();
  ASSERT_OK(writer.RedoInsert(0, "emp", 2, SampleRow()));
  ASSERT_OK(writer.CommitTxn(3));
  EXPECT_GT(writer.durable_lsn(), 0u);
  writer.Close();
}

// A failed write for a cohort of SEVERAL batches poisons: those sessions
// already committed in memory and cannot be individually rolled back.
TEST_F(GroupCommitTest, MultiBatchWriteFailurePoisons) {
  WalWriter writer(WalFsyncPolicy::kOff);
  ASSERT_OK(writer.Open(MakeTempDir(), 1, 1));

  std::vector<CommitTicketPtr> tickets = StageN(&writer, 3, 1);
  FailpointRegistry::Instance().Arm(
      "wal.write.mid", {FailpointRegistry::Mode::kOnce});
  EXPECT_FALSE(writer.AwaitDurable(tickets[0]).ok());
  for (const CommitTicketPtr& t : tickets) {
    EXPECT_TRUE(t->done);
    EXPECT_FALSE(t->status.ok());
  }
  EXPECT_FALSE(writer.poison_status().ok());
  writer.Close();
}

// Concurrent committers against a healthy writer: every ticket resolves
// OK, LSNs stay dense, and the cohort accounting adds up.
TEST_F(GroupCommitTest, ConcurrentCommittersAllDurable) {
  WalWriter writer(WalFsyncPolicy::kCommit);
  ASSERT_OK(writer.Open(MakeTempDir(), 1, 1));

  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 25;
  std::mutex commit_section;
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int j = 0; j < kTxnsPerThread; ++j) {
        CommitTicketPtr ticket;
        {
          std::lock_guard<std::mutex> lock(commit_section);
          writer.BeginTxn();
          ASSERT_OK(writer.RedoInsert(
              0, "emp", static_cast<TupleHandle>(i * 1000 + j), SampleRow()));
          auto staged =
              writer.StageCommitTxn(static_cast<TupleHandle>(i * 1000 + j + 1));
          ASSERT_OK(staged.status());
          ticket = staged.value();
        }
        ASSERT_OK(writer.AwaitDurable(ticket));
        committed.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(committed.load(), kThreads * kTxnsPerThread);
  const GroupCommitStats stats = writer.group_stats();
  EXPECT_EQ(stats.batches, static_cast<uint64_t>(kThreads * kTxnsPerThread));
  EXPECT_LE(stats.cohorts, stats.batches);
  EXPECT_GE(stats.largest_cohort, 1u);
  // Every transaction wrote BEGIN + INSERT + COMMIT = 3 records.
  EXPECT_EQ(writer.durable_lsn(),
            static_cast<uint64_t>(kThreads * kTxnsPerThread * 3));
  writer.Close();
}

}  // namespace
}  // namespace wal
}  // namespace sopr
