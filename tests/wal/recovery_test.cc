// Restart recovery: an Engine::Open on a WAL directory must rebuild
// exactly the committed state — catalog, heaps, indexes, rule set — and
// refuse to guess when the log is damaged anywhere but its tail.

#include "wal/recovery.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "common/failpoint.h"
#include "engine/engine.h"
#include "test_util.h"
#include "wal/wal_format.h"
#include "wal/wal_writer.h"

namespace sopr {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sopr_recovery_test_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

RuleEngineOptions DurableOptions(const std::string& dir) {
  RuleEngineOptions options;
  options.wal_dir = dir;
  options.wal_fsync = WalFsyncPolicy::kOff;  // unit tests never kill -9
  return options;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisarmAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

TEST_F(RecoveryTest, FreshDirectoryAndEmptyLog) {
  std::string dir = MakeTempDir();
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                         Engine::Open(DurableOptions(dir)));
    EXPECT_TRUE(engine->durable());
  }
  // Zero transactions ever ran; reopening the now-existing empty log must
  // be byte-for-byte boring.
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                       Engine::Open(DurableOptions(dir)));
  EXPECT_TRUE(engine->durable());
  EXPECT_TRUE(engine->db().catalog().TableNames().empty());
}

TEST_F(RecoveryTest, EmptyWalDirMeansInMemory) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                       Engine::Open(RuleEngineOptions{}));
  EXPECT_FALSE(engine->durable());
  ASSERT_OK(engine->Execute("create table t (a int)"));
}

TEST_F(RecoveryTest, DdlOnlyRestart) {
  std::string dir = MakeTempDir();
  uint64_t checksum = 0;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                         Engine::Open(DurableOptions(dir)));
    CreatePaperSchema(engine.get());
    ASSERT_OK(engine->Execute("create index on emp (dept_no)"));
    checksum = engine->StateChecksum();
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                       Engine::Open(DurableOptions(dir)));
  EXPECT_EQ(engine->StateChecksum(), checksum);
  ASSERT_OK_AND_ASSIGN(const Table* emp, engine->db().GetTable("emp"));
  EXPECT_EQ(emp->num_indexes(), 1u);
}

TEST_F(RecoveryTest, CommittedDataSurvivesRestart) {
  std::string dir = MakeTempDir();
  uint64_t checksum = 0;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                         Engine::Open(DurableOptions(dir)));
    CreatePaperSchema(engine.get());
    LoadOrgChart(engine.get());
    ASSERT_OK(engine->Execute(
        "update emp set salary = 91000 where name = 'Jane'"));
    ASSERT_OK(engine->Execute("delete from emp where name = 'Bill'"));
    checksum = engine->StateChecksum();
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                       Engine::Open(DurableOptions(dir)));
  EXPECT_EQ(engine->StateChecksum(), checksum);
  EXPECT_OK(engine->CheckInvariants());
  EXPECT_EQ(QueryScalar(engine.get(),
                        "select salary from emp where name = 'Jane'"),
            Value::Double(91000));
  EXPECT_EQ(QueryScalar(engine.get(), "select count(*) from emp"),
            Value::Int(5));
}

TEST_F(RecoveryTest, RolledBackTransactionLeavesNoTrace) {
  std::string dir = MakeTempDir();
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                         Engine::Open(DurableOptions(dir)));
    CreatePaperSchema(engine.get());
    LoadOrgChart(engine.get());
    ASSERT_OK(engine->Begin());
    ASSERT_OK(engine->Run("insert into emp values ('Eve', 99, 1.0, 0)"));
    ASSERT_OK(engine->Rollback());
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                       Engine::Open(DurableOptions(dir)));
  EXPECT_EQ(QueryScalar(engine.get(), "select count(*) from emp"),
            Value::Int(6));
}

TEST_F(RecoveryTest, RulesReplayAndFireAfterRestart) {
  std::string dir = MakeTempDir();
  uint64_t checksum = 0;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                         Engine::Open(DurableOptions(dir)));
    CreatePaperSchema(engine.get());
    LoadOrgChart(engine.get());
    ASSERT_OK(engine->Execute(
        "create rule cascade when deleted from dept "
        "then delete from emp where dept_no in "
        "(select dept_no from deleted dept)"));
    ASSERT_OK(engine->Execute(
        "create rule off when inserted into dept then delete from dept "
        "where dept_no = -1"));
    ASSERT_OK(engine->Execute("deactivate rule off"));
    ASSERT_OK(engine->Execute("create rule priority cascade before off"));
    // The rule already fired once pre-restart; its effects are logged as
    // plain mutations.
    ASSERT_OK(engine->Execute("delete from dept where dept_no = 2"));
    checksum = engine->StateChecksum();
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                       Engine::Open(DurableOptions(dir)));
  EXPECT_EQ(engine->StateChecksum(), checksum);
  EXPECT_EQ(engine->rules().num_rules(), 2u);
  EXPECT_TRUE(engine->rules().priorities().Higher("cascade", "off"));
  ASSERT_OK_AND_ASSIGN(bool off_enabled, engine->rules().IsRuleEnabled("off"));
  EXPECT_FALSE(off_enabled);
  // Recovery replayed the pre-restart firing's effect exactly once.
  EXPECT_EQ(QueryScalar(engine.get(),
                        "select count(*) from emp where dept_no = 2"),
            Value::Int(0));
  // And the recovered rule fires on a fresh post-restart transition.
  ASSERT_OK(engine->Execute("delete from dept where dept_no = 3"));
  EXPECT_EQ(QueryScalar(engine.get(),
                        "select count(*) from emp where dept_no = 3"),
            Value::Int(0));
}

TEST_F(RecoveryTest, TornTailIsTruncatedAndCommittedPrefixKept) {
  std::string dir = MakeTempDir();
  uint64_t checksum = 0;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                         Engine::Open(DurableOptions(dir)));
    CreatePaperSchema(engine.get());
    LoadOrgChart(engine.get());
    checksum = engine->StateChecksum();
  }
  // Fake an interrupted append: a header claiming more payload than the
  // file holds.
  const std::string log_path = wal::WalWriter::LogPath(dir);
  std::string bytes = ReadFileBytes(log_path);
  const uint64_t committed = bytes.size();
  bytes += std::string("\x40\x00\x00\x00", 4);  // len = 64
  bytes += "torn";
  WriteFileBytes(log_path, bytes);

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                       Engine::Open(DurableOptions(dir)));
  EXPECT_EQ(engine->StateChecksum(), checksum);
  // The tail is gone from disk, not just skipped.
  EXPECT_EQ(ReadFileBytes(log_path).size(), committed);
}

TEST_F(RecoveryTest, MidLogCorruptionIsAHardError) {
  std::string dir = MakeTempDir();
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                         Engine::Open(DurableOptions(dir)));
    CreatePaperSchema(engine.get());
    LoadOrgChart(engine.get());
  }
  const std::string log_path = wal::WalWriter::LogPath(dir);
  std::string bytes = ReadFileBytes(log_path);
  const uint64_t original_size = bytes.size();
  ASSERT_GT(bytes.size(), wal::kHeaderSize + 1);
  bytes[wal::kHeaderSize] ^= 0x01;  // first record's payload, data after
  WriteFileBytes(log_path, bytes);

  Result<std::unique_ptr<Engine>> reopened =
      Engine::Open(DurableOptions(dir));
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss);
  // No silent truncation: the damaged log is left for forensics.
  EXPECT_EQ(ReadFileBytes(log_path).size(), original_size);
}

TEST_F(RecoveryTest, CheckpointBoundsReplayAndTailReplays) {
  std::string dir = MakeTempDir();
  uint64_t checksum = 0;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                         Engine::Open(DurableOptions(dir)));
    CreatePaperSchema(engine.get());
    LoadOrgChart(engine.get());
    ASSERT_OK(engine->Execute(
        "create rule cascade when deleted from dept "
        "then delete from emp where dept_no in "
        "(select dept_no from deleted dept)"));
    ASSERT_OK(engine->Checkpoint());
    // Post-checkpoint tail: must replay on top of the snapshot.
    ASSERT_OK(engine->Execute("insert into emp values ('Zed', 70, 100.0, 1)"));
    ASSERT_OK(engine->Execute("delete from dept where dept_no = 3"));
    checksum = engine->StateChecksum();
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                       Engine::Open(DurableOptions(dir)));
  EXPECT_EQ(engine->StateChecksum(), checksum);
  EXPECT_EQ(QueryScalar(engine.get(),
                        "select count(*) from emp where name = 'Zed'"),
            Value::Int(1));
  EXPECT_EQ(QueryScalar(engine.get(),
                        "select count(*) from emp where dept_no = 3"),
            Value::Int(0));
  // And the snapshot bounded replay: the main log starts after it.
  ASSERT_OK_AND_ASSIGN(wal::ScanResult log_scan,
                       wal::ScanLogFile(wal::WalWriter::LogPath(dir)));
  EXPECT_LE(log_scan.records.size(), 8u);  // two small txns, not the world
}

TEST_F(RecoveryTest, CheckpointInterruptedBeforeTruncateIsIdempotent) {
  std::string dir = MakeTempDir();
  uint64_t checksum = 0;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                         Engine::Open(DurableOptions(dir)));
    CreatePaperSchema(engine.get());
    LoadOrgChart(engine.get());
    // The snapshot installs but the old log is never truncated: recovery
    // must skip the stale records (lsn <= covers_lsn) instead of applying
    // them twice on top of the snapshot.
    FailpointRegistry::Trigger once;
    once.mode = FailpointRegistry::Mode::kOnce;
    FailpointRegistry::Instance().Arm("wal.checkpoint.truncate", once);
    EXPECT_FALSE(engine->Checkpoint().ok());
    checksum = engine->StateChecksum();
  }
  ASSERT_OK_AND_ASSIGN(wal::ScanResult stale_log,
                       wal::ScanLogFile(wal::WalWriter::LogPath(dir)));
  ASSERT_FALSE(stale_log.records.empty());  // the untruncated old log

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                       Engine::Open(DurableOptions(dir)));
  EXPECT_EQ(engine->StateChecksum(), checksum);
  EXPECT_EQ(QueryScalar(engine.get(), "select count(*) from emp"),
            Value::Int(6));
}

TEST_F(RecoveryTest, LeftoverSnapshotTmpIsDiscarded) {
  std::string dir = MakeTempDir();
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                         Engine::Open(DurableOptions(dir)));
    CreatePaperSchema(engine.get());
  }
  // An interrupted checkpoint that never renamed into place.
  WriteFileBytes(wal::WalWriter::SnapshotTmpPath(dir), "half a snapshot");
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                       Engine::Open(DurableOptions(dir)));
  std::ifstream tmp(wal::WalWriter::SnapshotTmpPath(dir));
  EXPECT_FALSE(tmp.good());
}

TEST_F(RecoveryTest, DamagedSnapshotIsAHardError) {
  std::string dir = MakeTempDir();
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                         Engine::Open(DurableOptions(dir)));
    CreatePaperSchema(engine.get());
    LoadOrgChart(engine.get());
    ASSERT_OK(engine->Checkpoint());
  }
  const std::string snap_path = wal::WalWriter::SnapshotPath(dir);
  std::string bytes = ReadFileBytes(snap_path);
  bytes[wal::kHeaderSize] ^= 0x01;
  WriteFileBytes(snap_path, bytes);

  Result<std::unique_ptr<Engine>> reopened =
      Engine::Open(DurableOptions(dir));
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss);
}

TEST_F(RecoveryTest, TupleHandlesNeverCollideAcrossRestarts) {
  std::string dir = MakeTempDir();
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                         Engine::Open(DurableOptions(dir)));
    ASSERT_OK(engine->Execute("create table t (a int)"));
    ASSERT_OK(engine->Execute("insert into t values (1)"));
  }
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                         Engine::Open(DurableOptions(dir)));
    ASSERT_OK(engine->Execute("insert into t values (2)"));
    EXPECT_EQ(QueryScalar(engine.get(), "select count(*) from t"),
              Value::Int(2));
  }
  // A handle collision would surface here as a redo conflict (DataLoss).
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                       Engine::Open(DurableOptions(dir)));
  EXPECT_EQ(QueryScalar(engine.get(), "select count(*) from t"),
            Value::Int(2));
  EXPECT_EQ(QueryScalar(engine.get(), "select sum(a) from t"), Value::Int(3));
}

TEST_F(RecoveryTest, FailedRecoveryIsRepeatable) {
  std::string dir = MakeTempDir();
  uint64_t checksum = 0;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                         Engine::Open(DurableOptions(dir)));
    CreatePaperSchema(engine.get());
    LoadOrgChart(engine.get());
    checksum = engine->StateChecksum();
  }
  // Recovery dies mid-replay (e.g. the process crashes again); the log
  // was not modified, so the next attempt succeeds in full.
  FailpointRegistry::Trigger nth;
  nth.mode = FailpointRegistry::Mode::kNth;
  nth.n = 3;
  FailpointRegistry::Instance().Arm("wal.recover.replay", nth);
  EXPECT_FALSE(Engine::Open(DurableOptions(dir)).ok());
  FailpointRegistry::Instance().DisarmAll();

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                       Engine::Open(DurableOptions(dir)));
  EXPECT_EQ(engine->StateChecksum(), checksum);
}

TEST_F(RecoveryTest, AutomaticCheckpointInterval) {
  std::string dir = MakeTempDir();
  RuleEngineOptions options = DurableOptions(dir);
  options.wal_checkpoint_interval = 2;
  uint64_t checksum = 0;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                         Engine::Open(options));
    ASSERT_OK(engine->Execute("create table t (a int)"));
    for (int i = 0; i < 5; ++i) {
      ASSERT_OK(engine->Execute("insert into t values (" +
                                std::to_string(i) + ")"));
    }
    checksum = engine->StateChecksum();
  }
  // The interval fired at least once: a snapshot exists.
  std::ifstream snap(wal::WalWriter::SnapshotPath(dir));
  EXPECT_TRUE(snap.good());
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine, Engine::Open(options));
  EXPECT_EQ(engine->StateChecksum(), checksum);
  EXPECT_EQ(QueryScalar(engine.get(), "select count(*) from t"),
            Value::Int(5));
}

// --- Satellite: the state digest actually covers catalog and rule set ---

TEST_F(RecoveryTest, ChecksumCoversCatalogNotJustRows) {
  Engine a;
  Engine b;
  ASSERT_OK(a.Execute("create table t (a int)"));
  ASSERT_OK(b.Execute("create table t (a string)"));  // same name, no rows
  EXPECT_NE(a.StateChecksum(), b.StateChecksum());
  ASSERT_OK(b.Execute("drop table t"));
  ASSERT_OK(b.Execute("create table t (a int)"));
  EXPECT_EQ(a.StateChecksum(), b.StateChecksum());
  // Indexes are catalog state too.
  ASSERT_OK(a.Execute("create index on t (a)"));
  EXPECT_NE(a.StateChecksum(), b.StateChecksum());
}

TEST_F(RecoveryTest, ChecksumCoversRuleSetAndActivation) {
  Engine a;
  Engine b;
  for (Engine* e : {&a, &b}) {
    ASSERT_OK(e->Execute("create table t (a int)"));
    ASSERT_OK(e->Execute(
        "create rule watch when inserted into t then delete from t "
        "where a = -1"));
  }
  EXPECT_EQ(a.StateChecksum(), b.StateChecksum());
  ASSERT_OK(a.Execute("deactivate rule watch"));
  EXPECT_NE(a.StateChecksum(), b.StateChecksum());
  ASSERT_OK(a.Execute("activate rule watch"));
  EXPECT_EQ(a.StateChecksum(), b.StateChecksum());
  ASSERT_OK(a.Execute("drop rule watch"));
  EXPECT_NE(a.StateChecksum(), b.StateChecksum());
}

TEST_F(RecoveryTest, InvariantsCatchCatalogHeapDisagreement) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (a int)"));
  EXPECT_OK(engine.CheckInvariants());
}

// --- Incremental resume + read-only bootstrap (docs/REPLICATION.md) ---

TEST_F(RecoveryTest, RecoveryStatsExposeTheIncrementalResumePoint) {
  std::string dir = MakeTempDir();
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                         Engine::Open(DurableOptions(dir)));
    CreatePaperSchema(engine.get());
    LoadOrgChart(engine.get());
  }
  ASSERT_OK_AND_ASSIGN(wal::ScanResult scan,
                       wal::ScanLogFile(wal::WalWriter::LogPath(dir)));
  ASSERT_EQ(scan.end, wal::ScanEnd::kClean);
  ASSERT_FALSE(scan.records.empty());

  Engine replica;
  ASSERT_OK_AND_ASSIGN(wal::RecoveryStats stats,
                       wal::RecoverDatabase(dir, &replica));
  // The resume point continues exactly where the full scan ended: a
  // tailer starting there with the stats' LSN seed reads nothing old.
  EXPECT_EQ(stats.resume_offset, scan.valid_bytes);
  EXPECT_EQ(stats.resume_lsn, scan.records.back().lsn);
  EXPECT_EQ(stats.applied_lsn, scan.records.back().lsn);
  EXPECT_EQ(stats.next_lsn, scan.records.back().lsn + 1);

  wal::ScanOptions opts;
  opts.start_offset = stats.resume_offset;
  opts.last_lsn = stats.resume_lsn;
  ASSERT_OK_AND_ASSIGN(wal::ScanResult resumed,
                       wal::ScanLogFile(wal::WalWriter::LogPath(dir), opts));
  EXPECT_TRUE(resumed.records.empty());
  EXPECT_EQ(resumed.end, wal::ScanEnd::kClean);
}

TEST_F(RecoveryTest, ReadOnlyRecoveryLeavesTheTornTailOnDisk) {
  // Follower bootstrap must not clean up after a LIVE primary: same torn
  // tail as TornTailIsTruncatedAndCommittedPrefixKept, but the read-only
  // recovery leaves every byte in place and instead reports the resume
  // point just before the tail.
  std::string dir = MakeTempDir();
  uint64_t checksum = 0;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                         Engine::Open(DurableOptions(dir)));
    CreatePaperSchema(engine.get());
    LoadOrgChart(engine.get());
    checksum = engine->StateChecksum();
  }
  const std::string log_path = wal::WalWriter::LogPath(dir);
  std::string bytes = ReadFileBytes(log_path);
  const uint64_t committed = bytes.size();
  bytes += std::string("\x40\x00\x00\x00", 4);  // len = 64
  bytes += "torn";
  WriteFileBytes(log_path, bytes);

  Engine replica;
  wal::RecoverOptions opts;
  opts.read_only = true;
  ASSERT_OK_AND_ASSIGN(wal::RecoveryStats stats,
                       wal::RecoverDatabase(dir, &replica, opts));
  EXPECT_EQ(replica.StateChecksum(), checksum);
  EXPECT_EQ(stats.resume_offset, committed);
  EXPECT_EQ(stats.truncated_bytes, 0u);
  EXPECT_EQ(ReadFileBytes(log_path).size(), bytes.size())
      << "read-only recovery must not truncate the primary's log";
}

TEST_F(RecoveryTest, ThroughLsnBehindTheCheckpointNamesItsCoversLsn) {
  std::string dir = MakeTempDir();
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                         Engine::Open(DurableOptions(dir)));
    CreatePaperSchema(engine.get());
    LoadOrgChart(engine.get());
    ASSERT_OK(engine->Checkpoint());
  }
  ASSERT_OK_AND_ASSIGN(wal::ScanResult snap,
                       wal::ScanLogFile(wal::WalWriter::SnapshotPath(dir)));
  ASSERT_FALSE(snap.records.empty());
  const uint64_t covers = snap.records.front().covers_lsn;
  ASSERT_GT(covers, 1u);

  Engine replica;
  wal::RecoverOptions opts;
  opts.through_lsn = covers - 1;  // a prefix the log no longer holds
  Result<wal::RecoveryStats> bounded =
      wal::RecoverDatabase(dir, &replica, opts);
  ASSERT_FALSE(bounded.ok());
  EXPECT_EQ(bounded.status().code(), StatusCode::kInvalidArgument);
  // The message must name the covering checkpoint's covers_lsn so the
  // caller can bootstrap from the snapshot instead of guessing.
  EXPECT_NE(bounded.status().message().find(
                "covers_lsn is " + std::to_string(covers)),
            std::string::npos)
      << bounded.status();
  EXPECT_NE(bounded.status().message().find("bootstrap from the checkpoint"),
            std::string::npos)
      << bounded.status();
}

}  // namespace
}  // namespace sopr
