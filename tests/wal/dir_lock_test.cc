// WAL directory lock (docs/CONCURRENCY.md): the log is single-writer,
// so a second opener of the same wal dir must be rejected with a clear
// error, and the lock must evaporate with its holder.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "common/failpoint.h"
#include "engine/engine.h"
#include "test_util.h"
#include "wal/dir_lock.h"

namespace sopr {
namespace wal {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sopr_dir_lock_test_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

class DirLockTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisarmAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

TEST_F(DirLockTest, AcquireCreatesLockFile) {
  const std::string dir = MakeTempDir();
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<DirLock> lock, DirLock::Acquire(dir));
  struct stat st;
  EXPECT_EQ(::stat((dir + "/LOCK").c_str(), &st), 0);
  EXPECT_EQ(lock->path(), dir + "/LOCK");
}

TEST_F(DirLockTest, SecondAcquireFailsWithClearMessage) {
  const std::string dir = MakeTempDir();
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<DirLock> held, DirLock::Acquire(dir));
  auto second = DirLock::Acquire(dir);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kIoError);
  // The message must tell the operator WHAT is wrong and what to do.
  EXPECT_NE(second.status().message().find("locked by another engine"),
            std::string::npos)
      << second.status();
  EXPECT_NE(second.status().message().find("single-writer"),
            std::string::npos)
      << second.status();
}

TEST_F(DirLockTest, ReleaseOnDestroyAllowsReacquire) {
  const std::string dir = MakeTempDir();
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<DirLock> held, DirLock::Acquire(dir));
    EXPECT_FALSE(DirLock::Acquire(dir).ok());
  }
  // Holder destroyed -> flock released -> directory reusable; the LOCK
  // file itself stays (unlinking would race a concurrent Acquire).
  EXPECT_OK(DirLock::Acquire(dir).status());
  struct stat st;
  EXPECT_EQ(::stat((dir + "/LOCK").c_str(), &st), 0);
}

TEST_F(DirLockTest, EngineOpenHoldsTheLock) {
  const std::string dir = MakeTempDir();
  RuleEngineOptions options;
  options.wal_dir = dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine, Engine::Open(options));

  // A second engine on the same wal dir must be refused...
  auto second = Engine::Open(options);
  ASSERT_FALSE(second.ok());
  EXPECT_NE(second.status().message().find("locked by another engine"),
            std::string::npos)
      << second.status();
  // ...and an independent lock probe must be refused too.
  EXPECT_FALSE(DirLock::Acquire(dir).ok());

  // Closing the engine releases the directory for the next incarnation.
  engine.reset();
  ASSERT_OK(Engine::Open(options).status());
}

TEST_F(DirLockTest, AcquireFailpointFires) {
  const std::string dir = MakeTempDir();
  FailpointRegistry::Instance().Arm(
      "wal.lock.acquire", {FailpointRegistry::Mode::kOnce});
  EXPECT_FALSE(DirLock::Acquire(dir).ok());
  EXPECT_OK(DirLock::Acquire(dir).status());
}

}  // namespace
}  // namespace wal
}  // namespace sopr
