#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/failpoint.h"
#include "test_util.h"
#include "types/value.h"
#include "wal/crc32c.h"
#include "wal/wal_format.h"
#include "wal/wal_writer.h"

namespace sopr {
namespace wal {
namespace {

Row SampleRow() {
  return Row({Value::String("Jane"), Value::Int(10), Value::Double(90000.0),
              Value::Null(), Value::Bool(true)});
}

/// Fresh temp directory per test; never cleaned up on failure so the
/// broken log can be inspected.
std::string MakeTempDir() {
  char tmpl[] = "/tmp/sopr_wal_test_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisarmAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

// ---------------------------------------------------------------------------
// CRC-32C
// ---------------------------------------------------------------------------

TEST_F(WalTest, Crc32cKnownVectors) {
  // The Castagnoli check value and friends (RFC 3720 appendix B.4).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  EXPECT_EQ(Crc32c("a"), 0xC1D04330u);
}

TEST_F(WalTest, Crc32cExtendMatchesOneShot) {
  const std::string data = "set-oriented production rules";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t partial = Crc32c(data.substr(0, split));
    uint32_t extended =
        Crc32cExtend(partial, data.data() + split, data.size() - split);
    EXPECT_EQ(extended, Crc32c(data)) << "split at " << split;
  }
}

// ---------------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------------

void ExpectRoundtrip(const WalRecord& rec) {
  WalRecord out;
  ASSERT_OK(DecodePayload(EncodePayload(rec), &out));
  EXPECT_EQ(out.lsn, rec.lsn);
  EXPECT_EQ(out.type, rec.type);
  EXPECT_EQ(out.txn_id, rec.txn_id);
  EXPECT_EQ(out.next_handle, rec.next_handle);
  EXPECT_EQ(out.covers_lsn, rec.covers_lsn);
  EXPECT_EQ(out.table, rec.table);
  EXPECT_EQ(out.handle, rec.handle);
  EXPECT_TRUE(out.before == rec.before);
  EXPECT_TRUE(out.after == rec.after);
  EXPECT_EQ(out.sql, rec.sql);
}

TEST_F(WalTest, PayloadRoundtripEveryType) {
  Row row = SampleRow();
  Row other({Value::Int(-7)});
  ExpectRoundtrip(WalRecord::Begin(1, 42));
  ExpectRoundtrip(WalRecord::Commit(2, 42, 1000));
  ExpectRoundtrip(WalRecord::Abort(3, 42));
  ExpectRoundtrip(WalRecord::Insert(4, 42, "emp", 17, row));
  ExpectRoundtrip(WalRecord::Delete(5, 42, "emp", 17, row));
  ExpectRoundtrip(WalRecord::Update(6, 42, "emp", 17, row, other));
  ExpectRoundtrip(WalRecord::Ddl(7, "create table emp (name string)"));
  ExpectRoundtrip(WalRecord::SnapshotHeader(8, 6, 18));
}

TEST_F(WalTest, DecodeRejectsDamage) {
  WalRecord out;
  std::string payload = EncodePayload(WalRecord::Insert(4, 42, "emp", 17,
                                                        SampleRow()));
  // Truncation anywhere inside the body must fail, never read past end.
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(DecodePayload(payload.substr(0, len), &out).ok())
        << "truncated to " << len;
  }
  // Trailing garbage is structural damage, not slack.
  EXPECT_FALSE(DecodePayload(payload + "x", &out).ok());
  // Unknown record type tag.
  std::string bad_type = payload;
  bad_type[8] = '\x7f';
  EXPECT_FALSE(DecodePayload(bad_type, &out).ok());
}

// ---------------------------------------------------------------------------
// Scanner classification: torn tail (truncate) vs corruption (fatal)
// ---------------------------------------------------------------------------

std::string TwoRecordImage() {
  std::string image;
  AppendRecord(&image, WalRecord::Begin(1, 9));
  AppendRecord(&image, WalRecord::Commit(2, 9, 5));
  return image;
}

TEST_F(WalTest, ScanCleanLog) {
  std::string image = TwoRecordImage();
  ScanResult scan = ScanLogImage(image);
  EXPECT_EQ(scan.end, ScanEnd::kClean);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].type, RecordType::kBegin);
  EXPECT_EQ(scan.records[1].type, RecordType::kCommit);
  EXPECT_EQ(scan.valid_bytes, image.size());
}

TEST_F(WalTest, ScanEmptyLogIsClean) {
  ScanResult scan = ScanLogImage("");
  EXPECT_EQ(scan.end, ScanEnd::kClean);
  EXPECT_TRUE(scan.records.empty());
}

TEST_F(WalTest, TruncationAnywhereInFinalRecordIsTorn) {
  std::string full = TwoRecordImage();
  std::string first;
  AppendRecord(&first, WalRecord::Begin(1, 9));
  // Every proper prefix that cuts into the second record — including a
  // partial header — is the shape of an interrupted write.
  for (size_t len = first.size() + 1; len < full.size(); ++len) {
    ScanResult scan = ScanLogImage(std::string_view(full).substr(0, len));
    EXPECT_EQ(scan.end, ScanEnd::kTornTail) << "cut at " << len;
    EXPECT_EQ(scan.valid_bytes, first.size()) << "cut at " << len;
    EXPECT_EQ(scan.records.size(), 1u) << "cut at " << len;
  }
}

TEST_F(WalTest, FlippedBitInFinalRecordIsTorn) {
  std::string image = TwoRecordImage();
  image[image.size() - 1] ^= 0x01;  // payload byte of the last record
  ScanResult scan = ScanLogImage(image);
  EXPECT_EQ(scan.end, ScanEnd::kTornTail);
  EXPECT_EQ(scan.records.size(), 1u);
}

TEST_F(WalTest, FlippedBitMidLogIsCorrupt) {
  std::string image = TwoRecordImage();
  image[kHeaderSize] ^= 0x01;  // first payload byte of the FIRST record
  ScanResult scan = ScanLogImage(image);
  EXPECT_EQ(scan.end, ScanEnd::kCorrupt);
  EXPECT_TRUE(scan.records.empty());
}

TEST_F(WalTest, ZeroFilledTailIsTorn) {
  // Filesystems may extend a file with zero pages on crash; that is an
  // interrupted append, not damage to committed history.
  std::string image = TwoRecordImage();
  size_t committed = image.size();
  image.append(512, '\0');
  ScanResult scan = ScanLogImage(image);
  EXPECT_EQ(scan.end, ScanEnd::kTornTail);
  EXPECT_EQ(scan.valid_bytes, committed);
  EXPECT_EQ(scan.records.size(), 2u);
}

TEST_F(WalTest, ImplausibleLengthClassifiedByClaimedExtent) {
  // Too-short length ending BEFORE EOF: valid-looking data follows the
  // damage, so this is corruption, never truncatable.
  std::string image = TwoRecordImage();
  image[0] = '\x03';  // len = 3 < kMinPayload
  image[1] = '\x00';
  image[2] = '\x00';
  image[3] = '\x00';
  EXPECT_EQ(ScanLogImage(image).end, ScanEnd::kCorrupt);

  // A huge length whose claimed extent reaches past EOF is the shape of
  // an interrupted large-batch append: a torn tail.
  std::string torn = TwoRecordImage();
  std::string first;
  AppendRecord(&first, WalRecord::Begin(1, 9));
  torn[first.size() + 0] = '\xff';
  torn[first.size() + 1] = '\xff';
  torn[first.size() + 2] = '\xff';
  torn[first.size() + 3] = '\x7f';
  ScanResult scan = ScanLogImage(torn);
  EXPECT_EQ(scan.end, ScanEnd::kTornTail);
  EXPECT_EQ(scan.valid_bytes, first.size());
}

TEST_F(WalTest, LsnRegressionIsCorrupt) {
  std::string image;
  AppendRecord(&image, WalRecord::Begin(5, 9));
  AppendRecord(&image, WalRecord::Commit(4, 9, 5));  // goes backwards
  EXPECT_EQ(ScanLogImage(image).end, ScanEnd::kCorrupt);
}

TEST_F(WalTest, ScanMissingFileIsEmptyClean) {
  ASSERT_OK_AND_ASSIGN(ScanResult scan,
                       ScanLogFile("/tmp/sopr_wal_test_no_such_file"));
  EXPECT_EQ(scan.end, ScanEnd::kClean);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.file_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Writer: group commit, abort, partial rollback, failure recovery
// ---------------------------------------------------------------------------

TEST_F(WalTest, CommitWritesOneContiguousBatch) {
  std::string dir = MakeTempDir();
  WalWriter writer(WalFsyncPolicy::kOff);
  ASSERT_OK(writer.Open(dir, 1, 1));

  writer.BeginTxn();
  ASSERT_OK(writer.RedoInsert(0, "emp", 1, SampleRow()));
  ASSERT_OK(writer.RedoUpdate(1, "emp", 1, SampleRow(), Row({Value::Int(1)})));
  ASSERT_OK(writer.RedoDelete(2, "emp", 1, Row({Value::Int(1)})));
  ASSERT_OK(writer.CommitTxn(2));

  ASSERT_OK_AND_ASSIGN(ScanResult scan, ScanLogFile(WalWriter::LogPath(dir)));
  EXPECT_EQ(scan.end, ScanEnd::kClean);
  ASSERT_EQ(scan.records.size(), 5u);
  EXPECT_EQ(scan.records[0].type, RecordType::kBegin);
  EXPECT_EQ(scan.records[1].type, RecordType::kInsert);
  EXPECT_EQ(scan.records[2].type, RecordType::kUpdate);
  EXPECT_EQ(scan.records[3].type, RecordType::kDelete);
  EXPECT_EQ(scan.records[4].type, RecordType::kCommit);
  EXPECT_EQ(scan.records[4].next_handle, 2u);
  for (size_t i = 0; i < scan.records.size(); ++i) {
    EXPECT_EQ(scan.records[i].lsn, i + 1);
  }
  EXPECT_EQ(writer.durable_lsn(), 5u);
}

TEST_F(WalTest, AbortAndReadOnlyCommitWriteNothing) {
  std::string dir = MakeTempDir();
  WalWriter writer(WalFsyncPolicy::kOff);
  ASSERT_OK(writer.Open(dir, 1, 1));

  writer.BeginTxn();
  ASSERT_OK(writer.RedoInsert(0, "emp", 1, SampleRow()));
  writer.AbortTxn();

  writer.BeginTxn();
  ASSERT_OK(writer.CommitTxn(1));  // read-only: empty buffer

  ASSERT_OK_AND_ASSIGN(ScanResult scan, ScanLogFile(WalWriter::LogPath(dir)));
  EXPECT_EQ(scan.file_bytes, 0u);
  EXPECT_TRUE(scan.records.empty());
}

TEST_F(WalTest, RedoDiscardAfterDropsRolledBackSuffix) {
  std::string dir = MakeTempDir();
  WalWriter writer(WalFsyncPolicy::kOff);
  ASSERT_OK(writer.Open(dir, 1, 1));

  writer.BeginTxn();
  ASSERT_OK(writer.RedoInsert(0, "emp", 1, SampleRow()));
  ASSERT_OK(writer.RedoInsert(1, "emp", 2, SampleRow()));
  ASSERT_OK(writer.RedoInsert(2, "emp", 3, SampleRow()));
  writer.RedoDiscardAfter(1);  // partial rollback to mark 1
  ASSERT_OK(writer.CommitTxn(4));

  ASSERT_OK_AND_ASSIGN(ScanResult scan, ScanLogFile(WalWriter::LogPath(dir)));
  ASSERT_EQ(scan.records.size(), 3u);  // BEGIN + surviving insert + COMMIT
  EXPECT_EQ(scan.records[1].type, RecordType::kInsert);
  EXPECT_EQ(scan.records[1].handle, 1u);
}

TEST_F(WalTest, FailedBatchWriteTruncatesAndWriterStaysUsable) {
  std::string dir = MakeTempDir();
  WalWriter writer(WalFsyncPolicy::kOff);
  ASSERT_OK(writer.Open(dir, 1, 1));

  writer.BeginTxn();
  ASSERT_OK(writer.RedoInsert(0, "emp", 1, SampleRow()));
  ASSERT_OK(writer.CommitTxn(2));
  ASSERT_OK_AND_ASSIGN(ScanResult before,
                       ScanLogFile(WalWriter::LogPath(dir)));

  // Injected failure between the two pwrite halves: the batch is torn on
  // disk, then scrubbed back to the durable watermark.
  FailpointRegistry::Trigger once;
  once.mode = FailpointRegistry::Mode::kOnce;
  FailpointRegistry::Instance().Arm("wal.write.mid", once);
  writer.BeginTxn();
  ASSERT_OK(writer.RedoInsert(0, "emp", 2, SampleRow()));
  EXPECT_FALSE(writer.CommitTxn(3).ok());
  writer.AbortTxn();

  ASSERT_OK_AND_ASSIGN(ScanResult after, ScanLogFile(WalWriter::LogPath(dir)));
  EXPECT_EQ(after.end, ScanEnd::kClean);
  EXPECT_EQ(after.file_bytes, before.file_bytes);

  // The writer was not poisoned: the next commit succeeds.
  writer.BeginTxn();
  ASSERT_OK(writer.RedoInsert(0, "emp", 2, SampleRow()));
  ASSERT_OK(writer.CommitTxn(3));
  ASSERT_OK_AND_ASSIGN(ScanResult final_scan,
                       ScanLogFile(WalWriter::LogPath(dir)));
  EXPECT_EQ(final_scan.end, ScanEnd::kClean);
  EXPECT_EQ(final_scan.records.size(), 6u);
}

TEST_F(WalTest, FailedFsyncPoisonsWriter) {
  std::string dir = MakeTempDir();
  WalWriter writer(WalFsyncPolicy::kCommit);
  ASSERT_OK(writer.Open(dir, 1, 1));

  FailpointRegistry::Trigger once;
  once.mode = FailpointRegistry::Mode::kOnce;
  FailpointRegistry::Instance().Arm("wal.sync", once);
  writer.BeginTxn();
  ASSERT_OK(writer.RedoInsert(0, "emp", 1, SampleRow()));
  EXPECT_FALSE(writer.CommitTxn(2).ok());
  writer.AbortTxn();

  // Post-fsync-failure page-cache state is unknowable; every later append
  // must fail with the sticky error.
  writer.BeginTxn();
  EXPECT_FALSE(writer.RedoInsert(0, "emp", 2, SampleRow()).ok());
  EXPECT_FALSE(writer.AppendDdl("create table t (x int)").ok());
}

TEST_F(WalTest, DdlAppendsImmediately) {
  std::string dir = MakeTempDir();
  WalWriter writer(WalFsyncPolicy::kOff);
  ASSERT_OK(writer.Open(dir, 1, 1));
  ASSERT_OK(writer.AppendDdl("create table emp (name string)"));
  ASSERT_OK_AND_ASSIGN(ScanResult scan, ScanLogFile(WalWriter::LogPath(dir)));
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].type, RecordType::kDdl);
  EXPECT_EQ(scan.records[0].sql, "create table emp (name string)");
}

TEST_F(WalTest, StartNewLogTruncatesAndLsnsKeepCounting) {
  std::string dir = MakeTempDir();
  WalWriter writer(WalFsyncPolicy::kOff);
  ASSERT_OK(writer.Open(dir, 1, 1));
  ASSERT_OK(writer.AppendDdl("create table emp (name string)"));
  uint64_t lsn_before = writer.next_lsn();
  ASSERT_OK(writer.StartNewLog());
  ASSERT_OK_AND_ASSIGN(ScanResult scan, ScanLogFile(WalWriter::LogPath(dir)));
  EXPECT_EQ(scan.file_bytes, 0u);
  ASSERT_OK(writer.AppendDdl("create table dept (dept_no int)"));
  ASSERT_OK_AND_ASSIGN(ScanResult scan2, ScanLogFile(WalWriter::LogPath(dir)));
  ASSERT_EQ(scan2.records.size(), 1u);
  EXPECT_GE(scan2.records[0].lsn, lsn_before);
}

TEST_F(WalTest, ReopenContinuesAtDurableWatermark) {
  std::string dir = MakeTempDir();
  uint64_t next_lsn = 0;
  {
    WalWriter writer(WalFsyncPolicy::kOff);
    ASSERT_OK(writer.Open(dir, 1, 1));
    writer.BeginTxn();
    ASSERT_OK(writer.RedoInsert(0, "emp", 1, SampleRow()));
    ASSERT_OK(writer.CommitTxn(2));
    next_lsn = writer.next_lsn();
  }
  WalWriter writer(WalFsyncPolicy::kOff);
  ASSERT_OK(writer.Open(dir, next_lsn, 2));
  writer.BeginTxn();
  ASSERT_OK(writer.RedoInsert(0, "emp", 2, SampleRow()));
  ASSERT_OK(writer.CommitTxn(3));
  ASSERT_OK_AND_ASSIGN(ScanResult scan, ScanLogFile(WalWriter::LogPath(dir)));
  EXPECT_EQ(scan.end, ScanEnd::kClean);
  ASSERT_EQ(scan.records.size(), 6u);
  EXPECT_EQ(scan.records[3].txn_id, 2u);  // second transaction's BEGIN
}

}  // namespace
}  // namespace wal
}  // namespace sopr
