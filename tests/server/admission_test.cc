// Unit tests for the writer AdmissionController (server/admission.h) and
// the SessionManager's overload surfaces (docs/OVERLOAD.md): slot
// accounting, queue-full and queue-deadline shedding, the escalating
// retry-after hint, cancellation while queued, the structured
// session-limit refusal, and the Inspect() snapshot.

#include "server/admission.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "common/cancel.h"
#include "common/failpoint.h"
#include "server/session_manager.h"
#include "test_util.h"

namespace sopr {
namespace server {
namespace {

using std::chrono::milliseconds;

/// Parses the "retry-after-ms=<n>" hint out of a refusal message; -1 if
/// absent — the STRUCTURE of the message is part of the contract.
int64_t RetryAfterMs(const Status& st) {
  const std::string key = "retry-after-ms=";
  const size_t pos = st.message().find(key);
  if (pos == std::string::npos) return -1;
  return std::strtoll(st.message().c_str() + pos + key.size(), nullptr, 10);
}

TEST(AdmissionControllerTest, AdmitsUpToTheInflightLimit) {
  AdmissionOptions options;
  options.max_inflight_writers = 2;
  options.max_queued_writers = 0;
  AdmissionController ctrl(options);

  auto a = ctrl.Admit();
  auto b = ctrl.Admit();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a.value().admitted() && b.value().admitted());
  EXPECT_EQ(ctrl.stats().inflight, 2u);

  auto c = ctrl.Admit();
  EXPECT_EQ(c.status().code(), StatusCode::kOverloaded);
  EXPECT_GE(RetryAfterMs(c.status()), 0) << c.status();
  EXPECT_EQ(ctrl.stats().shed_queue_full, 1u);

  { AdmissionController::Slot dropped = std::move(a).value(); }
  EXPECT_EQ(ctrl.stats().inflight, 1u) << "slot release on destruction";
  auto d = ctrl.Admit();
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(ctrl.stats().admitted, 3u);
}

TEST(AdmissionControllerTest, QueuedWriterProceedsWhenASlotFrees) {
  AdmissionOptions options;
  options.max_inflight_writers = 1;
  options.max_queued_writers = 4;
  AdmissionController ctrl(options);
  auto held = ctrl.Admit();
  ASSERT_TRUE(held.ok());

  Status queued_result = Status::Internal("never ran");
  std::thread queued([&] {
    auto slot = ctrl.Admit();  // parks: no deadline, no ambient context
    queued_result = slot.status();
  });
  // Wait until the writer is provably queued, then free the slot.
  while (ctrl.stats().queued == 0) std::this_thread::yield();
  { AdmissionController::Slot dropped = std::move(held).value(); }
  queued.join();
  ASSERT_OK(queued_result);
  EXPECT_EQ(ctrl.stats().admitted, 2u);
  EXPECT_EQ(ctrl.stats().queued, 0u);
}

TEST(AdmissionControllerTest, QueueDeadlineSheds) {
  AdmissionOptions options;
  options.max_inflight_writers = 1;
  options.max_queued_writers = 4;
  options.queue_deadline = std::chrono::duration_cast<
      std::chrono::microseconds>(milliseconds(20));
  AdmissionController ctrl(options);
  auto held = ctrl.Admit();
  ASSERT_TRUE(held.ok());

  auto shed = ctrl.Admit();
  EXPECT_EQ(shed.status().code(), StatusCode::kOverloaded);
  EXPECT_NE(shed.status().message().find("queue deadline"),
            std::string::npos)
      << shed.status();
  EXPECT_EQ(ctrl.stats().shed_queue_deadline, 1u);
  EXPECT_EQ(ctrl.stats().queued, 0u);
}

TEST(AdmissionControllerTest, RetryHintEscalatesWhileSaturatedAndResets) {
  AdmissionOptions options;
  options.max_inflight_writers = 1;
  options.max_queued_writers = 0;
  options.retry_hint =
      RetryPolicy{milliseconds(10), milliseconds(1000), 2.0, 0.0, 0};
  AdmissionController ctrl(options);
  auto held = ctrl.Admit();
  ASSERT_TRUE(held.ok());

  const int64_t first = RetryAfterMs(ctrl.Admit().status());
  const int64_t second = RetryAfterMs(ctrl.Admit().status());
  const int64_t third = RetryAfterMs(ctrl.Admit().status());
  EXPECT_EQ(first, 10);
  EXPECT_GT(second, first) << "consecutive sheds must escalate the hint";
  EXPECT_GT(third, second);

  { AdmissionController::Slot dropped = std::move(held).value(); }
  auto ok_again = ctrl.Admit();
  ASSERT_TRUE(ok_again.ok());
  { AdmissionController::Slot dropped = std::move(ok_again).value(); }
  auto reheld = ctrl.Admit();
  ASSERT_TRUE(reheld.ok());
  EXPECT_EQ(RetryAfterMs(ctrl.Admit().status()), 10)
      << "a successful admission resets the escalation";
}

TEST(AdmissionControllerTest, AmbientKillShedsAQueuedWriter) {
  AdmissionOptions options;
  options.max_inflight_writers = 1;
  options.max_queued_writers = 4;  // no queue deadline: only the kill
  AdmissionController ctrl(options);
  auto held = ctrl.Admit();
  ASSERT_TRUE(held.ok());

  auto kill = std::make_shared<CancelToken>();
  Status queued_result = Status::OK();
  std::thread queued([&] {
    CancelContext ctx;
    ctx.AddToken(kill, "session");
    CancelScope scope(&ctx);
    queued_result = ctrl.Admit().status();
  });
  while (ctrl.stats().queued == 0) std::this_thread::yield();
  kill->Cancel("kill while queued");
  queued.join();
  EXPECT_EQ(queued_result.code(), StatusCode::kCancelled) << queued_result;
  EXPECT_EQ(ctrl.stats().shed_cancelled, 1u);
  EXPECT_EQ(ctrl.stats().queued, 0u);
}

TEST(AdmissionControllerTest, FailpointInjectsAnAdmissionShed) {
  FailpointRegistry::Instance().DisarmAll();
  AdmissionController ctrl;
  FailpointRegistry::Instance().Arm(
      "server.admit.queue", {FailpointRegistry::Mode::kOnce, 1,
                             StatusCode::kOverloaded, false});
  EXPECT_EQ(ctrl.Admit().status().code(), StatusCode::kOverloaded);
  EXPECT_TRUE(ctrl.Admit().ok());
  EXPECT_EQ(ctrl.stats().admitted, 1u)
      << "an injected shed must not consume a slot";
  FailpointRegistry::Instance().DisarmAll();
}

// --- SessionManager overload surfaces ------------------------------------

TEST(SessionManagerOverloadTest, SessionLimitRefusalIsStructured) {
  FailpointRegistry::Instance().DisarmAll();
  SessionManager manager(std::make_unique<Engine>());
  manager.set_max_sessions(2);
  ASSERT_TRUE(manager.CreateSession().ok());
  ASSERT_TRUE(manager.CreateSession().ok());

  auto refused = manager.CreateSession();
  ASSERT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  // Structured: current/max counts plus the retry-after hint.
  EXPECT_NE(refused.status().message().find("2/2"), std::string::npos)
      << refused.status();
  const int64_t first = RetryAfterMs(refused.status());
  EXPECT_GE(first, 0) << refused.status();
  const int64_t second = RetryAfterMs(manager.CreateSession().status());
  EXPECT_GT(second, first) << "the hint escalates while saturated";

  // Freeing a slot resets the escalation and admits again.
  const auto snap = manager.Inspect();
  ASSERT_EQ(snap.sessions.size(), 2u);
  ASSERT_OK(manager.CloseSession(snap.sessions[0].id));
  auto again = manager.CreateSession();
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(RetryAfterMs(manager.CreateSession().status()), 10);
}

TEST(SessionManagerOverloadTest, InspectReportsPerSessionCounters) {
  FailpointRegistry::Instance().DisarmAll();
  SessionManager manager(std::make_unique<Engine>());
  auto a = manager.CreateSession();
  auto b = manager.CreateSession();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_OK(a.value()->Execute("create table t (v int)"));
  ASSERT_OK(a.value()->Execute("insert into t values (1)"));
  EXPECT_TRUE(b.value()->ExecuteQuery("select * from t").ok());
  b.value()->Cancel("inspect should see this");

  const auto snap = manager.Inspect();
  EXPECT_EQ(snap.num_sessions, 2u);
  EXPECT_EQ(snap.max_sessions, manager.max_sessions());
  ASSERT_EQ(snap.sessions.size(), 2u);
  for (const auto& info : snap.sessions) {
    if (info.id == a.value()->id()) {
      // DDL routes around StatementScope counting? No: Execute counts
      // every statement it admits, DDL included.
      EXPECT_GE(info.statements, 2u);
      EXPECT_GE(info.commits, 1u);
      EXPECT_FALSE(info.killed);
    } else {
      EXPECT_EQ(info.id, b.value()->id());
      EXPECT_EQ(info.statements, 1u);
      EXPECT_TRUE(info.killed);
    }
    EXPECT_EQ(info.inflight_statements, 0u);
  }
  EXPECT_EQ(snap.admission.inflight, 0u);
  EXPECT_GE(snap.admission.admitted, 1u);
}

}  // namespace
}  // namespace server
}  // namespace sopr
