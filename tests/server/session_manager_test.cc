// Concurrent session front-end (docs/CONCURRENCY.md): SessionManager,
// Session, and the CommitScheduler's admission / fatal-state semantics.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "server/session_manager.h"
#include "test_util.h"
#include "wal/wal_writer.h"

namespace sopr {
namespace server {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sopr_session_test_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

class SessionManagerTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisarmAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }

  std::unique_ptr<SessionManager> OpenInMemory() {
    auto opened = SessionManager::Open(RuleEngineOptions());
    EXPECT_TRUE(opened.ok()) << opened.status();
    return opened.ok() ? std::move(opened).value() : nullptr;
  }
};

int64_t ScalarInt(Session* session, const std::string& sql) {
  auto result = session->Query(sql);
  EXPECT_TRUE(result.ok()) << result.status();
  if (!result.ok() || result.value().rows.size() != 1) return -1;
  return result.value().rows[0].at(0).AsInt();
}

TEST_F(SessionManagerTest, SessionLifecycle) {
  std::unique_ptr<SessionManager> manager = OpenInMemory();
  ASSERT_NE(manager, nullptr);
  ASSERT_OK_AND_ASSIGN(Session * a, manager->CreateSession());
  ASSERT_OK_AND_ASSIGN(Session * b, manager->CreateSession());
  EXPECT_NE(a->id(), b->id());
  EXPECT_EQ(manager->num_sessions(), 2u);
  const uint64_t a_id = a->id();  // `a` dangles once closed
  ASSERT_OK(manager->CloseSession(a_id));
  EXPECT_EQ(manager->num_sessions(), 1u);
  EXPECT_FALSE(manager->CloseSession(a_id).ok()) << "already closed";
}

TEST_F(SessionManagerTest, SessionLimit) {
  std::unique_ptr<SessionManager> manager = OpenInMemory();
  ASSERT_NE(manager, nullptr);
  manager->set_max_sessions(2);
  ASSERT_OK(manager->CreateSession().status());
  ASSERT_OK_AND_ASSIGN(Session * second, manager->CreateSession());
  auto third = manager->CreateSession();
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  ASSERT_OK(manager->CloseSession(second->id()));
  EXPECT_OK(manager->CreateSession().status());
}

TEST_F(SessionManagerTest, DdlAndDmlAndQueries) {
  std::unique_ptr<SessionManager> manager = OpenInMemory();
  ASSERT_NE(manager, nullptr);
  ASSERT_OK_AND_ASSIGN(Session * s, manager->CreateSession());
  ASSERT_OK(s->Execute("create table emp (id int, salary double)"));
  ASSERT_OK(s->Execute("insert into emp values (1, 100); "
                       "insert into emp values (2, 200)"));
  EXPECT_EQ(s->commits(), 1u) << "one block = one transaction";
  EXPECT_EQ(ScalarInt(s, "select count(*) from emp"), 2);
  // DDL and DML cannot share a script: which transaction would the DML
  // belong to?
  EXPECT_FALSE(
      s->Execute("create table t2 (x int); insert into t2 values (1)").ok());
}

TEST_F(SessionManagerTest, RollbackRuleSurfacesAsRolledBack) {
  std::unique_ptr<SessionManager> manager = OpenInMemory();
  ASSERT_NE(manager, nullptr);
  ASSERT_OK_AND_ASSIGN(Session * s, manager->CreateSession());
  ASSERT_OK(s->Execute("create table emp (id int, salary double)"));
  ASSERT_OK(s->Execute(
      "create rule positive when inserted into emp "
      "if exists (select * from inserted emp where salary < 0) "
      "then rollback"));
  Status st = s->Execute("insert into emp values (1, -5)");
  EXPECT_EQ(st.code(), StatusCode::kRolledBack) << st;
  EXPECT_EQ(s->aborts(), 1u);
  EXPECT_EQ(ScalarInt(s, "select count(*) from emp"), 0);
}

TEST_F(SessionManagerTest, SubmitFailpointRejectsWork) {
  std::unique_ptr<SessionManager> manager = OpenInMemory();
  ASSERT_NE(manager, nullptr);
  ASSERT_OK_AND_ASSIGN(Session * s, manager->CreateSession());
  ASSERT_OK(s->Execute("create table emp (id int)"));
  FailpointRegistry::Instance().Arm(
      "server.submit.pre", {FailpointRegistry::Mode::kOnce});
  EXPECT_FALSE(s->Execute("insert into emp values (1)").ok());
  ASSERT_OK(s->Execute("insert into emp values (1)"));
  FailpointRegistry::Instance().Arm(
      "server.session.create", {FailpointRegistry::Mode::kOnce});
  EXPECT_FALSE(manager->CreateSession().ok());
}

TEST_F(SessionManagerTest, ConcurrentSessionsSerializeCorrectly) {
  std::unique_ptr<SessionManager> manager = OpenInMemory();
  ASSERT_NE(manager, nullptr);
  ASSERT_OK_AND_ASSIGN(Session * setup, manager->CreateSession());
  ASSERT_OK(setup->Execute("create table counter (owner int, n int)"));
  ASSERT_OK(setup->Execute("create table audit (owner int)"));
  // Every insert into counter is audited — rule work rides inside each
  // session's transaction, so the audit count must match exactly.
  ASSERT_OK(setup->Execute(
      "create rule audit_ins when inserted into counter "
      "then insert into audit (select owner from inserted counter)"));

  constexpr int kSessions = 6;
  constexpr int kTxns = 30;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      auto session = manager->CreateSession();
      if (!session.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int j = 0; j < kTxns; ++j) {
        Status st = session.value()->Execute(
            "insert into counter values (" + std::to_string(i) + ", " +
            std::to_string(j) + ")");
        if (!st.ok()) failures.fetch_add(1);
        // Interleave reads (shared lock) with the writes.
        auto read = session.value()->Query(
            "select count(*) from counter where owner = " +
            std::to_string(i));
        if (!read.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(ScalarInt(setup, "select count(*) from counter"),
            kSessions * kTxns);
  EXPECT_EQ(ScalarInt(setup, "select count(*) from audit"),
            kSessions * kTxns);
  EXPECT_EQ(manager->scheduler().committed(),
            static_cast<uint64_t>(kSessions * kTxns));
}

TEST_F(SessionManagerTest, DdlDuringConcurrentTraffic) {
  std::unique_ptr<SessionManager> manager = OpenInMemory();
  ASSERT_NE(manager, nullptr);
  ASSERT_OK_AND_ASSIGN(Session * setup, manager->CreateSession());
  ASSERT_OK(setup->Execute("create table emp (id int)"));

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<int> inserted{0};
  std::vector<std::thread> writers;
  for (int i = 0; i < 3; ++i) {
    writers.emplace_back([&, i] {
      auto session = manager->CreateSession();
      if (!session.ok()) {
        failures.fetch_add(1);
        return;
      }
      int j = 0;
      while (!stop.load()) {
        if (session.value()
                ->Execute("insert into emp values (" +
                          std::to_string(i * 100000 + j++) + ")")
                .ok()) {
          inserted.fetch_add(1);
        } else {
          failures.fetch_add(1);
        }
      }
    });
  }
  // DDL (new tables, a new rule, an index) lands mid-traffic through the
  // same exclusive section — with traffic provably flowing both before
  // and after it (a single-core scheduler can otherwise run this whole
  // block before any writer gets a slice).
  auto wait_for_inserts = [&](int target) {
    while (inserted.load() < target) std::this_thread::yield();
  };
  wait_for_inserts(10);
  ASSERT_OK_AND_ASSIGN(Session * ddl, manager->CreateSession());
  ASSERT_OK(ddl->Execute("create table audit (id int)"));
  ASSERT_OK(ddl->Execute(
      "create rule audit_ins when inserted into emp "
      "then insert into audit (select id from inserted emp)"));
  wait_for_inserts(inserted.load() + 10);
  ASSERT_OK(ddl->Execute("create index on emp (id)"));
  wait_for_inserts(inserted.load() + 10);
  stop.store(true);
  for (std::thread& t : writers) t.join();

  EXPECT_EQ(failures.load(), 0);
  // Rows inserted after the rule existed were audited; the index agrees
  // with a full scan.
  const int64_t total = ScalarInt(setup, "select count(*) from emp");
  const int64_t audited = ScalarInt(setup, "select count(*) from audit");
  EXPECT_GE(total, audited);
  EXPECT_GT(total, 0);
  EXPECT_GT(audited, 0) << "inserts after the rule landed must be audited";
}

// After a lost durability point the scheduler goes fatal: writes are
// refused with the recorded failure, reads keep working.
TEST_F(SessionManagerTest, FatalAfterPoisonFailsFastButStillReads) {
  RuleEngineOptions options;
  options.wal_dir = MakeTempDir();
  auto opened = SessionManager::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  std::unique_ptr<SessionManager> manager = std::move(opened).value();
  ASSERT_OK_AND_ASSIGN(Session * s, manager->CreateSession());
  ASSERT_OK(s->Execute("create table emp (id int)"));
  ASSERT_OK(s->Execute("insert into emp values (1)"));

  FailpointRegistry::Instance().Arm(
      "wal.sync", {FailpointRegistry::Mode::kAlways});
  Status st = s->Execute("insert into emp values (2)");
  ASSERT_FALSE(st.ok());
  FailpointRegistry::Instance().DisarmAll();

  // Fail-fast: later writes are refused BEFORE touching the engine...
  Status refused = s->Execute("insert into emp values (3)");
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.message().find("server halted"), std::string::npos)
      << refused;
  EXPECT_FALSE(manager->scheduler().fatal().ok());
  // ...and DDL too.
  EXPECT_FALSE(s->Execute("create table t2 (x int)").ok());
  // Reads still serve the intact in-memory state.
  EXPECT_EQ(ScalarInt(s, "select count(*) from emp"), 2);

  // A restart recovers to the durable prefix: only the first insert.
  manager.reset();
  auto reopened = SessionManager::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  ASSERT_OK_AND_ASSIGN(Session * r, reopened.value()->CreateSession());
  EXPECT_EQ(ScalarInt(r, "select count(*) from emp"), 1);
}

}  // namespace
}  // namespace server
}  // namespace sopr
