// Unit tests for JoinHashTable key-digest normalization and for the
// Build/BuildColumnar equivalence contract (docs/EXECUTION.md): rows
// with a NULL key column are never inserted and a NULL probe key
// matches nothing; numeric keys are normalized through double so int 2
// and double 2.0 share a bucket and -0.0 collapses with +0.0; and the
// columnar bulk-digest build emits bucket contents bit-identical to the
// row-at-a-time build, including ascending build-row order within each
// bucket.

#include "exec/hash_join.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "exec/column_vector.h"
#include "exec/stats.h"
#include "types/row.h"
#include "types/value.h"

namespace sopr {
namespace exec {
namespace {

std::vector<uint32_t> ProbeOne(const JoinHashTable& table,
                               const std::vector<Value>& key) {
  std::vector<const Value*> ptrs;
  for (const Value& v : key) ptrs.push_back(&v);
  std::vector<uint32_t> out;
  table.Probe(ptrs, &out);
  return out;
}

/// Builds the same table twice — row path and columnar path — asserting
/// both succeed, then returns them for side-by-side probing.
void BuildBothWays(const std::vector<Row>& rows,
                   const std::vector<size_t>& key_cols,
                   const std::vector<ValueType>& key_types,
                   JoinHashTable* row_table, JoinHashTable* col_table,
                   std::vector<ColumnVector>* storage) {
  auto row_built = row_table->Build(rows, key_cols, 0);
  ASSERT_TRUE(row_built.ok());
  ASSERT_TRUE(row_built.value());

  storage->resize(key_cols.size());
  std::vector<const ColumnVector*> vecs;
  for (size_t k = 0; k < key_cols.size(); ++k) {
    ASSERT_TRUE(BuildColumn(rows, key_cols[k], key_types[k], &(*storage)[k]))
        << "key column " << key_cols[k] << " must decompose";
    vecs.push_back(&(*storage)[k]);
  }
  auto col_built = col_table->BuildColumnar(rows, key_cols, 0, vecs);
  ASSERT_TRUE(col_built.ok());
  ASSERT_TRUE(col_built.value());
}

TEST(HashJoinKeyValueTest, NumericNormalization) {
  // int 2 and double 2.0 SqlEquals, so they must share a digest; -0.0
  // and +0.0 likewise. Distinct values may collide in principle (it is
  // a hash), but these sanity pairs must never split.
  EXPECT_EQ(HashJoinKeyValue(Value::Int(2)),
            HashJoinKeyValue(Value::Double(2.0)));
  EXPECT_EQ(HashJoinKeyValue(Value::Double(-0.0)),
            HashJoinKeyValue(Value::Double(0.0)));
  EXPECT_EQ(HashJoinKeyValue(Value::Int(0)),
            HashJoinKeyValue(Value::Double(-0.0)));
  EXPECT_NE(HashJoinKeyValue(Value::String("")),
            HashJoinKeyValue(Value::String("a")));
}

TEST(JoinHashTableTest, NullKeysNeverInsertedOrMatched) {
  std::vector<Row> rows = {
      Row({Value::Int(1), Value::String("a")}),
      Row({Value::Null(), Value::String("null-key")}),
      Row({Value::Int(1), Value::String("b")}),
  };
  JoinHashTable table;
  auto built = table.Build(rows, {0}, 0);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built.value());

  // The NULL-keyed row 1 is not in the table: probing every non-NULL
  // key present can only surface rows 0 and 2.
  EXPECT_EQ(ProbeOne(table, {Value::Int(1)}),
            (std::vector<uint32_t>{0, 2}));
  // A NULL probe key matches nothing — not even the NULL-keyed row.
  EXPECT_TRUE(ProbeOne(table, {Value::Null()}).empty());
}

TEST(JoinHashTableTest, NullKeysSkippedIdenticallyInColumnarBuild) {
  std::vector<Row> rows = {
      Row({Value::Null(), Value::Int(0)}),
      Row({Value::Int(7), Value::Int(1)}),
      Row({Value::Null(), Value::Int(2)}),
      Row({Value::Int(7), Value::Int(3)}),
  };
  JoinHashTable row_table, col_table;
  std::vector<ColumnVector> storage;
  BuildBothWays(rows, {0}, {ValueType::kInt}, &row_table, &col_table,
                &storage);
  const std::vector<std::vector<Value>> keys = {{Value::Int(7)},
                                                {Value::Double(7.0)},
                                                {Value::Null()},
                                                {Value::Int(8)}};
  for (const auto& key : keys) {
    EXPECT_EQ(ProbeOne(row_table, key), ProbeOne(col_table, key));
  }
  EXPECT_EQ(ProbeOne(col_table, {Value::Int(7)}),
            (std::vector<uint32_t>{1, 3}));
  EXPECT_TRUE(ProbeOne(col_table, {Value::Null()}).empty());
}

TEST(JoinHashTableTest, NegativeZeroCollapsesAcrossBuildPaths) {
  // Keys -0.0, +0.0, and int 0 all SqlEquals; both build paths must
  // put all of them in one bucket, emitted in ascending build-row
  // order, and a probe by any spelling of zero finds all of them.
  std::vector<Row> rows = {
      Row({Value::Double(-0.0)}),
      Row({Value::Double(0.0)}),
      Row({Value::Double(1.5)}),
      Row({Value::Double(-0.0)}),
  };
  JoinHashTable row_table, col_table;
  std::vector<ColumnVector> storage;
  BuildBothWays(rows, {0}, {ValueType::kDouble}, &row_table, &col_table,
                &storage);
  const std::vector<uint32_t> zeros{0, 1, 3};
  const std::vector<std::vector<Value>> keys = {
      {Value::Double(-0.0)}, {Value::Double(0.0)}, {Value::Int(0)}};
  for (const auto& key : keys) {
    EXPECT_EQ(ProbeOne(row_table, key), zeros);
    EXPECT_EQ(ProbeOne(col_table, key), zeros);
  }
}

TEST(JoinHashTableTest, IntDoubleKeysShareBucketsAcrossBuildPaths) {
  // An int build column probed by double keys (and vice versa): the
  // digest normalization through double bits must line up on both
  // build paths, including values above 2^53 where (double) conversion
  // is lossy — lossy identically, so SqlEquals-equal keys still meet.
  constexpr int64_t kBig = (int64_t{1} << 53) + 1;
  std::vector<Row> rows = {
      Row({Value::Int(2)}),
      Row({Value::Int(-3)}),
      Row({Value::Int(kBig)}),
      Row({Value::Int(std::numeric_limits<int64_t>::min())}),
  };
  JoinHashTable row_table, col_table;
  std::vector<ColumnVector> storage;
  BuildBothWays(rows, {0}, {ValueType::kInt}, &row_table, &col_table,
                &storage);
  const std::vector<std::vector<Value>> keys = {
      {Value::Double(2.0)},
      {Value::Int(2)},
      {Value::Double(-3.0)},
      {Value::Int(kBig)},
      {Value::Int(std::numeric_limits<int64_t>::min())}};
  for (const auto& key : keys) {
    EXPECT_EQ(ProbeOne(row_table, key), ProbeOne(col_table, key));
  }
  EXPECT_EQ(ProbeOne(col_table, {Value::Double(2.0)}),
            (std::vector<uint32_t>{0}));
}

TEST(JoinHashTableTest, MultiColumnKeysMatchAcrossBuildPaths) {
  // Composite (int, string) keys: per-column digests are mixed in
  // column order, NULL in ANY key column drops the row, and bucket
  // order stays ascending even though the columnar build accumulates
  // digests column-major rather than row-major.
  static const std::string kLong(300, 'q');
  std::vector<Row> rows = {
      Row({Value::Int(1), Value::String("a")}),
      Row({Value::Int(1), Value::String("b")}),
      Row({Value::Int(1), Value::Null()}),
      Row({Value::Null(), Value::String("a")}),
      Row({Value::Int(1), Value::String("a")}),
      Row({Value::Int(2), Value::String(kLong)}),
      Row({Value::Int(1), Value::String("")}),
  };
  JoinHashTable row_table, col_table;
  std::vector<ColumnVector> storage;
  BuildBothWays(rows, {0, 1}, {ValueType::kInt, ValueType::kString},
                &row_table, &col_table, &storage);
  const std::vector<std::vector<Value>> keys = {
      {Value::Int(1), Value::String("a")},
      {Value::Int(1), Value::String("b")},
      {Value::Int(1), Value::String("")},
      {Value::Int(2), Value::String(kLong)},
      {Value::Double(1.0), Value::String("a")},
      {Value::Int(1), Value::Null()},
      {Value::Null(), Value::String("a")}};
  for (const auto& key : keys) {
    EXPECT_EQ(ProbeOne(row_table, key), ProbeOne(col_table, key));
  }
  EXPECT_EQ(ProbeOne(col_table, {Value::Int(1), Value::String("a")}),
            (std::vector<uint32_t>{0, 4}));
  EXPECT_TRUE(ProbeOne(col_table, {Value::Int(1), Value::Null()}).empty());
}

TEST(JoinHashTableTest, ColumnarBuildHonorsMaxBuildRows) {
  std::vector<Row> rows;
  for (int i = 0; i < 10; ++i) rows.push_back(Row({Value::Int(i)}));
  std::vector<ColumnVector> storage(1);
  ASSERT_TRUE(BuildColumn(rows, 0, ValueType::kInt, &storage[0]));
  JoinHashTable table;
  auto built = table.BuildColumnar(rows, {0}, 4, {&storage[0]});
  ASSERT_TRUE(built.ok());
  EXPECT_FALSE(built.value()) << "cap of 4 must reject a 10-row build";
}

TEST(JoinHashTableTest, ColumnarBuildBumpsEngagementCounters) {
  std::vector<Row> rows = {Row({Value::Int(1)}), Row({Value::Int(2)})};
  std::vector<ColumnVector> storage(1);
  ASSERT_TRUE(BuildColumn(rows, 0, ValueType::kInt, &storage[0]));
  const uint64_t builds = GlobalStats().hash_join_builds.load();
  const uint64_t columnar = GlobalStats().hash_join_columnar_builds.load();
  JoinHashTable table;
  auto built = table.BuildColumnar(rows, {0}, 0, {&storage[0]});
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built.value());
  EXPECT_GT(GlobalStats().hash_join_builds.load(), builds);
  EXPECT_GT(GlobalStats().hash_join_columnar_builds.load(), columnar);
}

}  // namespace
}  // namespace exec
}  // namespace sopr
