// Instance-oriented baseline: semantics parity with the set-oriented
// engine on simple rules, and the per-tuple invocation counts that drive
// benchmark B1.

#include "baseline/instance_engine.h"

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "test_util.h"

namespace sopr {
namespace {

class InstanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.CreateTable(TableSchema(
        "orders", {{"id", ValueType::kInt}, {"qty", ValueType::kInt}})));
    ASSERT_OK(db_.CreateTable(TableSchema(
        "audit", {{"id", ValueType::kInt}, {"tag", ValueType::kInt}})));
  }

  void DefineRule(const std::string& sql) {
    auto stmt = Parser::ParseStatement(sql);
    ASSERT_TRUE(stmt.ok()) << stmt.status();
    std::shared_ptr<const CreateRuleStmt> def(
        static_cast<const CreateRuleStmt*>(stmt.value().release()));
    ASSERT_OK(engine_.DefineRule(std::move(def)));
  }

  InstanceStats Execute(const std::string& sql) {
    auto stmts = Parser::ParseScript(sql);
    EXPECT_TRUE(stmts.ok()) << stmts.status();
    std::vector<const Stmt*> ops;
    for (const StmtPtr& s : stmts.value()) ops.push_back(s.get());
    auto stats = engine_.ExecuteBlock(ops);
    EXPECT_TRUE(stats.ok()) << stats.status();
    return stats.ok() ? stats.value() : InstanceStats{};
  }

  size_t TableSize(const std::string& name) {
    auto t = db_.GetTable(name);
    return t.ok() ? t.value()->size() : 0;
  }

  Database db_;
  InstanceEngine engine_{&db_};
};

TEST_F(InstanceTest, OneInvocationPerAffectedTuple) {
  DefineRule(
      "create rule audit_ins when inserted into orders "
      "then insert into audit (select id, 1 from inserted orders)");

  InstanceStats stats = Execute(
      "insert into orders values (1, 10); "
      "insert into orders values (2, 20); "
      "insert into orders values (3, 30)");

  // Instance-oriented: 3 tuples -> 3 invocations, 3 action executions.
  EXPECT_EQ(stats.invocations, 3u);
  EXPECT_EQ(stats.actions_executed, 3u);
  EXPECT_EQ(TableSize("audit"), 3u);
}

TEST_F(InstanceTest, ConditionFilteredPerTuple) {
  DefineRule(
      "create rule big when inserted into orders "
      "if exists (select * from inserted orders where qty > 15) "
      "then insert into audit (select id, 2 from inserted orders)");

  InstanceStats stats = Execute(
      "insert into orders values (1, 10); "
      "insert into orders values (2, 20); "
      "insert into orders values (3, 30)");

  EXPECT_EQ(stats.invocations, 3u);
  EXPECT_EQ(stats.actions_executed, 2u);  // only qty 20 and 30
  EXPECT_EQ(TableSize("audit"), 2u);
}

TEST_F(InstanceTest, DeletedAndUpdatedPredicates) {
  DefineRule(
      "create rule del when deleted from orders "
      "then insert into audit (select id, 3 from deleted orders)");
  DefineRule(
      "create rule upd when updated orders.qty "
      "then insert into audit (select id, 4 from new updated orders.qty)");

  Execute("insert into orders values (1, 10); insert into orders values (2, 20)");
  InstanceStats stats = Execute("update orders set qty = qty + 1");
  EXPECT_EQ(stats.actions_executed, 2u);
  stats = Execute("delete from orders where id = 1");
  EXPECT_EQ(stats.actions_executed, 1u);
  EXPECT_EQ(TableSize("audit"), 3u);
}

TEST_F(InstanceTest, ColumnSensitiveUpdatePredicate) {
  DefineRule(
      "create rule upd when updated orders.qty "
      "then insert into audit (select id, 4 from new updated orders.qty)");
  Execute("insert into orders values (1, 10)");
  InstanceStats stats = Execute("update orders set id = 5");
  EXPECT_EQ(stats.invocations, 0u);  // id update does not match qty pred
}

TEST_F(InstanceTest, CascadesViaQueue) {
  ASSERT_OK(db_.CreateTable(TableSchema(
      "chain", {{"n", ValueType::kInt}})));
  DefineRule(
      "create rule down when inserted into chain "
      "if exists (select * from inserted chain where n > 0) "
      "then insert into chain (select n - 1 from inserted chain)");

  InstanceStats stats = Execute("insert into chain values (4)");
  // 4 -> 3 -> 2 -> 1 -> 0: five tuples total, five invocations.
  EXPECT_EQ(TableSize("chain"), 5u);
  EXPECT_EQ(stats.invocations, 5u);
  EXPECT_EQ(stats.actions_executed, 4u);
}

TEST_F(InstanceTest, RunawayCascadeLimited) {
  ASSERT_OK(db_.CreateTable(TableSchema("inf", {{"n", ValueType::kInt}})));
  InstanceEngine limited(&db_, 50);
  auto stmt = Parser::ParseStatement(
      "create rule forever when inserted into inf "
      "then insert into inf (select n + 1 from inserted inf)");
  ASSERT_TRUE(stmt.ok());
  std::shared_ptr<const CreateRuleStmt> def(
      static_cast<const CreateRuleStmt*>(stmt.value().release()));
  ASSERT_OK(limited.DefineRule(std::move(def)));

  auto ops = Parser::ParseScript("insert into inf values (0)");
  ASSERT_TRUE(ops.ok());
  std::vector<const Stmt*> raw{ops.value()[0].get()};
  auto stats = limited.ExecuteBlock(raw);
  EXPECT_EQ(stats.status().code(), StatusCode::kLimitExceeded);
  EXPECT_EQ(TableSize("inf"), 0u);  // rolled back
}

TEST_F(InstanceTest, RollbackRulesUnsupported) {
  auto stmt = Parser::ParseStatement(
      "create rule nope when inserted into orders then rollback");
  ASSERT_TRUE(stmt.ok());
  std::shared_ptr<const CreateRuleStmt> def(
      static_cast<const CreateRuleStmt*>(stmt.value().release()));
  EXPECT_EQ(engine_.DefineRule(std::move(def)).code(),
            StatusCode::kNotImplemented);
}

TEST_F(InstanceTest, StaleWorkSkipped) {
  // Rule A deletes the tuple; rule B (enqueued for the same tuple) must
  // not crash on the now-missing tuple.
  DefineRule(
      "create rule killer when inserted into orders "
      "then delete from orders where id in (select id from inserted orders)");
  DefineRule(
      "create rule reader when inserted into orders "
      "then insert into audit (select id, 9 from inserted orders)");

  InstanceStats stats = Execute("insert into orders values (1, 10)");
  (void)stats;
  EXPECT_EQ(TableSize("orders"), 0u);
  // reader's work item was stale (tuple deleted) and skipped.
  EXPECT_EQ(TableSize("audit"), 0u);
}

TEST_F(InstanceTest, MatchesSetOrientedFinalStateOnMonotonicRules) {
  // For insert-only audit rules the two execution disciplines agree on
  // the final state (they differ in cost, which is benchmark B1).
  Engine set_engine;
  ASSERT_OK(set_engine.Execute("create table orders (id int, qty int)"));
  ASSERT_OK(set_engine.Execute("create table audit (id int, tag int)"));
  ASSERT_OK(set_engine.Execute(
      "create rule audit_ins when inserted into orders "
      "then insert into audit (select id, 1 from inserted orders)"));

  DefineRule(
      "create rule audit_ins when inserted into orders "
      "then insert into audit (select id, 1 from inserted orders)");

  std::string block =
      "insert into orders values (1, 10); "
      "insert into orders values (2, 20)";
  ASSERT_OK(set_engine.Execute(block));
  Execute(block);

  ASSERT_OK_AND_ASSIGN(QueryResult set_audit,
                       set_engine.Query("select id from audit order by id"));
  EXPECT_EQ(set_audit.rows.size(), 2u);
  EXPECT_EQ(TableSize("audit"), 2u);
}

}  // namespace
}  // namespace sopr
