// Scalar expression evaluation: scopes, name resolution, three-valued
// logic, short-circuiting, and error paths — independent of the query
// executor (no subquery runner).

#include "expr/evaluator.h"

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "test_util.h"

namespace sopr {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest()
      : schema_("emp", {{"name", ValueType::kString},
                        {"salary", ValueType::kDouble},
                        {"dept_no", ValueType::kInt}}),
        row_({Value::String("Jane"), Value::Double(90000),
              Value::Int(1)}) {}

  void SetUp() override {
    ASSERT_OK(scope_.AddBinding("emp", &schema_));
    scope_.SetRow(0, &row_);
  }

  Value Eval(const std::string& expr_sql) {
    auto expr = Parser::ParseExpression(expr_sql);
    EXPECT_TRUE(expr.ok()) << expr.status();
    EvalContext ctx;  // no runner: subqueries would fail
    auto v = Evaluate(*expr.value(), scope_, ctx);
    EXPECT_TRUE(v.ok()) << expr_sql << " -> " << v.status();
    return v.ok() ? std::move(v).value() : Value::Null();
  }

  Status EvalError(const std::string& expr_sql) {
    auto expr = Parser::ParseExpression(expr_sql);
    EXPECT_TRUE(expr.ok()) << expr.status();
    EvalContext ctx;
    auto v = Evaluate(*expr.value(), scope_, ctx);
    EXPECT_FALSE(v.ok()) << expr_sql;
    return v.status();
  }

  TableSchema schema_;
  Row row_;
  Scope scope_;
};

TEST_F(EvaluatorTest, ColumnAndQualifiedColumn) {
  EXPECT_EQ(Eval("name"), Value::String("Jane"));
  EXPECT_EQ(Eval("emp.salary"), Value::Double(90000));
  EXPECT_EQ(EvalError("nosuch").code(), StatusCode::kCatalogError);
  EXPECT_EQ(EvalError("bad.salary").code(), StatusCode::kCatalogError);
}

TEST_F(EvaluatorTest, ArithmeticPrecedence) {
  EXPECT_EQ(Eval("2 + 3 * 4"), Value::Int(14));
  EXPECT_EQ(Eval("(2 + 3) * 4"), Value::Int(20));
  EXPECT_EQ(Eval("-salary / 2"), Value::Double(-45000));
  EXPECT_EQ(Eval("salary * 0.1 + dept_no"), Value::Double(9001));
}

TEST_F(EvaluatorTest, ComparisonsAndLogic) {
  EXPECT_EQ(Eval("salary > 50000"), Value::Bool(true));
  EXPECT_EQ(Eval("salary > 50000 and dept_no = 2"), Value::Bool(false));
  EXPECT_EQ(Eval("salary > 50000 or dept_no = 2"), Value::Bool(true));
  EXPECT_EQ(Eval("not (dept_no = 1)"), Value::Bool(false));
  EXPECT_EQ(Eval("name = 'Jane'"), Value::Bool(true));
  EXPECT_EQ(Eval("name <> 'Jane'"), Value::Bool(false));
  EXPECT_EQ(Eval("salary >= 90000"), Value::Bool(true));
  EXPECT_EQ(Eval("salary <= 89999"), Value::Bool(false));
}

TEST_F(EvaluatorTest, ThreeValuedLogicWithNull) {
  EXPECT_TRUE(Eval("null = 1").is_null());
  EXPECT_TRUE(Eval("null and true").is_null());
  EXPECT_EQ(Eval("null and false"), Value::Bool(false));
  EXPECT_EQ(Eval("null or true"), Value::Bool(true));
  EXPECT_TRUE(Eval("null or false").is_null());
  EXPECT_TRUE(Eval("not (null = 1)").is_null());
  EXPECT_EQ(Eval("null is null"), Value::Bool(true));
  EXPECT_EQ(Eval("salary is not null"), Value::Bool(true));
}

TEST_F(EvaluatorTest, ShortCircuitPreventsErrors) {
  // Right operand would divide by zero; short-circuit avoids it.
  EXPECT_EQ(Eval("false and (1 / 0 > 0)"), Value::Bool(false));
  EXPECT_EQ(Eval("true or (1 / 0 > 0)"), Value::Bool(true));
  // Without short-circuit the error surfaces.
  EXPECT_EQ(EvalError("true and (1 / 0 > 0)").code(),
            StatusCode::kExecutionError);
}

TEST_F(EvaluatorTest, InListSemantics) {
  EXPECT_EQ(Eval("dept_no in (1, 2, 3)"), Value::Bool(true));
  EXPECT_EQ(Eval("dept_no in (5, 6)"), Value::Bool(false));
  EXPECT_EQ(Eval("dept_no not in (5, 6)"), Value::Bool(true));
  // SQL subtlety: x NOT IN (..., NULL, ...) with no match is UNKNOWN.
  EXPECT_TRUE(Eval("dept_no in (5, null)").is_null());
  EXPECT_TRUE(Eval("dept_no not in (5, null)").is_null());
  // ...but a positive match beats the NULL.
  EXPECT_EQ(Eval("dept_no in (1, null)"), Value::Bool(true));
}

TEST_F(EvaluatorTest, BetweenSemantics) {
  EXPECT_EQ(Eval("salary between 80000 and 100000"), Value::Bool(true));
  EXPECT_EQ(Eval("salary between 0 and 50000"), Value::Bool(false));
  EXPECT_EQ(Eval("salary not between 0 and 50000"), Value::Bool(true));
  EXPECT_TRUE(Eval("salary between null and 100000").is_null());
  // Inclusive bounds.
  EXPECT_EQ(Eval("salary between 90000 and 90000"), Value::Bool(true));
}

TEST_F(EvaluatorTest, OuterScopeResolution) {
  TableSchema inner_schema("dept", {{"dept_no", ValueType::kInt},
                                    {"mgr_no", ValueType::kInt}});
  Row inner_row{Value::Int(7), Value::Int(10)};
  Scope inner(&scope_);
  ASSERT_OK(inner.AddBinding("dept", &inner_schema));
  inner.SetRow(0, &inner_row);

  EvalContext ctx;
  // Unqualified: inner binding wins for dept columns; falls through to
  // outer for emp columns.
  auto mgr = Parser::ParseExpression("mgr_no");
  auto v1 = Evaluate(*mgr.value(), inner, ctx);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1.value(), Value::Int(10));

  auto sal = Parser::ParseExpression("salary");
  auto v2 = Evaluate(*sal.value(), inner, ctx);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2.value(), Value::Double(90000));

  // Inner `dept_no` shadows outer emp.dept_no.
  auto dn = Parser::ParseExpression("dept_no");
  auto v3 = Evaluate(*dn.value(), inner, ctx);
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(v3.value(), Value::Int(7));

  // Qualified access still reaches the outer binding.
  auto q = Parser::ParseExpression("emp.dept_no");
  auto v4 = Evaluate(*q.value(), inner, ctx);
  ASSERT_TRUE(v4.ok());
  EXPECT_EQ(v4.value(), Value::Int(1));
}

TEST_F(EvaluatorTest, AmbiguousUnqualifiedNameAtSameLevel) {
  TableSchema other("emp2", {{"salary", ValueType::kDouble}});
  Scope both;
  ASSERT_OK(both.AddBinding("a", &schema_));
  ASSERT_OK(both.AddBinding("b", &other));
  EvalContext ctx;
  auto expr = Parser::ParseExpression("salary");
  auto v = Evaluate(*expr.value(), both, ctx);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kCatalogError);
}

TEST_F(EvaluatorTest, PredicateConversion) {
  auto expr = Parser::ParseExpression("salary");
  EvalContext ctx;
  auto t = EvaluatePredicate(*expr.value(), scope_, ctx);
  EXPECT_FALSE(t.ok());  // double is not a predicate
  EXPECT_EQ(t.status().code(), StatusCode::kTypeError);

  auto good = Parser::ParseExpression("salary > 0");
  auto t2 = EvaluatePredicate(*good.value(), scope_, ctx);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2.value(), TriBool::kTrue);
}

TEST_F(EvaluatorTest, SubqueryWithoutRunnerIsInternalError) {
  EXPECT_EQ(EvalError("exists (select * from emp)").code(),
            StatusCode::kInternal);
}

TEST_F(EvaluatorTest, AggregateOutsideContextIsTypeError) {
  EXPECT_EQ(EvalError("sum(salary)").code(), StatusCode::kTypeError);
}

TEST_F(EvaluatorTest, ContainsAndCollectAggregates) {
  auto a = Parser::ParseExpression("1 + sum(salary) / count(*)");
  EXPECT_TRUE(ContainsAggregate(*a.value()));
  std::vector<const AggregateExpr*> nodes;
  CollectAggregates(*a.value(), &nodes);
  EXPECT_EQ(nodes.size(), 2u);

  auto b = Parser::ParseExpression("salary + 1 > 2");
  EXPECT_FALSE(ContainsAggregate(*b.value()));

  // Aggregates inside subqueries do NOT count at this level.
  auto c = Parser::ParseExpression(
      "salary > (select avg(salary) from emp)");
  EXPECT_FALSE(ContainsAggregate(*c.value()));
}

}  // namespace
}  // namespace sopr
