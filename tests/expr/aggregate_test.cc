// AggregateAccumulator unit tests: SQL NULL handling, distinct, type
// promotion, and empty-input semantics for every function.

#include "expr/aggregate.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sopr {
namespace {

Value Finish(AggregateAccumulator& acc) {
  auto v = acc.Finish();
  EXPECT_TRUE(v.ok()) << v.status();
  return v.ok() ? std::move(v).value() : Value::Null();
}

TEST(Aggregate, CountStarAndCountColumn) {
  AggregateAccumulator star(AggFunc::kCount, false);
  // count(*) is fed one non-null marker per row.
  for (int i = 0; i < 5; ++i) ASSERT_OK(star.Add(Value::Bool(true)));
  EXPECT_EQ(Finish(star), Value::Int(5));

  AggregateAccumulator col(AggFunc::kCount, false);
  ASSERT_OK(col.Add(Value::Int(1)));
  ASSERT_OK(col.Add(Value::Null()));  // skipped
  ASSERT_OK(col.Add(Value::Int(2)));
  EXPECT_EQ(Finish(col), Value::Int(2));
}

TEST(Aggregate, SumIntStaysInt) {
  AggregateAccumulator acc(AggFunc::kSum, false);
  ASSERT_OK(acc.Add(Value::Int(1)));
  ASSERT_OK(acc.Add(Value::Int(2)));
  ASSERT_OK(acc.Add(Value::Int(3)));
  EXPECT_EQ(Finish(acc), Value::Int(6));
}

TEST(Aggregate, SumPromotesOnDouble) {
  AggregateAccumulator acc(AggFunc::kSum, false);
  ASSERT_OK(acc.Add(Value::Int(1)));
  ASSERT_OK(acc.Add(Value::Double(2.5)));
  ASSERT_OK(acc.Add(Value::Int(3)));
  EXPECT_EQ(Finish(acc), Value::Double(6.5));
}

TEST(Aggregate, EmptyInputs) {
  AggregateAccumulator count(AggFunc::kCount, false);
  EXPECT_EQ(Finish(count), Value::Int(0));
  AggregateAccumulator sum(AggFunc::kSum, false);
  EXPECT_TRUE(Finish(sum).is_null());
  AggregateAccumulator avg(AggFunc::kAvg, false);
  EXPECT_TRUE(Finish(avg).is_null());
  AggregateAccumulator mn(AggFunc::kMin, false);
  EXPECT_TRUE(Finish(mn).is_null());
  AggregateAccumulator mx(AggFunc::kMax, false);
  EXPECT_TRUE(Finish(mx).is_null());
}

TEST(Aggregate, AllNullInputsBehaveLikeEmpty) {
  AggregateAccumulator sum(AggFunc::kSum, false);
  ASSERT_OK(sum.Add(Value::Null()));
  ASSERT_OK(sum.Add(Value::Null()));
  EXPECT_TRUE(Finish(sum).is_null());
}

TEST(Aggregate, AvgIsAlwaysDouble) {
  AggregateAccumulator acc(AggFunc::kAvg, false);
  ASSERT_OK(acc.Add(Value::Int(1)));
  ASSERT_OK(acc.Add(Value::Int(2)));
  EXPECT_EQ(Finish(acc), Value::Double(1.5));
}

TEST(Aggregate, MinMaxNumericAndString) {
  AggregateAccumulator mn(AggFunc::kMin, false);
  ASSERT_OK(mn.Add(Value::Int(5)));
  ASSERT_OK(mn.Add(Value::Double(2.5)));
  ASSERT_OK(mn.Add(Value::Int(7)));
  EXPECT_EQ(Finish(mn), Value::Double(2.5));

  AggregateAccumulator mx(AggFunc::kMax, false);
  ASSERT_OK(mx.Add(Value::String("apple")));
  ASSERT_OK(mx.Add(Value::String("pear")));
  ASSERT_OK(mx.Add(Value::String("fig")));
  EXPECT_EQ(Finish(mx), Value::String("pear"));
}

TEST(Aggregate, DistinctDeduplicates) {
  AggregateAccumulator count(AggFunc::kCount, true);
  ASSERT_OK(count.Add(Value::Int(1)));
  ASSERT_OK(count.Add(Value::Int(1)));
  ASSERT_OK(count.Add(Value::Int(2)));
  ASSERT_OK(count.Add(Value::Null()));
  EXPECT_EQ(Finish(count), Value::Int(2));

  AggregateAccumulator sum(AggFunc::kSum, true);
  ASSERT_OK(sum.Add(Value::Int(3)));
  ASSERT_OK(sum.Add(Value::Int(3)));
  ASSERT_OK(sum.Add(Value::Int(4)));
  EXPECT_EQ(Finish(sum), Value::Int(7));
}

TEST(Aggregate, DistinctIsStructural) {
  // 2 (int) and 2.0 (double) are structurally distinct values.
  AggregateAccumulator count(AggFunc::kCount, true);
  ASSERT_OK(count.Add(Value::Int(2)));
  ASSERT_OK(count.Add(Value::Double(2.0)));
  EXPECT_EQ(Finish(count), Value::Int(2));
}

TEST(Aggregate, SumRejectsNonNumeric) {
  AggregateAccumulator acc(AggFunc::kSum, false);
  EXPECT_EQ(acc.Add(Value::String("x")).code(), StatusCode::kTypeError);
  AggregateAccumulator avg(AggFunc::kAvg, false);
  EXPECT_EQ(avg.Add(Value::Bool(true)).code(), StatusCode::kTypeError);
}

TEST(Aggregate, IntSumOverflowPromotesToDouble) {
  AggregateAccumulator acc(AggFunc::kSum, false);
  ASSERT_OK(acc.Add(Value::Int(INT64_MAX)));
  ASSERT_OK(acc.Add(Value::Int(INT64_MAX)));
  auto v = acc.Finish();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().type(), ValueType::kDouble);
  EXPECT_GT(v.value().AsDouble(), 1.8e19);
}

TEST(Aggregate, LargeIntSumExactness) {
  AggregateAccumulator acc(AggFunc::kSum, false);
  // 2^53 + 1 is not representable as double; int accumulation keeps it.
  int64_t big = (int64_t{1} << 53);
  ASSERT_OK(acc.Add(Value::Int(big)));
  ASSERT_OK(acc.Add(Value::Int(1)));
  EXPECT_EQ(Finish(acc), Value::Int(big + 1));
}

}  // namespace
}  // namespace sopr
