// Differential property suite for the batch predicate evaluator
// (src/exec/batch_evaluator.h): generated expression trees over
// adversarial columns, evaluated batch-at-a-time and row-at-a-time, must
// agree bit-exactly — same TriBool per selected position when both
// succeed, and the SAME error (code and message) when the row-order
// scalar run fails. This is the expression-level half of the
// differential-oracle contract in docs/EXECUTION.md; the engine-level
// half is tests/rules/vectorized_differential_test.cc.
//
// Adversarial inputs: NULLs in every column, INT64 boundaries, -0.0 vs
// +0.0, empty strings, division by zero, type-mismatched comparisons,
// empty batches, 1-row batches, and selection vectors that skip rows
// (including the rows that would error — a skipped row must not leak an
// error into the batch result).

#include "exec/batch_evaluator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "exec/row_batch.h"
#include "expr/evaluator.h"
#include "sql/parser.h"
#include "test_util.h"

namespace sopr {
namespace {

using exec::RowBatch;
using exec::SelVec;

// --- Adversarial row pool -------------------------------------------------

constexpr int64_t kIntMax = std::numeric_limits<int64_t>::max();
constexpr int64_t kIntMin = std::numeric_limits<int64_t>::min();

Value RandomInt(std::mt19937& rng) {
  static const int64_t kPool[] = {0, 1, -1, 2, 7, -7, 100, kIntMax, kIntMin,
                                  kIntMax - 1, kIntMin + 1};
  if (rng() % 4 == 0) return Value::Null();
  return Value::Int(kPool[rng() % (sizeof(kPool) / sizeof(kPool[0]))]);
}

Value RandomDouble(std::mt19937& rng) {
  static const double kPool[] = {0.0,  -0.0, 1.0,   -1.0,  0.5,
                                 -0.5, 2.0,  1e300, -1e300, 1e-300};
  if (rng() % 4 == 0) return Value::Null();
  return Value::Double(kPool[rng() % (sizeof(kPool) / sizeof(kPool[0]))]);
}

Value RandomString(std::mt19937& rng) {
  static const char* kPool[] = {"", "a", "b", "ab", "A", "zz", "0"};
  if (rng() % 4 == 0) return Value::Null();
  return Value::String(kPool[rng() % (sizeof(kPool) / sizeof(kPool[0]))]);
}

Row RandomRow(std::mt19937& rng) {
  return Row({RandomInt(rng), RandomDouble(rng), RandomString(rng)});
}

// --- Expression grammar ---------------------------------------------------
// Produces predicate SQL over columns i (int), d (double), s (string).
// Deliberately includes type errors (s + 1), division by zero (x / 0 for
// rows where the divisor lands on zero), and NULL literals, because the
// contract covers error equivalence, not just value equivalence.

std::string GenScalar(std::mt19937& rng, int depth) {
  if (depth <= 0 || rng() % 3 == 0) {
    switch (rng() % 8) {
      case 0: return "i";
      case 1: return "d";
      case 2: return "s";
      case 3: return "0";
      case 4: return "1";
      case 5: return "null";
      case 6: return "2.5";
      default: return "'a'";
    }
  }
  static const char* kOps[] = {"+", "-", "*", "/"};
  return "(" + GenScalar(rng, depth - 1) + " " + kOps[rng() % 4] + " " +
         GenScalar(rng, depth - 1) + ")";
}

std::string GenPred(std::mt19937& rng, int depth) {
  if (depth <= 0 || rng() % 4 == 0) {
    switch (rng() % 6) {
      case 0: {
        static const char* kCmp[] = {"=", "<>", "<", "<=", ">", ">="};
        return "(" + GenScalar(rng, 2) + " " + kCmp[rng() % 6] + " " +
               GenScalar(rng, 2) + ")";
      }
      case 1: return "(" + GenScalar(rng, 1) + " is null)";
      case 2: return "(" + GenScalar(rng, 1) + " is not null)";
      case 3: return "(i in (0, 1, null, " + GenScalar(rng, 1) + "))";
      case 4: return "(d between -1.0 and " + GenScalar(rng, 1) + ")";
      default: return "(s in ('', 'a', 'zz'))";
    }
  }
  switch (rng() % 3) {
    case 0: return "(" + GenPred(rng, depth - 1) + " and " +
                   GenPred(rng, depth - 1) + ")";
    case 1: return "(" + GenPred(rng, depth - 1) + " or " +
                   GenPred(rng, depth - 1) + ")";
    default: return "(not " + GenPred(rng, depth - 1) + ")";
  }
}

// --- The differential oracle ---------------------------------------------

class BatchDifferential : public ::testing::TestWithParam<uint32_t> {
 protected:
  BatchDifferential()
      : schema_("t", {{"i", ValueType::kInt},
                      {"d", ValueType::kDouble},
                      {"s", ValueType::kString}}) {
    EXPECT_TRUE(scope_.AddBinding("t", &schema_).ok());
  }

  /// Runs `expr` both ways over `rows` restricted to `sel` and asserts
  /// the batch result is indistinguishable from the row-order scalar
  /// run: first scalar error == batch error, otherwise elementwise
  /// equal TriBools.
  void CheckOne(const Expr& expr, const std::vector<Row>& rows,
                const SelVec& sel, const std::string& sql) {
    RowBatch batch(1);
    for (const Row& r : rows) {
      batch.AppendAllNull();
      batch.SetBack(0, &r);
    }

    EvalContext ctx;  // no subquery runner: subqueries would error alike
    std::vector<TriBool> got;
    Status batch_status =
        exec::EvaluatePredicateBatch(expr, &scope_, ctx, batch, sel, &got);

    // Row-order scalar reference. `want[i]` pairs with `sel[i]`, the
    // same layout the batch evaluator uses for its output.
    Status scalar_status = Status::OK();
    std::vector<TriBool> want;
    for (uint32_t pos : sel) {
      scope_.SetRow(0, &rows[pos]);
      auto r = EvaluatePredicate(expr, scope_, ctx);
      if (!r.ok()) {
        scalar_status = r.status();
        break;
      }
      want.push_back(r.value());
    }
    scope_.SetRow(0, nullptr);

    if (!scalar_status.ok()) {
      ASSERT_FALSE(batch_status.ok())
          << sql << ": scalar failed (" << scalar_status
          << ") but batch succeeded";
      EXPECT_EQ(batch_status.code(), scalar_status.code()) << sql;
      EXPECT_EQ(batch_status.message(), scalar_status.message()) << sql;
      return;
    }
    ASSERT_TRUE(batch_status.ok()) << sql << " -> " << batch_status;
    ASSERT_EQ(got.size(), want.size()) << sql;
    for (size_t i = 0; i < sel.size(); ++i) {
      EXPECT_EQ(got[i], want[i])
          << sql << " diverges at selected position " << sel[i];
    }
  }

  TableSchema schema_;
  Scope scope_;
};

TEST_P(BatchDifferential, RandomTreesOverAdversarialColumns) {
  std::mt19937 rng(GetParam() * 2654435761u + 17);
  std::vector<Row> rows;
  const size_t n = 1 + rng() % 200;
  for (size_t i = 0; i < n; ++i) rows.push_back(RandomRow(rng));

  for (int t = 0; t < 40; ++t) {
    const std::string sql = GenPred(rng, 3);
    auto expr = Parser::ParseExpression(sql);
    ASSERT_TRUE(expr.ok()) << sql << " -> " << expr.status();

    // Full selection.
    SelVec full;
    for (uint32_t i = 0; i < rows.size(); ++i) full.push_back(i);
    CheckOne(*expr.value(), rows, full, sql);

    // Random subset (may skip the very rows that would error).
    SelVec subset;
    for (uint32_t i = 0; i < rows.size(); ++i) {
      if (rng() % 2 == 0) subset.push_back(i);
    }
    CheckOne(*expr.value(), rows, subset, sql);

    // Singleton and empty selections — the degenerate batch edges.
    CheckOne(*expr.value(), rows,
             SelVec{static_cast<uint32_t>(rng() % rows.size())}, sql);
    CheckOne(*expr.value(), rows, SelVec{}, sql);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchDifferential,
                         ::testing::Range(0u, 12u));

// --- Pinned regression cases ---------------------------------------------

class BatchFixed : public BatchDifferential {};

TEST_F(BatchFixed, ShortCircuitSuppressesErrorsIdentically) {
  // Scalar short-circuits `false and X` without evaluating X; the batch
  // path must narrow the rhs selection identically, so the division by
  // zero is never evaluated on either path.
  std::vector<Row> rows = {
      Row({Value::Int(0), Value::Double(1.0), Value::String("x")})};
  auto expr = Parser::ParseExpression("(i = 1) and (1 / i = 1)");
  ASSERT_OK(expr.status());
  CheckOne(*expr.value(), rows, SelVec{0}, "(i = 1) and (1 / i = 1)");

  // And the dual: `true or X` suppresses the rhs.
  auto expr2 = Parser::ParseExpression("(i = 0) or (1 / i = 1)");
  ASSERT_OK(expr2.status());
  CheckOne(*expr2.value(), rows, SelVec{0}, "(i = 0) or (1 / i = 1)");
}

TEST_F(BatchFixed, MixedRowsFirstErrorInRowOrderWins) {
  // Rows 0 and 2 divide by zero; row 1 is fine. The batch error must be
  // the row-0 error, exactly as the scalar loop reports it.
  std::vector<Row> rows = {
      Row({Value::Int(0), Value::Double(1.0), Value::String("")}),
      Row({Value::Int(2), Value::Double(1.0), Value::String("")}),
      Row({Value::Int(0), Value::Double(1.0), Value::String("")})};
  auto expr = Parser::ParseExpression("10 / i > 1");
  ASSERT_OK(expr.status());
  CheckOne(*expr.value(), rows, SelVec{0, 1, 2}, "10 / i > 1");
  // Skipping row 0 must surface row 2's error instead (same code, and
  // no error at all when only row 1 is selected).
  CheckOne(*expr.value(), rows, SelVec{1, 2}, "10 / i > 1");
  CheckOne(*expr.value(), rows, SelVec{1}, "10 / i > 1");
}

TEST_F(BatchFixed, TypeErrorsMatchScalar) {
  std::vector<Row> rows = {
      Row({Value::Int(1), Value::Double(0.0), Value::String("a")})};
  for (const char* sql : {"s + 1 = 2", "s * 2 > 0", "i and d"}) {
    auto expr = Parser::ParseExpression(sql);
    ASSERT_TRUE(expr.ok()) << sql << " -> " << expr.status();
    CheckOne(*expr.value(), rows, SelVec{0}, sql);
  }
}

TEST_F(BatchFixed, NegativeZeroAndIntBoundaries) {
  std::vector<Row> rows = {
      Row({Value::Int(kIntMax), Value::Double(-0.0), Value::String("")}),
      Row({Value::Int(kIntMin), Value::Double(0.0), Value::String("")}),
      Row({Value::Null(), Value::Null(), Value::Null()})};
  for (const char* sql :
       {"d = 0", "d < 0", "i > 0", "i + 1 > 0", "i - 1 < 0",
        "d between -0.0 and 0.0", "i is null", "s = ''"}) {
    auto expr = Parser::ParseExpression(sql);
    ASSERT_TRUE(expr.ok()) << sql << " -> " << expr.status();
    CheckOne(*expr.value(), rows, SelVec{0, 1, 2}, sql);
  }
}

TEST_F(BatchFixed, EmptyBatch) {
  std::vector<Row> rows;
  RowBatch batch(1);
  EvalContext ctx;
  auto expr = Parser::ParseExpression("i > 0");
  ASSERT_OK(expr.status());
  std::vector<TriBool> out;
  ASSERT_OK(exec::EvaluatePredicateBatch(*expr.value(), &scope_, ctx, batch,
                                         SelVec{}, &out));
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace sopr
