// Differential property suite for the columnar predicate kernels
// (src/exec/kernels.h via exec::EvaluatePredicateColumnar): generated
// expression trees over adversarial decomposed columns must be
// indistinguishable from BOTH the row-at-a-time scalar evaluator and the
// pointer-vector batch evaluator — same TriBool per selected position
// when all succeed, and the SAME error (code and message, taken from the
// authoritative row-order scalar re-run) when the scalar run fails. This
// is the kernel-level third of the differential-oracle contract in
// docs/EXECUTION.md; the engine-level part is
// tests/rules/vectorized_differential_test.cc.
//
// Adversarial inputs: NULL-heavy columns, INT64 min/max (overflow
// promotion), -0.0 vs +0.0, NaN, empty and long strings, division by
// zero, type-mismatched comparisons, bool-typed columns, and
// full/subset/singleton/empty selection vectors (a skipped row must not
// leak an error into the result). kernel_property_asan_test reruns the
// suite under ASan+UBSan when -DSOPR_SANITIZE=ON, checking the borrowed
// string pointers and dummy-lane reads of the columnar layout.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "exec/batch_evaluator.h"
#include "exec/column_vector.h"
#include "exec/row_batch.h"
#include "exec/stats.h"
#include "expr/evaluator.h"
#include "sql/parser.h"
#include "test_util.h"

namespace sopr {
namespace {

using exec::ColumnSet;
using exec::ColumnVector;
using exec::RowBatch;
using exec::SelVec;

constexpr int64_t kIntMax = std::numeric_limits<int64_t>::max();
constexpr int64_t kIntMin = std::numeric_limits<int64_t>::min();

// --- Adversarial column pool ----------------------------------------------
// NULL-heavy (~1/3) so null-mask handling is exercised on every kernel.

Value RandomInt(std::mt19937& rng) {
  static const int64_t kPool[] = {0,       1,        -1,          2,
                                  7,       -7,       100,         kIntMax,
                                  kIntMin, kIntMax - 1, kIntMin + 1};
  if (rng() % 3 == 0) return Value::Null();
  return Value::Int(kPool[rng() % (sizeof(kPool) / sizeof(kPool[0]))]);
}

Value RandomDouble(std::mt19937& rng) {
  static const double kNan = std::numeric_limits<double>::quiet_NaN();
  static const double kPool[] = {0.0,  -0.0, 1.0,   -1.0,   0.5,  -0.5,
                                 2.0,  kNan, 1e300, -1e300, 1e-300};
  if (rng() % 3 == 0) return Value::Null();
  return Value::Double(kPool[rng() % (sizeof(kPool) / sizeof(kPool[0]))]);
}

Value RandomString(std::mt19937& rng) {
  static const std::string kLong(300, 'q');
  static const std::string kPool[] = {"", "a", "b", "ab", "A", "zz", "0",
                                      kLong};
  if (rng() % 3 == 0) return Value::Null();
  return Value::String(kPool[rng() % (sizeof(kPool) / sizeof(kPool[0]))]);
}

Value RandomBool(std::mt19937& rng) {
  if (rng() % 3 == 0) return Value::Null();
  return Value::Bool(rng() % 2 == 0);
}

Row RandomRow(std::mt19937& rng) {
  return Row({RandomInt(rng), RandomDouble(rng), RandomString(rng),
              RandomBool(rng)});
}

// --- Expression grammar ---------------------------------------------------
// Predicates over columns i (int), d (double), s (string), bl (bool).
// Deliberately includes type errors (s + 1), division by zero, NULL
// literals, and negation, because the contract covers error equivalence
// (via the authoritative scalar re-run), not just value equivalence.

std::string GenScalar(std::mt19937& rng, int depth) {
  if (depth <= 0 || rng() % 3 == 0) {
    switch (rng() % 9) {
      case 0: return "i";
      case 1: return "d";
      case 2: return "s";
      case 3: return "0";
      case 4: return "1";
      case 5: return "null";
      case 6: return "2.5";
      case 7: return "(- i)";
      default: return "'a'";
    }
  }
  static const char* kOps[] = {"+", "-", "*", "/"};
  return "(" + GenScalar(rng, depth - 1) + " " + kOps[rng() % 4] + " " +
         GenScalar(rng, depth - 1) + ")";
}

std::string GenPred(std::mt19937& rng, int depth) {
  if (depth <= 0 || rng() % 4 == 0) {
    switch (rng() % 8) {
      case 0: {
        static const char* kCmp[] = {"=", "<>", "<", "<=", ">", ">="};
        return "(" + GenScalar(rng, 2) + " " + kCmp[rng() % 6] + " " +
               GenScalar(rng, 2) + ")";
      }
      case 1: return "(" + GenScalar(rng, 1) + " is null)";
      case 2: return "(" + GenScalar(rng, 1) + " is not null)";
      case 3: return "(i in (0, 1, null, " + GenScalar(rng, 1) + "))";
      case 4: return "(d between -1.0 and " + GenScalar(rng, 1) + ")";
      case 5: return "(bl = (i > 0))";
      case 6: return "(bl is null)";
      default: return "(s in ('', 'a', 'zz'))";
    }
  }
  switch (rng() % 3) {
    case 0: return "(" + GenPred(rng, depth - 1) + " and " +
                   GenPred(rng, depth - 1) + ")";
    case 1: return "(" + GenPred(rng, depth - 1) + " or " +
                   GenPred(rng, depth - 1) + ")";
    default: return "(not " + GenPred(rng, depth - 1) + ")";
  }
}

// --- The three-way differential oracle ------------------------------------

class KernelDifferential : public ::testing::TestWithParam<uint32_t> {
 protected:
  KernelDifferential()
      : schema_("t", {{"i", ValueType::kInt},
                      {"d", ValueType::kDouble},
                      {"s", ValueType::kString},
                      {"bl", ValueType::kBool}}) {
    EXPECT_TRUE(scope_.AddBinding("t", &schema_).ok());
  }

  /// Runs `expr` three ways over `rows` restricted to `sel`: columnar
  /// (all four columns decomposed), pointer-vector, and the row-order
  /// scalar reference. Asserts the columnar result is indistinguishable
  /// from the scalar run (first scalar error or elementwise TriBools)
  /// and that the two batch paths agree with each other.
  void CheckOne(const Expr& expr, const std::vector<Row>& rows,
                const SelVec& sel, const std::string& sql) {
    RowBatch batch(1);
    for (const Row& r : rows) {
      batch.AppendAllNull();
      batch.SetBack(0, &r);
    }
    std::vector<ColumnVector> storage(schema_.num_columns());
    ColumnSet cols;
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      ASSERT_TRUE(exec::BuildColumn(rows, c, schema_.columns()[c].type,
                                    &storage[c]))
          << "column " << c << " must decompose (typed storage)";
      cols.Add(0, c, &storage[c]);
    }

    EvalContext ctx;  // no subquery runner: subqueries would error alike
    std::vector<TriBool> got;
    Status columnar_status = exec::EvaluatePredicateColumnar(
        expr, &scope_, ctx, batch, cols, sel, &got);
    std::vector<TriBool> ptr_got;
    Status ptr_status = exec::EvaluatePredicateBatch(expr, &scope_, ctx,
                                                     batch, sel, &ptr_got);

    // Row-order scalar reference. `want[i]` pairs with `sel[i]`.
    Status scalar_status = Status::OK();
    std::vector<TriBool> want;
    for (uint32_t pos : sel) {
      scope_.SetRow(0, &rows[pos]);
      auto r = EvaluatePredicate(expr, scope_, ctx);
      if (!r.ok()) {
        scalar_status = r.status();
        break;
      }
      want.push_back(r.value());
    }
    scope_.SetRow(0, nullptr);

    if (!scalar_status.ok()) {
      ASSERT_FALSE(columnar_status.ok())
          << sql << ": scalar failed (" << scalar_status
          << ") but columnar succeeded";
      EXPECT_EQ(columnar_status.code(), scalar_status.code()) << sql;
      EXPECT_EQ(columnar_status.message(), scalar_status.message()) << sql;
      ASSERT_FALSE(ptr_status.ok()) << sql;
      EXPECT_EQ(columnar_status.code(), ptr_status.code()) << sql;
      EXPECT_EQ(columnar_status.message(), ptr_status.message()) << sql;
      return;
    }
    ASSERT_TRUE(columnar_status.ok()) << sql << " -> " << columnar_status;
    ASSERT_TRUE(ptr_status.ok()) << sql << " -> " << ptr_status;
    ASSERT_EQ(got.size(), want.size()) << sql;
    ASSERT_EQ(ptr_got.size(), want.size()) << sql;
    for (size_t i = 0; i < sel.size(); ++i) {
      EXPECT_EQ(got[i], want[i])
          << sql << " columnar diverges from scalar at selected position "
          << sel[i];
      EXPECT_EQ(got[i], ptr_got[i])
          << sql << " columnar diverges from pointer-vector at position "
          << sel[i];
    }
  }

  TableSchema schema_;
  Scope scope_;
};

TEST_P(KernelDifferential, RandomTreesOverAdversarialColumns) {
  std::mt19937 rng(GetParam() * 2654435761u + 29);
  std::vector<Row> rows;
  const size_t n = 1 + rng() % 200;
  for (size_t i = 0; i < n; ++i) rows.push_back(RandomRow(rng));

  for (int t = 0; t < 40; ++t) {
    const std::string sql = GenPred(rng, 3);
    auto expr = Parser::ParseExpression(sql);
    ASSERT_TRUE(expr.ok()) << sql << " -> " << expr.status();

    // Full selection.
    SelVec full;
    for (uint32_t i = 0; i < rows.size(); ++i) full.push_back(i);
    CheckOne(*expr.value(), rows, full, sql);

    // Random subset (may skip the very rows that would error).
    SelVec subset;
    for (uint32_t i = 0; i < rows.size(); ++i) {
      if (rng() % 2 == 0) subset.push_back(i);
    }
    CheckOne(*expr.value(), rows, subset, sql);

    // Singleton and empty selections — the degenerate batch edges.
    CheckOne(*expr.value(), rows,
             SelVec{static_cast<uint32_t>(rng() % rows.size())}, sql);
    CheckOne(*expr.value(), rows, SelVec{}, sql);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelDifferential,
                         ::testing::Range(0u, 12u));

// --- Pinned kernel edge cases ---------------------------------------------

class KernelFixed : public KernelDifferential {};

TEST_F(KernelFixed, KernelsActuallyEngage) {
  // Guard against the suite silently passing because every expression
  // fell back to the pointer path: a plainly kernel-eligible predicate
  // must bump the engagement counters.
  std::vector<Row> rows = {
      Row({Value::Int(1), Value::Double(2.0), Value::String("a"),
           Value::Bool(true)}),
      Row({Value::Null(), Value::Null(), Value::Null(), Value::Null()})};
  const uint64_t chunks = exec::GlobalStats().columnar_chunks.load();
  const uint64_t compares = exec::GlobalStats().kernel_compare.load();
  const uint64_t ariths = exec::GlobalStats().kernel_arith.load();
  const uint64_t nullchecks = exec::GlobalStats().kernel_null_check.load();
  auto expr =
      Parser::ParseExpression("(i + 1 > 0 and d * 2 < 10) or s is null");
  ASSERT_OK(expr.status());
  CheckOne(*expr.value(), rows, SelVec{0, 1},
           "(i + 1 > 0 and d * 2 < 10) or s is null");
  EXPECT_GT(exec::GlobalStats().columnar_chunks.load(), chunks);
  EXPECT_GT(exec::GlobalStats().kernel_compare.load(), compares);
  EXPECT_GT(exec::GlobalStats().kernel_arith.load(), ariths);
  EXPECT_GT(exec::GlobalStats().kernel_null_check.load(), nullchecks);
}

TEST_F(KernelFixed, ShortCircuitSuppressesErrorsIdentically) {
  // Scalar short-circuits `false and X` without evaluating X; the
  // columnar path must narrow the rhs selection identically, so the
  // division by zero is never evaluated on any path.
  std::vector<Row> rows = {Row({Value::Int(0), Value::Double(1.0),
                                Value::String("x"), Value::Bool(false)})};
  auto expr = Parser::ParseExpression("(i = 1) and (1 / i = 1)");
  ASSERT_OK(expr.status());
  CheckOne(*expr.value(), rows, SelVec{0}, "(i = 1) and (1 / i = 1)");

  auto expr2 = Parser::ParseExpression("(i = 0) or (1 / i = 1)");
  ASSERT_OK(expr2.status());
  CheckOne(*expr2.value(), rows, SelVec{0}, "(i = 0) or (1 / i = 1)");
}

TEST_F(KernelFixed, DivisionEdgesMatchScalar) {
  // Division by zero (the scalar re-run's error must surface), the
  // int-exact vs inexact quotient split (7 / 2 = 3.5 promotes to
  // double), and INT64_MIN / -1 (overflow promotes to double).
  std::vector<Row> rows = {
      Row({Value::Int(0), Value::Double(0.0), Value::String(""),
           Value::Bool(false)}),
      Row({Value::Int(2), Value::Double(2.0), Value::String(""),
           Value::Bool(false)}),
      Row({Value::Int(-1), Value::Double(-0.5), Value::String(""),
           Value::Bool(false)}),
      Row({Value::Int(kIntMin), Value::Null(), Value::Null(),
           Value::Null()})};
  for (const char* sql :
       {"10 / i > 1", "7 / 2 = 3.5", "i / (- 1) > 0", "d / 2 < 1",
        "(i / d) >= 0"}) {
    auto expr = Parser::ParseExpression(sql);
    ASSERT_TRUE(expr.ok()) << sql << " -> " << expr.status();
    CheckOne(*expr.value(), rows, SelVec{0, 1, 2, 3}, sql);
    CheckOne(*expr.value(), rows, SelVec{1, 2, 3}, sql);
    CheckOne(*expr.value(), rows, SelVec{1}, sql);
  }
}

TEST_F(KernelFixed, OverflowPromotionMatchesScalar) {
  // INT64 boundary arithmetic: the kernels must promote exactly where
  // Value::Add/Sub/Mul promote, and produce the identical widened
  // double, including above 2^53 where (double)a op (double)b differs
  // from (double)(a op b).
  std::vector<Row> rows = {
      Row({Value::Int(kIntMax), Value::Double(1.0), Value::String(""),
           Value::Bool(true)}),
      Row({Value::Int(kIntMin), Value::Double(-1.0), Value::String(""),
           Value::Bool(true)}),
      Row({Value::Int((int64_t{1} << 53) + 1), Value::Double(0.0),
           Value::String(""), Value::Bool(true)})};
  for (const char* sql :
       {"i + 1 > 0", "i - 1 < 0", "i * 2 > i", "i + 0 = i", "(- i) < 0",
        "i * i >= 0"}) {
    auto expr = Parser::ParseExpression(sql);
    ASSERT_TRUE(expr.ok()) << sql << " -> " << expr.status();
    CheckOne(*expr.value(), rows, SelVec{0, 1, 2}, sql);
  }
}

TEST_F(KernelFixed, NegativeZeroAndNaN) {
  static const double kNan = std::numeric_limits<double>::quiet_NaN();
  std::vector<Row> rows = {
      Row({Value::Int(0), Value::Double(-0.0), Value::String(""),
           Value::Bool(false)}),
      Row({Value::Int(1), Value::Double(0.0), Value::String(""),
           Value::Bool(true)}),
      Row({Value::Int(2), Value::Double(kNan), Value::String(""),
           Value::Bool(true)})};
  for (const char* sql :
       {"d = 0", "d < 0", "d <= 0", "d > 0", "d >= 0", "d <> 0",
        "d between -0.0 and 0.0", "d = d", "d < d", "d <= d"}) {
    auto expr = Parser::ParseExpression(sql);
    ASSERT_TRUE(expr.ok()) << sql << " -> " << expr.status();
    CheckOne(*expr.value(), rows, SelVec{0, 1, 2}, sql);
  }
}

TEST_F(KernelFixed, StringsEmptyAndLong) {
  static const std::string kLong(300, 'q');
  std::vector<Row> rows = {
      Row({Value::Int(0), Value::Double(0.0), Value::String(""),
           Value::Bool(false)}),
      Row({Value::Int(1), Value::Double(0.0), Value::String(kLong),
           Value::Bool(false)}),
      Row({Value::Int(2), Value::Double(0.0), Value::String("a"),
           Value::Bool(false)}),
      Row({Value::Int(3), Value::Double(0.0), Value::Null(),
           Value::Bool(false)})};
  const std::string long_lit = "'" + kLong + "'";
  const std::vector<std::string> preds = {
      "s = ''",           "s < 'b'",
      "s >= 'a'",         "s <> 'a'",
      "s = " + long_lit,  "s <= " + long_lit,
      "s in ('', 'a', " + long_lit + ")", "s is not null"};
  for (const std::string& sql : preds) {
    auto expr = Parser::ParseExpression(sql);
    ASSERT_TRUE(expr.ok()) << sql << " -> " << expr.status();
    CheckOne(*expr.value(), rows, SelVec{0, 1, 2, 3}, sql);
  }
}

TEST_F(KernelFixed, BoolColumnsAndTypeMismatches) {
  std::vector<Row> rows = {
      Row({Value::Int(1), Value::Double(0.0), Value::String("a"),
           Value::Bool(true)}),
      Row({Value::Int(0), Value::Double(1.0), Value::String("b"),
           Value::Bool(false)}),
      Row({Value::Int(-1), Value::Double(2.0), Value::Null(),
           Value::Null()})};
  for (const char* sql :
       {"bl = (i > 0)", "bl <> (d > 0)", "bl is null", "bl is not null",
        // Cross-type comparisons are Unknown lanewise, and bool < bool
        // is Unknown too — both must match the scalar evaluator.
        "s = 1", "bl < bl", "i = d", "s = bl"}) {
    auto expr = Parser::ParseExpression(sql);
    ASSERT_TRUE(expr.ok()) << sql << " -> " << expr.status();
    CheckOne(*expr.value(), rows, SelVec{0, 1, 2}, sql);
  }
}

TEST_F(KernelFixed, TypeErrorsMatchScalar) {
  std::vector<Row> rows = {Row({Value::Int(1), Value::Double(0.0),
                                Value::String("a"), Value::Bool(true)})};
  for (const char* sql : {"s + 1 = 2", "s * 2 > 0", "i and d", "bl + 1 = 1"}) {
    auto expr = Parser::ParseExpression(sql);
    ASSERT_TRUE(expr.ok()) << sql << " -> " << expr.status();
    CheckOne(*expr.value(), rows, SelVec{0}, sql);
  }
}

TEST_F(KernelFixed, EmptyColumnsAndEmptySelection) {
  std::vector<Row> rows;
  RowBatch batch(1);
  ColumnSet cols;  // nothing decomposed: every leaf would fall back
  EvalContext ctx;
  auto expr = Parser::ParseExpression("i > 0");
  ASSERT_OK(expr.status());
  std::vector<TriBool> out;
  ASSERT_OK(exec::EvaluatePredicateColumnar(*expr.value(), &scope_, ctx,
                                            batch, cols, SelVec{}, &out));
  EXPECT_TRUE(out.empty());
}

TEST_F(KernelFixed, MissingColumnsFallBackPointered) {
  // An empty ColumnSet must still produce scalar-identical results (the
  // per-expression pointer fallback), counted in pointer_fallback_preds.
  std::vector<Row> rows = {Row({Value::Int(5), Value::Double(1.5),
                                Value::String("a"), Value::Bool(true)})};
  RowBatch batch(1);
  batch.AppendAllNull();
  batch.SetBack(0, &rows[0]);
  ColumnSet cols;
  EvalContext ctx;
  const uint64_t fallbacks =
      exec::GlobalStats().pointer_fallback_preds.load();
  auto expr = Parser::ParseExpression("i > 4 and d < 2.0");
  ASSERT_OK(expr.status());
  std::vector<TriBool> out;
  ASSERT_OK(exec::EvaluatePredicateColumnar(*expr.value(), &scope_, ctx,
                                            batch, cols, SelVec{0}, &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], TriBool::kTrue);
  EXPECT_GT(exec::GlobalStats().pointer_fallback_preds.load(), fallbacks);
}

}  // namespace
}  // namespace sopr
