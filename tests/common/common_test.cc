// Common layer: Status/Result model, macros, string utilities, Row.

#include <gtest/gtest.h>

#include "common/status.h"
#include "common/string_util.h"
#include "rules/trace_format.h"
#include "test_util.h"
#include "types/row.h"

namespace sopr {
namespace {

TEST(Status, OkAndErrorStates) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_EQ(ok.ToString(), "OK");

  Status err = Status::ParseError("bad token");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kParseError);
  EXPECT_EQ(err.message(), "bad token");
  EXPECT_EQ(err.ToString(), "ParseError: bad token");
}

TEST(Status, AllCodesNamed) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kCatalogError, StatusCode::kTypeError,
        StatusCode::kExecutionError, StatusCode::kConstraintError,
        StatusCode::kRolledBack, StatusCode::kLimitExceeded,
        StatusCode::kNotImplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v * 2;
}

Status UseResult(int v, int* out) {
  SOPR_ASSIGN_OR_RETURN(*out, ParsePositive(v));
  return Status::OK();
}

TEST(Result, ValueAndStatusPaths) {
  Result<int> good = ParsePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(good.ValueOr(-1), 42);

  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.ValueOr(-1), -1);
}

TEST(Result, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_OK(UseResult(5, &out));
  EXPECT_EQ(out, 10);
  EXPECT_EQ(UseResult(-5, &out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out, 10);  // unchanged on failure
}

TEST(StringUtil, ToLowerAndEquals) {
  EXPECT_EQ(ToLower("MiXeD_123"), "mixed_123");
  EXPECT_TRUE(EqualsIgnoreCase("Emp", "EMP"));
  EXPECT_FALSE(EqualsIgnoreCase("emp", "dept"));
  EXPECT_FALSE(EqualsIgnoreCase("emp", "emps"));
}

TEST(StringUtil, JoinAndTrim) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"only"}, ", "), "only");
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("z"), "z");
}

TEST(RowBasics, AppendAccessAndToString) {
  Row row{Value::Int(1), Value::String("x")};
  EXPECT_EQ(row.size(), 2u);
  row.Append(Value::Null());
  EXPECT_EQ(row.size(), 3u);
  EXPECT_EQ(row.ToString(), "(1, 'x', NULL)");
  EXPECT_EQ(row, (Row{Value::Int(1), Value::String("x"), Value::Null()}));
  EXPECT_NE(row, (Row{Value::Int(1)}));
}

TEST(RowBasics, LexicographicOrder) {
  EXPECT_LT((Row{Value::Int(1), Value::Int(9)}),
            (Row{Value::Int(2), Value::Int(0)}));
  EXPECT_LT((Row{Value::Int(1)}), (Row{Value::Int(1), Value::Int(0)}));
  EXPECT_FALSE((Row{Value::Int(2)}) < (Row{Value::Int(1)}));
}

TEST(TraceFormat, RendersAllSections) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (a int)"));
  ASSERT_OK(engine.Execute(
      "create rule guard when inserted into t "
      "if exists (select * from inserted t where a < 0) then rollback"));
  ASSERT_OK(engine.Execute(
      "create rule echo when inserted into t "
      "then select a from inserted t"));

  ASSERT_OK_AND_ASSIGN(ExecutionTrace good,
                       engine.ExecuteBlock("insert into t values (1)"));
  TraceFormatOptions options;
  options.show_retrieved = true;
  std::string text = FormatTrace(good, options);
  EXPECT_NE(text.find("considered guard: condition false"),
            std::string::npos);
  EXPECT_NE(text.find("fired echo"), std::string::npos);

  ASSERT_OK_AND_ASSIGN(ExecutionTrace vetoed,
                       engine.ExecuteBlock("insert into t values (-1)"));
  EXPECT_NE(FormatTrace(vetoed).find("ROLLED BACK by rule guard"),
            std::string::npos);
}

}  // namespace
}  // namespace sopr
