// Failpoint site-name integrity (docs/FAILURE_SEMANTICS.md). The
// registry deliberately accepts ANY site string — a typo in a test's
// ArmBlocking (rules.comit.pre, say) arms a site no code ever hits, and the
// schedule silently never parks. This suite closes that hole both ways:
//
//   1. Every site-shaped string literal in tests/ whose prefix belongs
//      to the compiled catalog must BE in the catalog (or match a known
//      dynamic-site pattern / explicit allowlist).
//   2. Every catalog entry must appear literally in src/ — a site that
//      was removed from the code but not the catalog would let chaos
//      suites believe they attacked a place that no longer exists.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/failpoint.h"

namespace sopr {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Extracts the contents of every double-quoted string literal (handles
/// \" escapes; good enough for source files — no raw strings in this
/// repo's tests).
std::vector<std::string> StringLiterals(const std::string& source) {
  std::vector<std::string> literals;
  bool in_string = false;
  std::string current;
  for (size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    if (!in_string) {
      if (c == '"') {
        in_string = true;
        current.clear();
      }
      continue;
    }
    if (c == '\\' && i + 1 < source.size()) {
      current += source[++i];
      continue;
    }
    if (c == '"') {
      in_string = false;
      literals.push_back(current);
      continue;
    }
    current += c;
  }
  return literals;
}

bool IsSiteShaped(const std::string& token) {
  if (token.empty() || !std::islower(static_cast<unsigned char>(token[0]))) {
    return false;
  }
  // #include paths ("common/cancel.h") flush at '/' and would leave a
  // "cancel.h" token whose prefix collides with a real site family.
  for (const char* ext : {".h", ".cc", ".cpp", ".json", ".md", ".txt"}) {
    const size_t n = std::string(ext).size();
    if (token.size() > n && token.compare(token.size() - n, n, ext) == 0) {
      return false;
    }
  }
  bool has_dot = false;
  for (size_t i = 0; i < token.size(); ++i) {
    const char c = token[i];
    if (c == '.') {
      // No leading/trailing/doubled dots.
      if (i == 0 || i + 1 == token.size() || token[i + 1] == '.') {
        return false;
      }
      has_dot = true;
    } else if (!std::islower(static_cast<unsigned char>(c)) &&
               !std::isdigit(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return has_dot;
}

/// Splits a literal into site-candidate tokens: spec strings like
/// "a.site=once;b.site=nth:2" yield both names, plain site literals
/// yield themselves.
std::vector<std::string> SiteTokens(const std::string& literal) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (IsSiteShaped(current)) tokens.push_back(current);
    current.clear();
  };
  for (const char c : literal) {
    if (std::islower(static_cast<unsigned char>(c)) ||
        std::isdigit(static_cast<unsigned char>(c)) || c == '_' || c == '.') {
      current += c;
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

std::vector<fs::path> SourceFiles(const fs::path& root,
                                  const std::set<std::string>& extensions) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() &&
        extensions.count(entry.path().extension().string()) > 0) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FailpointSiteIntegrity, EveryTestReferencedSiteIsInTheCatalog) {
  const auto& known = FailpointRegistry::KnownSites();
  const std::set<std::string> catalog(known.begin(), known.end());
  ASSERT_FALSE(catalog.empty());

  // Prefixes the catalog claims (e.g. "rules", "wal"): only tokens under
  // these prefixes are judged, so SQL column references like "accts.bal"
  // in test strings are never mistaken for sites.
  std::set<std::string> prefixes;
  for (const auto& site : catalog) {
    prefixes.insert(site.substr(0, site.find('.')));
  }

  // Legitimately uncatalogued names:
  //   server.pin.acquire — a pure sync point inside PinSnapshot, whose
  //     failures are deliberately swallowed (a pin cannot fail), so the
  //     chaos catalog excludes it by design (commit_scheduler.cc).
  const std::set<std::string> allowlist = {"server.pin.acquire"};
  // Dynamic per-table wait sites: "lock.wait." + <table> is constructed
  // at runtime (lock_manager.cc), so any name under this prefix is valid.
  const std::string kDynamicWaitPrefix = "lock.wait.";

  const fs::path tests_dir(SOPR_TESTS_SOURCE_DIR);
  ASSERT_TRUE(fs::is_directory(tests_dir)) << tests_dir;
  std::map<std::string, std::vector<std::string>> unknown;  // site -> files
  size_t checked = 0;
  for (const fs::path& file : SourceFiles(tests_dir, {".cc", ".h"})) {
    const std::string source = ReadFile(file);
    for (const std::string& literal : StringLiterals(source)) {
      for (const std::string& token : SiteTokens(literal)) {
        const std::string prefix = token.substr(0, token.find('.'));
        if (prefixes.count(prefix) == 0) continue;
        ++checked;
        if (catalog.count(token) > 0) continue;
        if (allowlist.count(token) > 0) continue;
        if (token.compare(0, kDynamicWaitPrefix.size(), kDynamicWaitPrefix) ==
            0) {
          continue;
        }
        unknown[token].push_back(file.filename().string());
      }
    }
  }
  EXPECT_GT(checked, 0u) << "the scan found no site references at all — "
                            "the extraction is broken";
  for (const auto& [site, files] : unknown) {
    std::string where;
    for (const auto& f : files) where += f + " ";
    ADD_FAILURE() << "test sources reference failpoint site \"" << site
                  << "\" (" << where
                  << ") which the compiled catalog does not know — a typo "
                     "here arms a site nothing ever hits";
  }
}

TEST(FailpointSiteIntegrity, EveryCatalogEntryIsHitSomewhereInSrc) {
  const fs::path src_dir(SOPR_SRC_SOURCE_DIR);
  ASSERT_TRUE(fs::is_directory(src_dir)) << src_dir;
  // Concatenate every non-catalog source; the catalog file itself would
  // trivially contain each name.
  std::string all;
  for (const fs::path& file : SourceFiles(src_dir, {".cc", ".h"})) {
    if (file.filename() == "failpoint.cc") continue;
    all += ReadFile(file);
  }
  for (const std::string& site : FailpointRegistry::KnownSites()) {
    EXPECT_NE(all.find("\"" + site + "\""), std::string::npos)
        << "catalog entry \"" << site
        << "\" is hit nowhere in src/ — stale catalog entries let chaos "
           "suites believe they attacked code that no longer exists";
  }
}

}  // namespace
}  // namespace sopr
