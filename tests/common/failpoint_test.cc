#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "test_util.h"

namespace sopr {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisarmAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }

  FailpointRegistry& registry() { return FailpointRegistry::Instance(); }
};

TEST_F(FailpointTest, UnarmedSiteIsOk) {
  EXPECT_OK(registry().Hit("storage.insert.pre"));
  EXPECT_OK(registry().Hit("no.such.site"));
}

TEST_F(FailpointTest, AlwaysMode) {
  registry().Arm("a.site", {FailpointRegistry::Mode::kAlways, 1,
                            StatusCode::kInjectedFault});
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(registry().Hit("a.site").code(), StatusCode::kInjectedFault);
  }
  EXPECT_EQ(registry().HitCount("a.site"), 3u);
}

TEST_F(FailpointTest, OnceModeFiresExactlyOnce) {
  registry().Arm("a.site", {FailpointRegistry::Mode::kOnce, 1,
                            StatusCode::kInjectedFault});
  EXPECT_FALSE(registry().Hit("a.site").ok());
  EXPECT_OK(registry().Hit("a.site"));
  EXPECT_OK(registry().Hit("a.site"));
}

TEST_F(FailpointTest, NthModeFiresOnExactHit) {
  registry().Arm("a.site", {FailpointRegistry::Mode::kNth, 3,
                            StatusCode::kInjectedFault});
  EXPECT_OK(registry().Hit("a.site"));
  EXPECT_OK(registry().Hit("a.site"));
  EXPECT_FALSE(registry().Hit("a.site").ok());
  EXPECT_OK(registry().Hit("a.site"));
}

TEST_F(FailpointTest, EveryKMode) {
  registry().Arm("a.site", {FailpointRegistry::Mode::kEveryK, 2,
                            StatusCode::kInjectedFault});
  EXPECT_OK(registry().Hit("a.site"));
  EXPECT_FALSE(registry().Hit("a.site").ok());
  EXPECT_OK(registry().Hit("a.site"));
  EXPECT_FALSE(registry().Hit("a.site").ok());
}

TEST_F(FailpointTest, DisarmAndRearmResetCounters) {
  registry().Arm("a.site", {FailpointRegistry::Mode::kNth, 2,
                            StatusCode::kInjectedFault});
  EXPECT_OK(registry().Hit("a.site"));
  registry().Arm("a.site", {FailpointRegistry::Mode::kNth, 2,
                            StatusCode::kInjectedFault});
  EXPECT_OK(registry().Hit("a.site"));  // counter restarted
  EXPECT_FALSE(registry().Hit("a.site").ok());
  registry().Disarm("a.site");
  EXPECT_OK(registry().Hit("a.site"));
}

TEST_F(FailpointTest, SpecParsing) {
  ASSERT_OK(registry().ArmFromSpec(
      "one.site=once; two.site=nth:2@ResourceExhausted, three.site=every:3"));
  EXPECT_EQ(registry().Hit("one.site").code(), StatusCode::kInjectedFault);
  EXPECT_OK(registry().Hit("two.site"));
  EXPECT_EQ(registry().Hit("two.site").code(),
            StatusCode::kResourceExhausted);
  EXPECT_OK(registry().Hit("three.site"));
  EXPECT_OK(registry().Hit("three.site"));
  EXPECT_FALSE(registry().Hit("three.site").ok());
  // "off" disarms.
  ASSERT_OK(registry().ArmFromSpec("one.site=off"));
  EXPECT_OK(registry().Hit("one.site"));
}

TEST_F(FailpointTest, SpecErrors) {
  EXPECT_FALSE(registry().ArmFromSpec("missing-equals").ok());
  EXPECT_FALSE(registry().ArmFromSpec("a=warble").ok());
  EXPECT_FALSE(registry().ArmFromSpec("a=nth").ok());
  EXPECT_FALSE(registry().ArmFromSpec("a=nth:0").ok());
  EXPECT_FALSE(registry().ArmFromSpec("a=nth:x").ok());
  EXPECT_FALSE(registry().ArmFromSpec("a=once:3").ok());
  EXPECT_FALSE(registry().ArmFromSpec("a=once@NoSuchCode").ok());
  EXPECT_OK(registry().ArmFromSpec(""));
}

TEST_F(FailpointTest, CatalogCoversInstrumentedLayers) {
  const auto& sites = FailpointRegistry::KnownSites();
  EXPECT_GE(sites.size(), 15u);
  auto has = [&](const std::string& s) {
    return std::find(sites.begin(), sites.end(), s) != sites.end();
  };
  EXPECT_TRUE(has("storage.insert.pre"));
  EXPECT_TRUE(has("table.insert.mid"));
  EXPECT_TRUE(has("undo.append"));
  EXPECT_TRUE(has("rules.action.post"));
  EXPECT_TRUE(has("rules.deferred.dispatch"));
  EXPECT_TRUE(has("engine.execute.pre"));
}

TEST_F(FailpointTest, MalformedEnvSpecIsAHardStartupError) {
  // A typo in SOPR_FAILPOINTS must not silently disable the requested
  // fault injection: every engine entry point surfaces the parse error.
  ASSERT_EQ(::setenv("SOPR_FAILPOINTS", "wal.write=warble", 1), 0);
  registry().ResetEnvForTest();

  Engine engine;
  Status exec = engine.Execute("create table t (a int)");
  EXPECT_EQ(exec.code(), StatusCode::kInvalidArgument) << exec;
  EXPECT_NE(exec.message().find("SOPR_FAILPOINTS"), std::string::npos)
      << exec;
  EXPECT_EQ(engine.ExecuteBlock("insert into t values (1)").status().code(),
            StatusCode::kInvalidArgument);

  RuleEngineOptions options;
  EXPECT_EQ(Engine::Open(options).status().code(),
            StatusCode::kInvalidArgument);

  // Site hits themselves stay usable (lazy arming ignores the status) —
  // the error is surfaced at the entry points only.
  EXPECT_OK(registry().Hit("no.such.site"));

  ASSERT_EQ(::unsetenv("SOPR_FAILPOINTS"), 0);
  registry().ResetEnvForTest();
  EXPECT_OK(engine.Execute("create table t (a int)"));
}

TEST_F(FailpointTest, WellFormedEnvSpecArmsAtStartup) {
  ASSERT_EQ(::setenv("SOPR_FAILPOINTS", "engine.execute.pre=once", 1), 0);
  registry().ResetEnvForTest();
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (a int)"));
  EXPECT_EQ(engine.Execute("insert into t values (1)").code(),
            StatusCode::kInjectedFault);
  EXPECT_OK(engine.Execute("insert into t values (1)"));
  ASSERT_EQ(::unsetenv("SOPR_FAILPOINTS"), 0);
  registry().ResetEnvForTest();
}

TEST_F(FailpointTest, InjectedStorageFaultRollsBackTransaction) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (a int)"));
  ASSERT_OK(engine.Execute("insert into t values (1)"));
  registry().Arm("storage.insert.pre", {FailpointRegistry::Mode::kOnce, 1,
                                        StatusCode::kInjectedFault});
  Status s = engine.Execute("insert into t values (2)");
  EXPECT_EQ(s.code(), StatusCode::kInjectedFault);
  registry().DisarmAll();
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from t"), Value::Int(1));
  EXPECT_OK(engine.db().CheckInvariants());
}

}  // namespace
}  // namespace sopr
