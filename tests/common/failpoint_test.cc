#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "test_util.h"

namespace sopr {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisarmAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }

  FailpointRegistry& registry() { return FailpointRegistry::Instance(); }
};

TEST_F(FailpointTest, UnarmedSiteIsOk) {
  EXPECT_OK(registry().Hit("storage.insert.pre"));
  EXPECT_OK(registry().Hit("no.such.site"));
}

TEST_F(FailpointTest, AlwaysMode) {
  registry().Arm("a.site", {FailpointRegistry::Mode::kAlways, 1,
                            StatusCode::kInjectedFault});
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(registry().Hit("a.site").code(), StatusCode::kInjectedFault);
  }
  EXPECT_EQ(registry().HitCount("a.site"), 3u);
}

TEST_F(FailpointTest, OnceModeFiresExactlyOnce) {
  registry().Arm("a.site", {FailpointRegistry::Mode::kOnce, 1,
                            StatusCode::kInjectedFault});
  EXPECT_FALSE(registry().Hit("a.site").ok());
  EXPECT_OK(registry().Hit("a.site"));
  EXPECT_OK(registry().Hit("a.site"));
}

TEST_F(FailpointTest, NthModeFiresOnExactHit) {
  registry().Arm("a.site", {FailpointRegistry::Mode::kNth, 3,
                            StatusCode::kInjectedFault});
  EXPECT_OK(registry().Hit("a.site"));
  EXPECT_OK(registry().Hit("a.site"));
  EXPECT_FALSE(registry().Hit("a.site").ok());
  EXPECT_OK(registry().Hit("a.site"));
}

TEST_F(FailpointTest, EveryKMode) {
  registry().Arm("a.site", {FailpointRegistry::Mode::kEveryK, 2,
                            StatusCode::kInjectedFault});
  EXPECT_OK(registry().Hit("a.site"));
  EXPECT_FALSE(registry().Hit("a.site").ok());
  EXPECT_OK(registry().Hit("a.site"));
  EXPECT_FALSE(registry().Hit("a.site").ok());
}

TEST_F(FailpointTest, DisarmAndRearmResetCounters) {
  registry().Arm("a.site", {FailpointRegistry::Mode::kNth, 2,
                            StatusCode::kInjectedFault});
  EXPECT_OK(registry().Hit("a.site"));
  registry().Arm("a.site", {FailpointRegistry::Mode::kNth, 2,
                            StatusCode::kInjectedFault});
  EXPECT_OK(registry().Hit("a.site"));  // counter restarted
  EXPECT_FALSE(registry().Hit("a.site").ok());
  registry().Disarm("a.site");
  EXPECT_OK(registry().Hit("a.site"));
}

TEST_F(FailpointTest, SpecParsing) {
  ASSERT_OK(registry().ArmFromSpec(
      "one.site=once; two.site=nth:2@ResourceExhausted, three.site=every:3"));
  EXPECT_EQ(registry().Hit("one.site").code(), StatusCode::kInjectedFault);
  EXPECT_OK(registry().Hit("two.site"));
  EXPECT_EQ(registry().Hit("two.site").code(),
            StatusCode::kResourceExhausted);
  EXPECT_OK(registry().Hit("three.site"));
  EXPECT_OK(registry().Hit("three.site"));
  EXPECT_FALSE(registry().Hit("three.site").ok());
  // "off" disarms.
  ASSERT_OK(registry().ArmFromSpec("one.site=off"));
  EXPECT_OK(registry().Hit("one.site"));
}

TEST_F(FailpointTest, SpecErrors) {
  EXPECT_FALSE(registry().ArmFromSpec("missing-equals").ok());
  EXPECT_FALSE(registry().ArmFromSpec("a=warble").ok());
  EXPECT_FALSE(registry().ArmFromSpec("a=nth").ok());
  EXPECT_FALSE(registry().ArmFromSpec("a=nth:0").ok());
  EXPECT_FALSE(registry().ArmFromSpec("a=nth:x").ok());
  EXPECT_FALSE(registry().ArmFromSpec("a=once:3").ok());
  EXPECT_FALSE(registry().ArmFromSpec("a=once@NoSuchCode").ok());
  EXPECT_OK(registry().ArmFromSpec(""));
}

TEST_F(FailpointTest, CatalogCoversInstrumentedLayers) {
  const auto& sites = FailpointRegistry::KnownSites();
  EXPECT_GE(sites.size(), 15u);
  auto has = [&](const std::string& s) {
    return std::find(sites.begin(), sites.end(), s) != sites.end();
  };
  EXPECT_TRUE(has("storage.insert.pre"));
  EXPECT_TRUE(has("table.insert.mid"));
  EXPECT_TRUE(has("undo.append"));
  EXPECT_TRUE(has("rules.action.post"));
  EXPECT_TRUE(has("rules.deferred.dispatch"));
  EXPECT_TRUE(has("engine.execute.pre"));
}

TEST_F(FailpointTest, MalformedEnvSpecIsAHardStartupError) {
  // A typo in SOPR_FAILPOINTS must not silently disable the requested
  // fault injection: every engine entry point surfaces the parse error.
  ASSERT_EQ(::setenv("SOPR_FAILPOINTS", "wal.write=warble", 1), 0);
  registry().ResetEnvForTest();

  Engine engine;
  Status exec = engine.Execute("create table t (a int)");
  EXPECT_EQ(exec.code(), StatusCode::kInvalidArgument) << exec;
  EXPECT_NE(exec.message().find("SOPR_FAILPOINTS"), std::string::npos)
      << exec;
  EXPECT_EQ(engine.ExecuteBlock("insert into t values (1)").status().code(),
            StatusCode::kInvalidArgument);

  RuleEngineOptions options;
  EXPECT_EQ(Engine::Open(options).status().code(),
            StatusCode::kInvalidArgument);

  // Site hits themselves stay usable (lazy arming ignores the status) —
  // the error is surfaced at the entry points only.
  EXPECT_OK(registry().Hit("no.such.site"));

  ASSERT_EQ(::unsetenv("SOPR_FAILPOINTS"), 0);
  registry().ResetEnvForTest();
  EXPECT_OK(engine.Execute("create table t (a int)"));
}

TEST_F(FailpointTest, WellFormedEnvSpecArmsAtStartup) {
  ASSERT_EQ(::setenv("SOPR_FAILPOINTS", "engine.execute.pre=once", 1), 0);
  registry().ResetEnvForTest();
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (a int)"));
  EXPECT_EQ(engine.Execute("insert into t values (1)").code(),
            StatusCode::kInjectedFault);
  EXPECT_OK(engine.Execute("insert into t values (1)"));
  ASSERT_EQ(::unsetenv("SOPR_FAILPOINTS"), 0);
  registry().ResetEnvForTest();
}

// --- Thread safety (the session front-end hits sites from N threads) ---

TEST_F(FailpointTest, ConcurrentHitsCountExactly) {
  // kNth arithmetic must hold under contention: with N threads hammering
  // an every:K trigger, exactly hits/K of them fire — no double-fires,
  // no lost counts.
  constexpr int kThreads = 8;
  constexpr int kHitsPerThread = 1000;
  constexpr uint64_t kEvery = 7;
  registry().Arm("test.mt.site",
                 {FailpointRegistry::Mode::kEveryK, kEvery});
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < kHitsPerThread; ++j) {
        if (!registry().Hit("test.mt.site").ok()) fired.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry().HitCount("test.mt.site"),
            static_cast<uint64_t>(kThreads * kHitsPerThread));
  EXPECT_EQ(static_cast<uint64_t>(fired.load()),
            static_cast<uint64_t>(kThreads * kHitsPerThread) / kEvery);
}

TEST_F(FailpointTest, ConcurrentArmDisarmWhileHitting) {
  // A chaos thread arming/disarming must never corrupt the registry or
  // crash a hitting thread; a kOnce trigger fires at most once per Arm.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> fired{0};
  std::vector<std::thread> hitters;
  for (int i = 0; i < 4; ++i) {
    hitters.emplace_back([&] {
      while (!stop.load()) {
        if (!registry().Hit("test.mt.flap").ok()) fired.fetch_add(1);
      }
    });
  }
  uint64_t arms = 0;
  for (int round = 0; round < 200; ++round) {
    registry().Arm("test.mt.flap", {FailpointRegistry::Mode::kOnce});
    ++arms;
    std::this_thread::yield();
    registry().Disarm("test.mt.flap");
  }
  stop.store(true);
  for (std::thread& t : hitters) t.join();
  EXPECT_LE(fired.load(), arms) << "kOnce fired twice for one Arm";
}

TEST_F(FailpointTest, ServerAndGroupCommitSitesAreCataloged) {
  const std::vector<std::string>& sites = FailpointRegistry::KnownSites();
  auto has = [&sites](const std::string& s) {
    return std::find(sites.begin(), sites.end(), s) != sites.end();
  };
  EXPECT_TRUE(has("server.submit.pre"));
  EXPECT_TRUE(has("server.session.create"));
  EXPECT_TRUE(has("wal.group_commit.lead"));
  EXPECT_TRUE(has("wal.group_commit.sync"));
  EXPECT_TRUE(has("wal.lock.acquire"));
}

TEST_F(FailpointTest, InjectedStorageFaultRollsBackTransaction) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (a int)"));
  ASSERT_OK(engine.Execute("insert into t values (1)"));
  registry().Arm("storage.insert.pre", {FailpointRegistry::Mode::kOnce, 1,
                                        StatusCode::kInjectedFault});
  Status s = engine.Execute("insert into t values (2)");
  EXPECT_EQ(s.code(), StatusCode::kInjectedFault);
  registry().DisarmAll();
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from t"), Value::Int(1));
  EXPECT_OK(engine.db().CheckInvariants());
}

}  // namespace
}  // namespace sopr
