// Unit tests for the cooperative-cancellation primitives
// (common/cancel.h) and their interaction with common/retry.h's Backoff
// (docs/OVERLOAD.md): tokens, deadlines, composed contexts with
// attribution, the thread-ambient scope stack, cancellable sleeps, and
// the guarantee that a backoff sleep can never outsleep the ambient
// deadline.

#include "common/cancel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/failpoint.h"
#include "common/retry.h"

namespace sopr {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

TEST(CancelTokenTest, FirstReasonWinsAndSticks) {
  auto token = std::make_shared<CancelToken>();
  EXPECT_FALSE(token->cancelled());
  EXPECT_EQ(token->reason(), "");
  token->Cancel("operator kill");
  EXPECT_TRUE(token->cancelled());
  EXPECT_EQ(token->reason(), "operator kill");
  token->Cancel("late second kill");
  EXPECT_EQ(token->reason(), "operator kill") << "first Cancel's reason wins";
}

TEST(DeadlineTest, NeverNeverExpiresAndEarlierPicksTheRealOne) {
  Deadline never = Deadline::Never();
  EXPECT_FALSE(never.has_deadline());
  EXPECT_FALSE(never.Expired());
  EXPECT_EQ(never.Remaining(), microseconds::max());

  Deadline past = Deadline::After(microseconds(-1));
  EXPECT_TRUE(past.has_deadline());
  EXPECT_TRUE(past.Expired());
  EXPECT_EQ(past.Remaining(), microseconds(0));

  Deadline future = Deadline::After(std::chrono::hours(1));
  EXPECT_FALSE(future.Expired());
  EXPECT_GT(future.Remaining(), microseconds(0));

  EXPECT_EQ(Deadline::Earlier(never, future).at(), future.at());
  EXPECT_EQ(Deadline::Earlier(future, never).at(), future.at());
  EXPECT_EQ(Deadline::Earlier(past, future).at(), past.at());
  EXPECT_FALSE(Deadline::Earlier(never, never).has_deadline());
}

TEST(CancelContextTest, AttributionKillBeatsDeadline) {
  // A fired token and an expired deadline in the same context: the kill
  // attributes the failure (kCancelled), because the explicit operator
  // action is the more specific cause.
  auto token = std::make_shared<CancelToken>();
  token->Cancel("kill");
  CancelContext ctx;
  ctx.AddToken(token, "session 7");
  ctx.AddDeadline(Deadline::After(microseconds(-1)), "statement");
  Status st = ctx.Check("test site");
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_NE(st.message().find("session 7"), std::string::npos) << st;
}

TEST(CancelContextTest, ExpiredDeadlineIsTimeoutWithLabel) {
  CancelContext ctx;
  ctx.AddToken(std::make_shared<CancelToken>(), "session 7");  // not fired
  ctx.AddDeadline(Deadline::Never(), "transaction");
  ctx.AddDeadline(Deadline::After(microseconds(-1)), "statement");
  Status st = ctx.Check("test site");
  EXPECT_EQ(st.code(), StatusCode::kTimeout);
  EXPECT_NE(st.message().find("statement"), std::string::npos) << st;
}

TEST(CancelContextTest, CompositeDeadlineIsTheEarliest) {
  CancelContext ctx;
  EXPECT_FALSE(ctx.deadline().has_deadline());
  Deadline txn = Deadline::After(std::chrono::hours(2));
  Deadline stmt = Deadline::After(std::chrono::hours(1));
  ctx.AddDeadline(txn, "transaction");
  ctx.AddDeadline(stmt, "statement");
  ASSERT_TRUE(ctx.deadline().has_deadline());
  EXPECT_EQ(ctx.deadline().at(), stmt.at());
}

TEST(CancelScopeTest, ScopesNestAndRestore) {
  EXPECT_EQ(CancelScope::Current(), nullptr);
  CancelContext outer;
  {
    CancelScope outer_scope(&outer);
    EXPECT_EQ(CancelScope::Current(), &outer);
    CancelContext inner = CancelContext::InheritAmbient();
    {
      CancelScope inner_scope(&inner);
      EXPECT_EQ(CancelScope::Current(), &inner);
      {
        // The shield: a nullptr scope makes the section uncancellable
        // (the rule engine's commit section uses this).
        CancelScope shield(nullptr);
        EXPECT_EQ(CancelScope::Current(), nullptr);
        EXPECT_TRUE(CheckCancel("shielded").ok());
      }
      EXPECT_EQ(CancelScope::Current(), &inner);
    }
    EXPECT_EQ(CancelScope::Current(), &outer);
  }
  EXPECT_EQ(CancelScope::Current(), nullptr);
}

TEST(CancelScopeTest, InheritAmbientComposesSources) {
  auto kill = std::make_shared<CancelToken>();
  CancelContext session;
  session.AddToken(kill, "session");
  CancelScope session_scope(&session);

  // A transaction layer inherits the session's kill and adds its own
  // deadline — the composed context fails for EITHER reason.
  CancelContext txn = CancelContext::InheritAmbient();
  txn.AddDeadline(Deadline::After(std::chrono::hours(1)), "transaction");
  CancelScope txn_scope(&txn);

  EXPECT_TRUE(CheckCancel("before kill").ok());
  kill->Cancel("kill through the inherited token");
  Status st = CheckCancel("after kill");
  EXPECT_EQ(st.code(), StatusCode::kCancelled) << st;
}

TEST(CheckCancelTest, NoContextIsOkAndFailpointInjects) {
  FailpointRegistry::Instance().DisarmAll();
  EXPECT_TRUE(CheckCancel("nowhere").ok());
  // cancel.deliver models an asynchronous kill arriving at any check
  // site, even with no ambient context installed.
  FailpointRegistry::Instance().Arm(
      "cancel.deliver", {FailpointRegistry::Mode::kOnce, 1,
                         StatusCode::kCancelled, false});
  EXPECT_EQ(CheckCancel("anywhere").code(), StatusCode::kCancelled);
  EXPECT_TRUE(CheckCancel("anywhere").ok()) << "kOnce fires exactly once";
  FailpointRegistry::Instance().DisarmAll();
}

TEST(CancellableSleepTest, FullSleepWithoutContext) {
  const auto t0 = CancelClock::now();
  EXPECT_TRUE(CancellableSleep(milliseconds(5), "test").ok());
  EXPECT_GE(CancelClock::now() - t0, milliseconds(5));
}

TEST(CancellableSleepTest, PreCancelledTokenReturnsImmediately) {
  auto kill = std::make_shared<CancelToken>();
  kill->Cancel("already dead");
  CancelContext ctx;
  ctx.AddToken(kill, "session");
  CancelScope scope(&ctx);
  const auto t0 = CancelClock::now();
  Status st = CancellableSleep(std::chrono::seconds(30), "test");
  EXPECT_EQ(st.code(), StatusCode::kCancelled) << st;
  EXPECT_LT(CancelClock::now() - t0, std::chrono::seconds(5));
}

TEST(CancellableSleepTest, AsynchronousKillCutsTheSleepShort) {
  auto kill = std::make_shared<CancelToken>();
  CancelContext ctx;
  ctx.AddToken(kill, "session");
  CancelScope scope(&ctx);
  std::thread killer([kill] {
    std::this_thread::sleep_for(milliseconds(20));
    kill->Cancel("mid-sleep kill");
  });
  const auto t0 = CancelClock::now();
  Status st = CancellableSleep(std::chrono::seconds(30), "test");
  killer.join();
  EXPECT_EQ(st.code(), StatusCode::kCancelled) << st;
  // Poll-quantum delivery: far sooner than the nominal 30s (generous
  // bound for loaded CI machines).
  EXPECT_LT(CancelClock::now() - t0, std::chrono::seconds(10));
}

TEST(CancellableSleepTest, ClippedToTheAmbientDeadline) {
  CancelContext ctx;
  ctx.AddDeadline(Deadline::After(milliseconds(10)), "statement");
  CancelScope scope(&ctx);
  const auto t0 = CancelClock::now();
  Status st = CancellableSleep(std::chrono::seconds(30), "test");
  EXPECT_EQ(st.code(), StatusCode::kTimeout) << st;
  EXPECT_LT(CancelClock::now() - t0, std::chrono::seconds(10));
}

// --- The Backoff x deadline interaction (common/retry.h) -----------------

TEST(BackoffSleepTest, SleepHonoursTheFullDelayWithoutContext) {
  RetryPolicy policy;
  policy.initial_delay = milliseconds(5);
  policy.max_delay = milliseconds(5);
  policy.jitter = 0.0;
  Backoff backoff(policy);
  const auto t0 = CancelClock::now();
  EXPECT_TRUE(backoff.Sleep("test").ok());
  EXPECT_GE(CancelClock::now() - t0, milliseconds(5));
  EXPECT_EQ(backoff.attempts(), 1u);
}

TEST(BackoffSleepTest, SleepNeverOutsleepsTheAmbientDeadline) {
  // A detached-rule retry whose nominal backoff delay (30s) dwarfs the
  // transaction budget (15ms): the sleep must end at the budget, with
  // kTimeout, not after the nominal delay.
  RetryPolicy policy;
  policy.initial_delay = std::chrono::seconds(30);
  policy.max_delay = std::chrono::seconds(30);
  policy.jitter = 0.0;
  Backoff backoff(policy);
  CancelContext ctx;
  ctx.AddDeadline(Deadline::After(milliseconds(15)), "transaction");
  CancelScope scope(&ctx);
  const auto t0 = CancelClock::now();
  Status st = backoff.Sleep("detached retry");
  EXPECT_EQ(st.code(), StatusCode::kTimeout) << st;
  EXPECT_LT(CancelClock::now() - t0, std::chrono::seconds(10))
      << "the sleep must be clipped to the deadline, not the nominal delay";
}

TEST(BackoffSleepTest, KillCutsARetrySleepShort) {
  RetryPolicy policy;
  policy.initial_delay = std::chrono::seconds(30);
  policy.max_delay = std::chrono::seconds(30);
  policy.jitter = 0.0;
  Backoff backoff(policy);
  auto kill = std::make_shared<CancelToken>();
  CancelContext ctx;
  ctx.AddToken(kill, "session");
  CancelScope scope(&ctx);
  std::thread killer([kill] {
    std::this_thread::sleep_for(milliseconds(20));
    kill->Cancel("kill during backoff");
  });
  Status st = backoff.Sleep("detached retry");
  killer.join();
  EXPECT_EQ(st.code(), StatusCode::kCancelled) << st;
}

TEST(BackoffSleepTest, RetryWithBackoffStopsRetryingWhenCancelled) {
  // The retried operation keeps failing transiently; once the ambient
  // context expires, RetryWithBackoff must surface the cancellation
  // instead of the transient failure (and stop looping).
  RetryPolicy policy;
  policy.initial_delay = milliseconds(1);
  policy.max_delay = milliseconds(1);
  policy.jitter = 0.0;
  Backoff backoff(policy);
  CancelContext ctx;
  ctx.AddDeadline(Deadline::After(milliseconds(10)), "transaction");
  CancelScope scope(&ctx);
  std::atomic<int> calls{0};
  Status st = RetryWithBackoff(&backoff, [&] {
    calls.fetch_add(1);
    return Status::Unavailable("still torn");
  });
  EXPECT_EQ(st.code(), StatusCode::kTimeout) << st;
  EXPECT_GE(calls.load(), 1);
}

}  // namespace
}  // namespace sopr
