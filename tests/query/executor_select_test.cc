// Query executor tests: projection, joins, subqueries, aggregation,
// grouping, ordering, NULL semantics.

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "query/result_set.h"
#include "test_util.h"

namespace sopr {
namespace {

class SelectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CreatePaperSchema(&engine_);
    LoadOrgChart(&engine_);
  }

  QueryResult Q(const std::string& sql) {
    auto result = engine_.Query(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? std::move(result).value() : QueryResult{};
  }

  Engine engine_;
};

TEST_F(SelectTest, StarProjectsAllColumns) {
  QueryResult r = Q("select * from dept");
  EXPECT_EQ(r.columns, (std::vector<std::string>{"dept_no", "mgr_no"}));
  EXPECT_EQ(r.rows.size(), 4u);
}

TEST_F(SelectTest, ExpressionProjectionAndAlias) {
  QueryResult r = Q("select name, salary / 1000 k from emp where name = 'Sam'");
  EXPECT_EQ(r.columns, (std::vector<std::string>{"name", "k"}));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].at(1), Value::Double(40.0));
}

TEST_F(SelectTest, CrossJoinAndQualifiedColumns) {
  QueryResult r = Q(
      "select e.name, d.mgr_no from emp e, dept d "
      "where e.dept_no = d.dept_no and d.dept_no = 3 order by e.name");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].at(0), Value::String("Sam"));
  EXPECT_EQ(r.rows[1].at(0), Value::String("Sue"));
  EXPECT_EQ(r.rows[0].at(1), Value::Int(30));
}

TEST_F(SelectTest, SelfJoinWithAliases) {
  // Colleagues in the same department.
  QueryResult r = Q(
      "select e1.name, e2.name from emp e1, emp e2 "
      "where e1.dept_no = e2.dept_no and e1.emp_no < e2.emp_no "
      "order by e1.name");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].at(0), Value::String("Mary"));
  EXPECT_EQ(r.rows[0].at(1), Value::String("Jim"));
  EXPECT_EQ(r.rows[1].at(0), Value::String("Sam"));
  EXPECT_EQ(r.rows[1].at(1), Value::String("Sue"));
}

TEST_F(SelectTest, DuplicateBindingWithoutAliasFails) {
  auto result = engine_.Query("select * from emp, emp");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCatalogError);
}

TEST_F(SelectTest, InSubquery) {
  QueryResult r = Q(
      "select name from emp where dept_no in "
      "(select dept_no from dept where mgr_no = 10) order by name");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].at(0), Value::String("Jim"));
  EXPECT_EQ(r.rows[1].at(0), Value::String("Mary"));
}

TEST_F(SelectTest, CorrelatedSubquery) {
  // Employees above their department's average.
  QueryResult r = Q(
      "select name from emp e1 where salary > "
      "(select avg(salary) from emp e2 where e2.dept_no = e1.dept_no) "
      "order by name");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].at(0), Value::String("Mary"));
  EXPECT_EQ(r.rows[1].at(0), Value::String("Sue"));
}

TEST_F(SelectTest, ExistsAndNotExists) {
  QueryResult r = Q(
      "select dept_no from dept d where exists "
      "(select * from emp e where e.dept_no = d.dept_no) order by dept_no");
  ASSERT_EQ(r.rows.size(), 4u);

  r = Q("select dept_no from dept d where not exists "
        "(select * from emp e where e.dept_no = d.dept_no and salary > 60000)"
        " order by dept_no");
  // Depts whose members all earn <= 60000: 2 (Bill 25K), 3 (Sam, Sue).
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].at(0), Value::Int(2));
  EXPECT_EQ(r.rows[1].at(0), Value::Int(3));
}

TEST_F(SelectTest, ScalarSubqueryEmptyIsNull) {
  QueryResult r = Q(
      "select name from emp where salary = "
      "(select salary from emp where name = 'nobody')");
  EXPECT_TRUE(r.rows.empty());  // NULL comparison is unknown, filtered out
}

TEST_F(SelectTest, ScalarSubqueryMultiRowFails) {
  auto result = engine_.Query(
      "select name from emp where salary = (select salary from emp)");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
}

TEST_F(SelectTest, AggregatesUngrouped) {
  QueryResult r = Q(
      "select count(*), count(salary), sum(salary), avg(salary), "
      "min(salary), max(salary) from emp");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].at(0), Value::Int(6));
  EXPECT_EQ(r.rows[0].at(1), Value::Int(6));
  EXPECT_EQ(r.rows[0].at(2), Value::Double(332000));
  EXPECT_EQ(r.rows[0].at(3), Value::Double(332000.0 / 6));
  EXPECT_EQ(r.rows[0].at(4), Value::Double(25000));
  EXPECT_EQ(r.rows[0].at(5), Value::Double(90000));
}

TEST_F(SelectTest, AggregatesOnEmptyInput) {
  QueryResult r = Q(
      "select count(*), sum(salary), avg(salary), min(salary) from emp "
      "where salary < 0");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].at(0), Value::Int(0));
  EXPECT_TRUE(r.rows[0].at(1).is_null());
  EXPECT_TRUE(r.rows[0].at(2).is_null());
  EXPECT_TRUE(r.rows[0].at(3).is_null());
}

TEST_F(SelectTest, AggregatesIgnoreNulls) {
  ASSERT_OK(engine_.Execute("insert into emp values ('Nul', 99, null, 1)"));
  QueryResult r = Q("select count(*), count(salary), avg(salary) from emp");
  EXPECT_EQ(r.rows[0].at(0), Value::Int(7));
  EXPECT_EQ(r.rows[0].at(1), Value::Int(6));
  EXPECT_EQ(r.rows[0].at(2), Value::Double(332000.0 / 6));
}

TEST_F(SelectTest, CountDistinct) {
  QueryResult r = Q("select count(distinct dept_no) from emp");
  EXPECT_EQ(r.rows[0].at(0), Value::Int(4));
}

TEST_F(SelectTest, GroupByWithHaving) {
  QueryResult r = Q(
      "select dept_no, count(*) n, avg(salary) from emp "
      "group by dept_no having count(*) > 1 order by dept_no");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].at(0), Value::Int(1));
  EXPECT_EQ(r.rows[0].at(1), Value::Int(2));
  EXPECT_EQ(r.rows[1].at(0), Value::Int(3));
  EXPECT_EQ(r.rows[1].at(2), Value::Double(41000));
}

TEST_F(SelectTest, GroupByNonGroupedColumnFails) {
  auto result =
      engine_.Query("select name, count(*) from emp group by dept_no");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTypeError);
}

TEST_F(SelectTest, MixedAggregateAndColumnWithoutGroupByFails) {
  auto result = engine_.Query("select name, count(*) from emp");
  EXPECT_FALSE(result.ok());
}

TEST_F(SelectTest, AggregateOutsideAggregationContextFails) {
  auto result = engine_.Query("select name from emp where sum(salary) > 1");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTypeError);
}

TEST_F(SelectTest, DistinctDeduplicates) {
  QueryResult r = Q("select distinct dept_no from emp order by dept_no");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0].at(0), Value::Int(0));
  EXPECT_EQ(r.rows[3].at(0), Value::Int(3));
}

TEST_F(SelectTest, OrderByDescendingAndMultipleKeys) {
  QueryResult r = Q("select name, dept_no from emp order by dept_no desc, name");
  ASSERT_EQ(r.rows.size(), 6u);
  EXPECT_EQ(r.rows[0].at(0), Value::String("Sam"));
  EXPECT_EQ(r.rows[1].at(0), Value::String("Sue"));
  EXPECT_EQ(r.rows[5].at(0), Value::String("Jane"));
}

TEST_F(SelectTest, InListAndBetweenAndIsNull) {
  QueryResult r =
      Q("select name from emp where dept_no in (2, 3) order by name");
  ASSERT_EQ(r.rows.size(), 3u);

  r = Q("select name from emp where salary between 40000 and 65000 "
        "order by name");
  ASSERT_EQ(r.rows.size(), 3u);  // Jim 65000, Sam 40000, Sue 42000

  ASSERT_OK(engine_.Execute("insert into emp values ('Nul', 99, null, 1)"));
  r = Q("select name from emp where salary is null");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].at(0), Value::String("Nul"));
  r = Q("select count(*) from emp where salary is not null");
  EXPECT_EQ(r.rows[0].at(0), Value::Int(6));
}

TEST_F(SelectTest, NullNotInListIsFilteredNotMatched) {
  ASSERT_OK(engine_.Execute("insert into emp values ('Nul', 99, null, null)"));
  // dept_no NULL: `in` is unknown, so the row is excluded from both the
  // positive and the negated predicate.
  QueryResult pos = Q("select count(*) from emp where dept_no in (0, 1)");
  QueryResult neg = Q("select count(*) from emp where not (dept_no in (0, 1))");
  EXPECT_EQ(pos.rows[0].at(0), Value::Int(3));
  EXPECT_EQ(neg.rows[0].at(0), Value::Int(3));  // 6 non-null - 3 matching
}

TEST_F(SelectTest, UnknownColumnAndAmbiguity) {
  EXPECT_EQ(engine_.Query("select nosuch from emp").status().code(),
            StatusCode::kCatalogError);
  EXPECT_EQ(
      engine_.Query("select dept_no from emp e, dept d").status().code(),
      StatusCode::kCatalogError);  // ambiguous
  EXPECT_EQ(engine_.Query("select e.name from emp e, dept d").status().code(),
            StatusCode::kOk);
}

TEST_F(SelectTest, OrderByAggregate) {
  // Aggregates are legal in ORDER BY of a grouped query.
  QueryResult r = Q(
      "select dept_no from emp group by dept_no order by count(*) desc, "
      "dept_no");
  ASSERT_EQ(r.rows.size(), 4u);
  // Depts 1 and 3 have two members; 0 and 2 have one.
  EXPECT_EQ(r.rows[0].at(0), Value::Int(1));
  EXPECT_EQ(r.rows[1].at(0), Value::Int(3));
}

TEST_F(SelectTest, HavingWithScalarSubquery) {
  // Groups whose average beats the company-wide average.
  QueryResult r = Q(
      "select dept_no from emp group by dept_no "
      "having avg(salary) > (select avg(salary) from emp e2) "
      "order by dept_no");
  // Company avg ≈ 55333; dept 0 (Jane 90000) and dept 1 (67500) beat it.
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].at(0), Value::Int(0));
  EXPECT_EQ(r.rows[1].at(0), Value::Int(1));
}

TEST_F(SelectTest, EmptyResultFormatting) {
  QueryResult r = Q("select name, salary from emp where salary < 0");
  EXPECT_TRUE(r.rows.empty());
  std::string table = FormatResult(r);
  EXPECT_NE(table.find("name"), std::string::npos);   // header still renders
  EXPECT_NE(table.find("salary"), std::string::npos);
}

TEST_F(SelectTest, GroupByExpression) {
  // Grouping by a computed expression (salary band).
  QueryResult r = Q(
      "select salary / 30000, count(*) from emp "
      "group by salary / 30000 order by count(*) desc");
  ASSERT_GE(r.rows.size(), 2u);
}

TEST_F(SelectTest, FormatResultRendersTable) {
  QueryResult r = Q("select dept_no, mgr_no from dept order by dept_no");
  std::string table = FormatResult(r);
  EXPECT_NE(table.find("dept_no"), std::string::npos);
  EXPECT_NE(table.find("---"), std::string::npos);
}

}  // namespace
}  // namespace sopr
