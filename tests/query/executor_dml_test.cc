// DML execution: affected sets, snapshot (Halloween-safe) semantics,
// coercion, insert-select.

#include <gtest/gtest.h>

#include "query/executor.h"
#include "sql/parser.h"
#include "storage/database.h"
#include "test_util.h"

namespace sopr {
namespace {

class DmlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.CreateTable(TableSchema(
        "emp", {{"name", ValueType::kString},
                {"emp_no", ValueType::kInt},
                {"salary", ValueType::kDouble},
                {"dept_no", ValueType::kInt}})));
    ASSERT_OK(db_.CreateTable(TableSchema(
        "audit", {{"emp_no", ValueType::kInt}, {"tag", ValueType::kInt}})));
  }

  DmlEffect Run(const std::string& sql) {
    auto stmt = Parser::ParseStatement(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    DatabaseResolver resolver(&db_);
    Executor executor(&db_, &resolver);
    auto effect = executor.ExecuteDml(*stmt.value());
    EXPECT_TRUE(effect.ok()) << sql << " -> " << effect.status();
    return effect.ok() ? std::move(effect).value() : DmlEffect{};
  }

  Status RunExpectError(const std::string& sql) {
    auto stmt = Parser::ParseStatement(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    DatabaseResolver resolver(&db_);
    Executor executor(&db_, &resolver);
    auto effect = executor.ExecuteDml(*stmt.value());
    EXPECT_FALSE(effect.ok()) << sql;
    return effect.status();
  }

  size_t EmpSize() {
    auto t = db_.GetTable("emp");
    return t.ok() ? t.value()->size() : 0;
  }

  Database db_;
};

TEST_F(DmlTest, InsertValuesAffectedSet) {
  DmlEffect e = Run("insert into emp values ('a', 1, 100, 1)");
  EXPECT_EQ(e.table, "emp");
  ASSERT_EQ(e.inserted.size(), 1u);
  EXPECT_TRUE(e.deleted.empty());
  EXPECT_TRUE(e.updated.empty());
  EXPECT_EQ(EmpSize(), 1u);
}

TEST_F(DmlTest, InsertCoercesIntToDoubleColumn) {
  DmlEffect e = Run("insert into emp values ('a', 1, 100, 1)");
  auto table = db_.GetTable("emp");
  auto row = table.value()->Get(e.inserted[0]);
  EXPECT_EQ(row.value()->at(2), Value::Double(100.0));
}

TEST_F(DmlTest, MultiRowInsert) {
  DmlEffect e = Run("insert into emp values ('a', 1, 100, 1), ('b', 2, 200, 1)");
  EXPECT_EQ(e.inserted.size(), 2u);
  EXPECT_EQ(EmpSize(), 2u);
}

TEST_F(DmlTest, InsertSelect) {
  Run("insert into emp values ('a', 1, 100, 1), ('b', 2, 200, 2)");
  DmlEffect e = Run("insert into audit (select emp_no, 7 from emp)");
  EXPECT_EQ(e.table, "audit");
  EXPECT_EQ(e.inserted.size(), 2u);
}

TEST_F(DmlTest, InsertSelectFromSelfSeesSnapshot) {
  Run("insert into emp values ('a', 1, 100, 1)");
  // Self-referencing insert-select must not loop on its own output.
  DmlEffect e = Run("insert into emp (select name, emp_no + 10, salary, "
                    "dept_no from emp)");
  EXPECT_EQ(e.inserted.size(), 1u);
  EXPECT_EQ(EmpSize(), 2u);
}

TEST_F(DmlTest, InsertArityMismatchFails) {
  Status s = RunExpectError("insert into emp values (1, 2)");
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  EXPECT_EQ(EmpSize(), 0u);
}

TEST_F(DmlTest, DeleteAffectedSetCarriesOldRows) {
  Run("insert into emp values ('a', 1, 100, 1), ('b', 2, 200, 2)");
  DmlEffect e = Run("delete from emp where salary > 150");
  ASSERT_EQ(e.deleted.size(), 1u);
  EXPECT_EQ(e.deleted[0].second.at(0), Value::String("b"));
  EXPECT_EQ(EmpSize(), 1u);
}

TEST_F(DmlTest, DeleteWithoutWhereDeletesAll) {
  Run("insert into emp values ('a', 1, 100, 1), ('b', 2, 200, 2)");
  DmlEffect e = Run("delete from emp");
  EXPECT_EQ(e.deleted.size(), 2u);
  EXPECT_EQ(EmpSize(), 0u);
}

TEST_F(DmlTest, UpdateAffectedSetIncludesUnchangedValues) {
  // The paper: the affected set includes tuples *selected* for update
  // even if the value does not actually change.
  Run("insert into emp values ('a', 1, 100, 1)");
  DmlEffect e = Run("update emp set salary = salary where emp_no = 1");
  ASSERT_EQ(e.updated.size(), 1u);
  EXPECT_EQ(e.updated[0].old_row.at(2), Value::Double(100));
  // Column index 2 == salary.
  EXPECT_EQ(e.updated[0].columns, (std::vector<size_t>{2}));
}

TEST_F(DmlTest, UpdateSeesPreStatementStateUniformly) {
  // Halloween protection: an update moving everyone above the average
  // must compute the average once, against the pre-statement state.
  Run("insert into emp values ('a', 1, 100, 1), ('b', 2, 200, 1)");
  Run("update emp set salary = salary + "
      "(select avg(salary) from emp e2)");
  DatabaseResolver resolver(&db_);
  Executor executor(&db_, &resolver);
  auto stmt = Parser::ParseStatement("select salary from emp order by emp_no");
  auto result =
      executor.ExecuteSelect(static_cast<const SelectStmt&>(*stmt.value()));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows[0].at(0), Value::Double(250));
  EXPECT_EQ(result.value().rows[1].at(0), Value::Double(350));
}

TEST_F(DmlTest, UpdateMultipleColumns) {
  Run("insert into emp values ('a', 1, 100, 1)");
  DmlEffect e = Run("update emp set salary = 500, dept_no = 9");
  ASSERT_EQ(e.updated.size(), 1u);
  EXPECT_EQ(e.updated[0].columns, (std::vector<size_t>{2, 3}));
}

TEST_F(DmlTest, UpdateUnknownColumnFails) {
  Run("insert into emp values ('a', 1, 100, 1)");
  Status s = RunExpectError("update emp set nosuch = 1");
  EXPECT_EQ(s.code(), StatusCode::kCatalogError);
}

TEST_F(DmlTest, DmlAgainstMissingTableFails) {
  EXPECT_EQ(RunExpectError("insert into nosuch values (1)").code(),
            StatusCode::kCatalogError);
  EXPECT_EQ(RunExpectError("delete from nosuch").code(),
            StatusCode::kCatalogError);
  EXPECT_EQ(RunExpectError("update nosuch set a = 1").code(),
            StatusCode::kCatalogError);
}

TEST_F(DmlTest, TransitionTableOutsideRuleFails) {
  Run("insert into emp values ('a', 1, 100, 1)");
  Status s = RunExpectError(
      "delete from emp where emp_no in (select emp_no from inserted emp)");
  EXPECT_EQ(s.code(), StatusCode::kCatalogError);
}

TEST_F(DmlTest, DeleteUsesThreeValuedLogic) {
  Run("insert into emp values ('a', 1, null, 1), ('b', 2, 200, 1)");
  // NULL salary: predicate unknown -> not deleted.
  DmlEffect e = Run("delete from emp where salary > 100");
  EXPECT_EQ(e.deleted.size(), 1u);
  EXPECT_EQ(EmpSize(), 1u);
}

}  // namespace
}  // namespace sopr
