// Planner unit tests plus differential property testing: the optimized
// executor (pushdown + hash joins) must return exactly the same rows as
// the naive cross-product executor on randomized queries.

#include "query/planner.h"

#include <gtest/gtest.h>

#include <random>

#include "engine/engine.h"
#include "query/result_set.h"
#include "sql/parser.h"
#include "test_util.h"

namespace sopr {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest()
      : emp_("emp", {{"name", ValueType::kString},
                     {"salary", ValueType::kDouble},
                     {"dept_no", ValueType::kInt}}),
        dept_("dept", {{"dept_no", ValueType::kInt},
                       {"mgr_no", ValueType::kInt}}) {}

  QueryPlan Plan(const std::string& where_sql,
                 std::vector<QueryPlan::BindingInfo> bindings) {
    where_ = nullptr;
    if (!where_sql.empty()) {
      auto expr = Parser::ParseExpression(where_sql);
      EXPECT_TRUE(expr.ok()) << expr.status();
      where_ = std::move(expr).value();
    }
    return QueryPlan::Analyze(where_.get(), bindings);
  }

  TableSchema emp_;
  TableSchema dept_;
  ExprPtr where_;
};

TEST_F(PlannerTest, SingleRelationPredicatesPushed) {
  QueryPlan plan = Plan("salary > 100 and name = 'x'",
                        {{"emp", &emp_}});
  EXPECT_EQ(plan.pushed().size(), 2u);
  EXPECT_TRUE(plan.joins().empty());
  EXPECT_TRUE(plan.residual().empty());
}

TEST_F(PlannerTest, EquijoinDetected) {
  QueryPlan plan = Plan("emp.dept_no = dept.dept_no and salary > 5",
                        {{"emp", &emp_}, {"dept", &dept_}});
  ASSERT_EQ(plan.joins().size(), 1u);
  EXPECT_EQ(plan.pushed().size(), 1u);  // salary > 5 -> emp
  EXPECT_EQ(plan.pushed()[0].binding, 0u);
  EXPECT_TRUE(plan.residual().empty());
}

TEST_F(PlannerTest, UnqualifiedEquijoinResolvesUniquely) {
  // `mgr_no = salary` is nonsense semantically but resolves uniquely:
  // mgr_no only in dept, salary only in emp -> join edge.
  QueryPlan plan =
      Plan("mgr_no = salary", {{"emp", &emp_}, {"dept", &dept_}});
  EXPECT_EQ(plan.joins().size(), 1u);
}

TEST_F(PlannerTest, AmbiguousColumnStaysResidual) {
  // dept_no exists in both bindings: conjunct cannot be classified.
  QueryPlan plan = Plan("dept_no > 1", {{"emp", &emp_}, {"dept", &dept_}});
  EXPECT_TRUE(plan.pushed().empty());
  EXPECT_EQ(plan.residual().size(), 1u);
}

TEST_F(PlannerTest, NonEquiJoinPredicateResidual) {
  QueryPlan plan = Plan("emp.dept_no < dept.dept_no",
                        {{"emp", &emp_}, {"dept", &dept_}});
  EXPECT_TRUE(plan.joins().empty());
  EXPECT_EQ(plan.residual().size(), 1u);
}

TEST_F(PlannerTest, SubqueryConjunctReferencingOneBindingPushed) {
  // Qualified refs into the subquery's own FROM are shadowed; e.salary
  // binds to our emp binding -> single-relation, pushable.
  QueryPlan plan =
      Plan("e.salary > (select avg(d2.mgr_no) from dept d2)",
           {{"e", &emp_}, {"dept", &dept_}});
  ASSERT_EQ(plan.pushed().size(), 1u);
  EXPECT_EQ(plan.pushed()[0].binding, 0u);
}

TEST_F(PlannerTest, UnqualifiedInsideSubqueryIsConservative) {
  QueryPlan plan = Plan("e.salary > (select avg(mgr_no) from emp x)",
                        {{"e", &emp_}, {"dept", &dept_}});
  // `mgr_no` inside the subquery is unqualified: unknown -> residual.
  EXPECT_TRUE(plan.pushed().empty());
  EXPECT_EQ(plan.residual().size(), 1u);
}

TEST_F(PlannerTest, OrIsNotSplit) {
  QueryPlan plan = Plan("salary > 1 or name = 'x'", {{"emp", &emp_}});
  // A single disjunctive conjunct referencing one relation IS pushable.
  EXPECT_EQ(plan.pushed().size(), 1u);
}

TEST_F(PlannerTest, ConstantConjunctPushedToFirst) {
  QueryPlan plan = Plan("1 = 1 and emp.salary > 2", {{"emp", &emp_}});
  EXPECT_EQ(plan.pushed().size(), 2u);
}

TEST_F(PlannerTest, JoinOrderPrefersConnectedRelations) {
  TableSchema c("c", {{"k", ValueType::kInt}});
  QueryPlan plan = Plan("emp.dept_no = c.k and dept.mgr_no = c.k",
                        {{"emp", &emp_}, {"dept", &dept_}, {"c", &c}});
  // Order starts at 0 (emp); c connects to emp, dept connects to c.
  std::vector<size_t> order = plan.JoinOrder(3);
  EXPECT_EQ(order, (std::vector<size_t>{0, 2, 1}));
}

TEST_F(PlannerTest, NoWhereMeansEmptyPlan) {
  QueryPlan plan = Plan("", {{"emp", &emp_}});
  EXPECT_TRUE(plan.pushed().empty());
  EXPECT_TRUE(plan.joins().empty());
  EXPECT_TRUE(plan.residual().empty());
}

// --- Differential testing: optimized == naive ----------------------------

class OptimizerDifferential : public ::testing::TestWithParam<uint32_t> {};

TEST_P(OptimizerDifferential, RandomQueriesAgree) {
  std::mt19937 rng(GetParam());

  RuleEngineOptions on;
  on.optimize_queries = true;
  RuleEngineOptions off;
  off.optimize_queries = false;
  Engine opt(on);
  Engine naive(off);

  for (Engine* e : {&opt, &naive}) {
    ASSERT_OK(e->Execute("create table a (x int, y int)"));
    ASSERT_OK(e->Execute("create table b (x int, z int)"));
    ASSERT_OK(e->Execute("create table c (z int, w double)"));
  }
  // Identical random data in both engines (including NULLs).
  std::string rows_a = "insert into a values ";
  std::string rows_b = "insert into b values ";
  std::string rows_c = "insert into c values ";
  for (int i = 0; i < 25; ++i) {
    auto val = [&rng]() -> std::string {
      if (rng() % 8 == 0) return "null";
      return std::to_string(rng() % 10);
    };
    if (i > 0) {
      rows_a += ", ";
      rows_b += ", ";
      rows_c += ", ";
    }
    rows_a += "(" + val() + ", " + val() + ")";
    rows_b += "(" + val() + ", " + val() + ")";
    rows_c += "(" + val() + ", " + std::to_string(rng() % 10) + ".5)";
  }
  for (Engine* e : {&opt, &naive}) {
    ASSERT_OK(e->Execute(rows_a));
    ASSERT_OK(e->Execute(rows_b));
    ASSERT_OK(e->Execute(rows_c));
  }

  const char* queries[] = {
      "select * from a, b where a.x = b.x",
      "select * from a, b where a.x = b.x and a.y > 3",
      "select * from a, b, c where a.x = b.x and b.z = c.z",
      "select a.y, c.w from a, b, c where a.x = b.x and b.z = c.z "
      "and a.y < 8",
      "select * from a, b where a.x = b.x and a.y <> b.z",
      "select * from a a1, a a2 where a1.x = a2.y",
      "select count(*) from a, b where a.x = b.x",
      "select a.x, count(*) from a, b where a.x = b.x group by a.x",
      "select * from a, b where a.x = b.x and exists "
      "(select * from c where c.z = b.z)",
      "select * from a where x in (select x from b where z > 2)",
      "select * from a, b where a.y = b.z and 1 = 1",
      "select * from a, c where a.x = c.z",  // int = int column from c
  };
  for (const char* sql : queries) {
    auto r1 = opt.Query(sql);
    auto r2 = naive.Query(sql);
    ASSERT_EQ(r1.ok(), r2.ok()) << sql;
    if (!r1.ok()) continue;
    QueryResult a = std::move(r1).value();
    QueryResult b = std::move(r2).value();
    SortRows(&a);
    SortRows(&b);
    EXPECT_EQ(FormatResult(a), FormatResult(b)) << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerDifferential,
                         ::testing::Range(0u, 10u));

TEST(OptimizerSemantics, NullKeysNeverJoin) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table a (x int)"));
  ASSERT_OK(engine.Execute("create table b (x int)"));
  ASSERT_OK(engine.Execute("insert into a values (1), (null)"));
  ASSERT_OK(engine.Execute("insert into b values (1), (null)"));
  ASSERT_OK_AND_ASSIGN(QueryResult r,
                       engine.Query("select * from a, b where a.x = b.x"));
  ASSERT_EQ(r.rows.size(), 1u);  // only 1 = 1; NULL never equals NULL
}

TEST(OptimizerSemantics, CrossNumericJoinMatches) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table a (x int)"));
  ASSERT_OK(engine.Execute("create table b (x double)"));
  ASSERT_OK(engine.Execute("insert into a values (2)"));
  ASSERT_OK(engine.Execute("insert into b values (2.0)"));
  ASSERT_OK_AND_ASSIGN(QueryResult r,
                       engine.Query("select * from a, b where a.x = b.x"));
  ASSERT_EQ(r.rows.size(), 1u);  // int 2 joins double 2.0
}

TEST(OptimizerSemantics, RuleActionsBenefitFromJoins) {
  // A rule action with an equijoin between a transition table and a base
  // table runs through the same optimizer (the §1 claim).
  Engine engine;
  CreatePaperSchema(&engine);
  LoadOrgChart(&engine);
  ASSERT_OK(engine.Execute("create table log (name string, mgr int)"));
  ASSERT_OK(engine.Execute(
      "create rule r when deleted from emp "
      "then insert into log "
      "  (select d.name, dept.mgr_no from deleted emp d, dept "
      "   where d.dept_no = dept.dept_no)"));
  ASSERT_OK(engine.Execute("delete from emp where dept_no = 3"));
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from log"), Value::Int(2));
}

TEST(OptimizerSemantics, CompositeKeyHashJoin) {
  // Two equijoin edges between the same pair of relations form a
  // composite hash key.
  Engine engine;
  ASSERT_OK(engine.Execute("create table a (x int, y int, v string)"));
  ASSERT_OK(engine.Execute("create table b (x int, y int, w string)"));
  ASSERT_OK(engine.Execute(
      "insert into a values (1, 1, 'a11'), (1, 2, 'a12'), (2, 1, 'a21')"));
  ASSERT_OK(engine.Execute(
      "insert into b values (1, 1, 'b11'), (1, 2, 'b12'), (9, 9, 'b99')"));
  ASSERT_OK_AND_ASSIGN(
      QueryResult r,
      engine.Query("select v, w from a, b "
                   "where a.x = b.x and a.y = b.y order by v"));
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].at(0), Value::String("a11"));
  EXPECT_EQ(r.rows[0].at(1), Value::String("b11"));
  EXPECT_EQ(r.rows[1].at(0), Value::String("a12"));
  EXPECT_EQ(r.rows[1].at(1), Value::String("b12"));
}

TEST(OptimizerSemantics, ThreeWayJoinChainsHashSteps) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table a (k int)"));
  ASSERT_OK(engine.Execute("create table b (k int, m int)"));
  ASSERT_OK(engine.Execute("create table c (m int, label string)"));
  ASSERT_OK(engine.Execute("insert into a values (1), (2), (3)"));
  ASSERT_OK(engine.Execute("insert into b values (1, 10), (2, 20), (9, 90)"));
  ASSERT_OK(engine.Execute(
      "insert into c values (10, 'ten'), (20, 'twenty'), (77, 'no')"));
  ASSERT_OK_AND_ASSIGN(
      QueryResult r,
      engine.Query("select label from a, b, c "
                   "where a.k = b.k and b.m = c.m order by label"));
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].at(0), Value::String("ten"));
  EXPECT_EQ(r.rows[1].at(0), Value::String("twenty"));
}

}  // namespace
}  // namespace sopr
