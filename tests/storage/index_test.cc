// Equality indexes: maintenance under DML, normalization, DDL, use by
// the executor (verified observationally via the engine), and rollback
// interaction.

#include "storage/index.h"

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "test_util.h"

namespace sopr {
namespace {

TEST(ColumnIndex, InsertLookupErase) {
  ColumnIndex index(0);
  index.Insert(Value::Int(5), 100);
  index.Insert(Value::Int(5), 101);
  index.Insert(Value::Int(7), 102);

  const auto* hits = index.Lookup(Value::Int(5));
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(*hits, (std::set<TupleHandle>{100, 101}));

  index.Erase(Value::Int(5), 100);
  hits = index.Lookup(Value::Int(5));
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(*hits, (std::set<TupleHandle>{101}));

  index.Erase(Value::Int(5), 101);
  EXPECT_EQ(index.Lookup(Value::Int(5)), nullptr);
  EXPECT_EQ(index.num_keys(), 1u);  // only 7 remains
}

TEST(ColumnIndex, NumericNormalization) {
  ColumnIndex index(0);
  index.Insert(Value::Int(2), 1);
  // Lookup with the double form must hit (SQL: 2 = 2.0).
  const auto* hits = index.Lookup(Value::Double(2.0));
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->count(1), 1u);
}

TEST(ColumnIndex, NullsNotIndexed) {
  ColumnIndex index(0);
  index.Insert(Value::Null(), 1);
  EXPECT_EQ(index.num_keys(), 0u);
  EXPECT_EQ(index.Lookup(Value::Null()), nullptr);
}

TEST(TableIndex, MaintainedAcrossDml) {
  Table table(TableSchema("t", {{"k", ValueType::kInt},
                                {"v", ValueType::kString}}));
  ASSERT_OK(table.Insert(1, Row{Value::Int(10), Value::String("a")}));
  ASSERT_OK(table.CreateIndex(0));  // indexes existing rows
  ASSERT_OK(table.Insert(2, Row{Value::Int(10), Value::String("b")}));
  ASSERT_OK(table.Insert(3, Row{Value::Int(20), Value::String("c")}));

  const ColumnIndex* index = table.GetIndex(0);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(*index->Lookup(Value::Int(10)),
            (std::set<TupleHandle>{1, 2}));

  // Update moves the row to a new bucket.
  ASSERT_OK(table.Replace(2, Row{Value::Int(20), Value::String("b")}));
  EXPECT_EQ(*index->Lookup(Value::Int(10)), (std::set<TupleHandle>{1}));
  EXPECT_EQ(*index->Lookup(Value::Int(20)), (std::set<TupleHandle>{2, 3}));

  // Delete removes it.
  ASSERT_OK(table.Erase(3));
  EXPECT_EQ(*index->Lookup(Value::Int(20)), (std::set<TupleHandle>{2}));

  // Idempotent creation.
  ASSERT_OK(table.CreateIndex(0));
  EXPECT_EQ(table.num_indexes(), 1u);
  EXPECT_FALSE(table.CreateIndex(99).ok());
}

TEST(CreateIndexDdl, ParseAndExecute) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (k int, v string)"));
  ASSERT_OK(engine.Execute("insert into t values (1, 'a'), (2, 'b')"));
  ASSERT_OK(engine.Execute("create index t_k on t (k)"));
  // Unnamed form also works; idempotent.
  ASSERT_OK(engine.Execute("create index on t (k)"));
  ASSERT_OK_AND_ASSIGN(const Table* table, engine.db().GetTable("t"));
  EXPECT_EQ(table->num_indexes(), 1u);

  EXPECT_EQ(engine.Execute("create index on nosuch (k)").code(),
            StatusCode::kCatalogError);
  EXPECT_EQ(engine.Execute("create index on t (nosuch)").code(),
            StatusCode::kCatalogError);
}

TEST(IndexedQueries, SameResultsAsUnindexed) {
  // Differential: identical data with and without an index must produce
  // identical query results, including NULL and cross-numeric cases.
  Engine indexed;
  Engine plain;
  for (Engine* e : {&indexed, &plain}) {
    ASSERT_OK(e->Execute("create table t (k int, v double)"));
    ASSERT_OK(e->Execute(
        "insert into t values (1, 1.5), (2, 2.5), (2, 3.5), (null, 9.0)"));
  }
  ASSERT_OK(indexed.Execute("create index on t (k)"));

  const char* queries[] = {
      "select v from t where k = 2 order by v",
      "select v from t where k = 2.0 order by v",  // cross-numeric
      "select count(*) from t where k = null",     // never matches
      "select count(*) from t where k = 99",
      "select v from t where 2 = k order by v",    // literal on the left
  };
  for (const char* sql : queries) {
    ASSERT_OK_AND_ASSIGN(QueryResult a, indexed.Query(sql));
    ASSERT_OK_AND_ASSIGN(QueryResult b, plain.Query(sql));
    EXPECT_EQ(a.rows, b.rows) << sql;
  }
}

TEST(IndexedQueries, IndexSurvivesRollback) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (k int)"));
  ASSERT_OK(engine.Execute("create index on t (k)"));
  ASSERT_OK(engine.Execute(
      "create rule veto when inserted into t "
      "if exists (select * from inserted t where k < 0) then rollback"));

  ASSERT_OK(engine.Execute("insert into t values (1)"));
  EXPECT_EQ(engine.Execute("insert into t values (-1), (5)").code(),
            StatusCode::kRolledBack);
  // Index must reflect the rolled-back state: only k=1 exists.
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from t where k = 5"),
            Value::Int(0));
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from t where k = 1"),
            Value::Int(1));
}

TEST(IndexedQueries, UsedInsideRuleActions) {
  Engine engine;
  ASSERT_OK(engine.Execute("create table big (k int, v int)"));
  ASSERT_OK(engine.Execute("create index on big (k)"));
  ASSERT_OK(engine.Execute("create table trigger_t (k int)"));
  ASSERT_OK(engine.Execute("create table out (v int)"));
  std::string batch = "insert into big values ";
  for (int i = 0; i < 200; ++i) {
    if (i > 0) batch += ", ";
    batch += "(" + std::to_string(i) + ", " + std::to_string(i * 2) + ")";
  }
  ASSERT_OK(engine.Execute(batch));
  ASSERT_OK(engine.Execute(
      "create rule probe when inserted into trigger_t "
      "then insert into out (select v from big where k = 77)"));
  ASSERT_OK(engine.Execute("insert into trigger_t values (1)"));
  EXPECT_EQ(QueryScalar(&engine, "select v from out"), Value::Int(154));
}

TEST(IndexedDml, DeleteAndUpdateUseIndexCorrectly) {
  // Differential: point deletes/updates through an index must behave
  // identically to scans, including rule triggering (affected sets).
  Engine indexed;
  Engine plain;
  for (Engine* e : {&indexed, &plain}) {
    ASSERT_OK(e->Execute("create table t (k int, v int)"));
    ASSERT_OK(e->Execute("create table log (k int)"));
    ASSERT_OK(e->Execute(
        "create rule watch when deleted from t or updated t.v "
        "then insert into log (select k from deleted t)"));
    ASSERT_OK(e->Execute(
        "insert into t values (1, 10), (2, 20), (2, 21), (3, 30)"));
  }
  ASSERT_OK(indexed.Execute("create index on t (k)"));

  for (Engine* e : {&indexed, &plain}) {
    ASSERT_OK(e->Execute("update t set v = v + 1 where k = 2"));
    ASSERT_OK(e->Execute("delete from t where k = 2 and v > 21"));
  }
  for (const char* q :
       {"select count(*) from t", "select sum(v) from t",
        "select count(*) from log"}) {
    ASSERT_OK_AND_ASSIGN(QueryResult a, indexed.Query(q));
    ASSERT_OK_AND_ASSIGN(QueryResult b, plain.Query(q));
    EXPECT_EQ(a.rows, b.rows) << q;
  }
}

TEST(IndexedDml, CompoundPredicateStillFiltered) {
  // The index narrows to k = 2 but the residual `v > 20` must still
  // filter within the bucket.
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (k int, v int)"));
  ASSERT_OK(engine.Execute("create index on t (k)"));
  ASSERT_OK(engine.Execute(
      "insert into t values (2, 10), (2, 30), (3, 99)"));
  ASSERT_OK(engine.Execute("delete from t where k = 2 and v > 20"));
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from t"), Value::Int(2));
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from t where k = 2"),
            Value::Int(1));
}

TEST(IndexedDml, HalloweenProtectionWithIndexOnUpdatedColumn) {
  // `update t set k = k + 1 where k = 2` with an index on k: the
  // snapshot is taken against the pre-statement index state, so rows
  // moved INTO the k=2 bucket by the update itself must not be
  // re-processed (classic Halloween problem).
  Engine engine;
  ASSERT_OK(engine.Execute("create table t (k int)"));
  ASSERT_OK(engine.Execute("create index on t (k)"));
  ASSERT_OK(engine.Execute("insert into t values (1), (2), (2), (3)"));
  ASSERT_OK(engine.Execute("update t set k = k + 1 where k = 2"));
  // The two k=2 rows became 3; the k=1 row did NOT chain into the bucket.
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from t where k = 3"),
            Value::Int(3));
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from t where k = 1"),
            Value::Int(1));
  EXPECT_EQ(QueryScalar(&engine, "select count(*) from t where k = 2"),
            Value::Int(0));
  // Index agrees with reality after the self-referential update.
  ASSERT_OK_AND_ASSIGN(const Table* table, engine.db().GetTable("t"));
  const ColumnIndex* index = table->GetIndex(0);
  ASSERT_NE(index, nullptr);
  ASSERT_NE(index->Lookup(Value::Int(3)), nullptr);
  EXPECT_EQ(index->Lookup(Value::Int(3))->size(), 3u);
}

}  // namespace
}  // namespace sopr
