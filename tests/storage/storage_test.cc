#include <gtest/gtest.h>

#include "storage/database.h"
#include "test_util.h"

namespace sopr {
namespace {

TableSchema EmpSchema() {
  return TableSchema("emp", {{"name", ValueType::kString},
                             {"salary", ValueType::kDouble}});
}

TEST(Table, InsertGetEraseReplace) {
  Table table(EmpSchema());
  ASSERT_OK(table.Insert(1, Row{Value::String("a"), Value::Double(1.0)}));
  ASSERT_OK(table.Insert(2, Row{Value::String("b"), Value::Double(2.0)}));
  EXPECT_EQ(table.size(), 2u);
  EXPECT_TRUE(table.Contains(1));

  ASSERT_OK_AND_ASSIGN(const Row* row, table.Get(1));
  EXPECT_EQ(row->at(0), Value::String("a"));

  ASSERT_OK(table.Replace(1, Row{Value::String("a2"), Value::Double(9.0)}));
  ASSERT_OK_AND_ASSIGN(row, table.Get(1));
  EXPECT_EQ(row->at(0), Value::String("a2"));

  ASSERT_OK(table.Erase(1));
  EXPECT_FALSE(table.Contains(1));
  EXPECT_FALSE(table.Get(1).ok());
  EXPECT_FALSE(table.Erase(1).ok());
  EXPECT_FALSE(table.Replace(1, Row{}).ok());
}

TEST(Table, DuplicateHandleRejected) {
  Table table(EmpSchema());
  ASSERT_OK(table.Insert(1, Row{Value::String("a"), Value::Double(1.0)}));
  EXPECT_FALSE(table.Insert(1, Row{Value::String("b"), Value::Double(2.0)}).ok());
}

TEST(Table, IterationIsHandleOrdered) {
  Table table(EmpSchema());
  ASSERT_OK(table.Insert(5, Row{Value::String("e"), Value::Double(5)}));
  ASSERT_OK(table.Insert(2, Row{Value::String("b"), Value::Double(2)}));
  ASSERT_OK(table.Insert(9, Row{Value::String("i"), Value::Double(9)}));
  std::vector<TupleHandle> handles;
  for (const auto& [h, row] : table.rows()) {
    (void)row;
    handles.push_back(h);
  }
  EXPECT_EQ(handles, (std::vector<TupleHandle>{2, 5, 9}));
}

TEST(Database, HandlesAreGlobalAndMonotonic) {
  Database db;
  ASSERT_OK(db.CreateTable(EmpSchema()));
  ASSERT_OK(db.CreateTable(
      TableSchema("dept", {{"dept_no", ValueType::kInt}})));

  ASSERT_OK_AND_ASSIGN(
      TupleHandle h1,
      db.InsertRow("emp", Row{Value::String("a"), Value::Double(1)}));
  ASSERT_OK_AND_ASSIGN(TupleHandle h2,
                       db.InsertRow("dept", Row{Value::Int(1)}));
  ASSERT_OK_AND_ASSIGN(
      TupleHandle h3,
      db.InsertRow("emp", Row{Value::String("b"), Value::Double(2)}));
  EXPECT_LT(h1, h2);
  EXPECT_LT(h2, h3);
}

TEST(Database, HandlesNotReusedAfterDelete) {
  Database db;
  ASSERT_OK(db.CreateTable(EmpSchema()));
  ASSERT_OK_AND_ASSIGN(
      TupleHandle h1,
      db.InsertRow("emp", Row{Value::String("a"), Value::Double(1)}));
  ASSERT_OK(db.DeleteRow("emp", h1));
  ASSERT_OK_AND_ASSIGN(
      TupleHandle h2,
      db.InsertRow("emp", Row{Value::String("a"), Value::Double(1)}));
  EXPECT_GT(h2, h1);
}

TEST(Database, SchemaChecksOnInsertAndUpdate) {
  Database db;
  ASSERT_OK(db.CreateTable(EmpSchema()));
  // Wrong arity.
  EXPECT_FALSE(db.InsertRow("emp", Row{Value::String("a")}).ok());
  // Wrong type.
  EXPECT_FALSE(
      db.InsertRow("emp", Row{Value::Int(1), Value::Double(2)}).ok());
  // NULL allowed anywhere.
  ASSERT_OK_AND_ASSIGN(
      TupleHandle h, db.InsertRow("emp", Row{Value::Null(), Value::Null()}));
  // Int into double column allowed by CheckRow.
  EXPECT_OK(db.UpdateRow("emp", h,
                         Row{Value::String("b"), Value::Int(3)}));
}

TEST(Database, RollbackRestoresExactState) {
  Database db;
  ASSERT_OK(db.CreateTable(EmpSchema()));
  ASSERT_OK_AND_ASSIGN(
      TupleHandle h1,
      db.InsertRow("emp", Row{Value::String("keep"), Value::Double(1)}));
  db.CommitAll();

  UndoLog::Mark mark = db.UndoMark();
  ASSERT_OK_AND_ASSIGN(
      TupleHandle h2,
      db.InsertRow("emp", Row{Value::String("new"), Value::Double(2)}));
  ASSERT_OK(db.UpdateRow("emp", h1,
                         Row{Value::String("changed"), Value::Double(9)}));
  ASSERT_OK(db.DeleteRow("emp", h1));

  ASSERT_OK(db.RollbackTo(mark));

  ASSERT_OK_AND_ASSIGN(const Table* table, db.GetTable("emp"));
  EXPECT_EQ(table->size(), 1u);
  EXPECT_FALSE(table->Contains(h2));
  ASSERT_OK_AND_ASSIGN(const Row* row, table->Get(h1));
  EXPECT_EQ(row->at(0), Value::String("keep"));
  EXPECT_EQ(row->at(1), Value::Double(1));
  EXPECT_EQ(db.undo_log_size(), mark);
}

TEST(Database, RollbackInterleavedAcrossTables) {
  Database db;
  ASSERT_OK(db.CreateTable(EmpSchema()));
  ASSERT_OK(db.CreateTable(TableSchema("dept", {{"dept_no", ValueType::kInt}})));
  UndoLog::Mark mark = db.UndoMark();

  ASSERT_OK_AND_ASSIGN(
      TupleHandle e,
      db.InsertRow("emp", Row{Value::String("x"), Value::Double(1)}));
  ASSERT_OK_AND_ASSIGN(TupleHandle d, db.InsertRow("dept", Row{Value::Int(7)}));
  ASSERT_OK(db.UpdateRow("dept", d, Row{Value::Int(8)}));
  ASSERT_OK(db.DeleteRow("emp", e));

  ASSERT_OK(db.RollbackTo(mark));
  ASSERT_OK_AND_ASSIGN(const Table* emp, db.GetTable("emp"));
  ASSERT_OK_AND_ASSIGN(const Table* dept, db.GetTable("dept"));
  EXPECT_EQ(emp->size(), 0u);
  EXPECT_EQ(dept->size(), 0u);
}

TEST(Database, PartialRollbackToMidMark) {
  Database db;
  ASSERT_OK(db.CreateTable(EmpSchema()));
  ASSERT_OK_AND_ASSIGN(
      TupleHandle h1,
      db.InsertRow("emp", Row{Value::String("a"), Value::Double(1)}));
  UndoLog::Mark mid = db.UndoMark();
  ASSERT_OK(db.InsertRow("emp", Row{Value::String("b"), Value::Double(2)}).status());
  ASSERT_OK(db.RollbackTo(mid));

  ASSERT_OK_AND_ASSIGN(const Table* table, db.GetTable("emp"));
  EXPECT_EQ(table->size(), 1u);
  EXPECT_TRUE(table->Contains(h1));
}

// An inner operation block fails and rolls back to its own mark; the
// outer block's records must survive untouched and remain replayable.
TEST(UndoLog, NestedMarksPartialRollbackPreservesOuterRecords) {
  Database db;
  ASSERT_OK(db.CreateTable(EmpSchema()));
  UndoLog::Mark outer = db.UndoMark();
  ASSERT_OK_AND_ASSIGN(
      TupleHandle h1,
      db.InsertRow("emp", Row{Value::String("outer"), Value::Double(1)}));
  ASSERT_OK(db.UpdateRow("emp", h1,
                         Row{Value::String("outer2"), Value::Double(2)}));
  size_t outer_records = db.undo_log_size();

  // Inner scope: insert + update + delete, then partial rollback.
  UndoLog::Mark inner = db.UndoMark();
  ASSERT_OK_AND_ASSIGN(
      TupleHandle h2,
      db.InsertRow("emp", Row{Value::String("inner"), Value::Double(3)}));
  ASSERT_OK(db.UpdateRow("emp", h1,
                         Row{Value::String("clobbered"), Value::Double(9)}));
  ASSERT_OK(db.DeleteRow("emp", h2));
  ASSERT_OK(db.RollbackTo(inner));

  // TruncateTo semantics: exactly the outer records remain.
  EXPECT_EQ(db.undo_log_size(), outer_records);
  ASSERT_OK_AND_ASSIGN(const Table* table, db.GetTable("emp"));
  EXPECT_EQ(table->size(), 1u);
  ASSERT_OK_AND_ASSIGN(const Row* row, table->Get(h1));
  EXPECT_EQ(row->at(0), Value::String("outer2"));

  // The outer block can still roll back to the transaction start.
  ASSERT_OK(db.RollbackTo(outer));
  EXPECT_EQ(table->size(), 0u);
  EXPECT_EQ(db.undo_log_size(), outer);
}

TEST(UndoLog, TruncateToDropsOnlyNewerRecords) {
  UndoLog log;
  ASSERT_OK(log.RecordInsert("t", 1));
  UndoLog::Mark m = log.mark();
  ASSERT_OK(log.RecordInsert("t", 2));
  ASSERT_OK(log.RecordDelete("t", 3, Row{Value::Int(1)}));
  EXPECT_EQ(log.size(), 3u);
  log.TruncateTo(m);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.records()[0].handle, TupleHandle{1});
  // Truncating to a mark at or past the end is a no-op.
  log.TruncateTo(5);
  EXPECT_EQ(log.size(), 1u);
}

TEST(UndoLog, RecordBudgetExhaustion) {
  UndoLog log;
  log.set_record_budget(2);
  ASSERT_OK(log.RecordInsert("t", 1));
  ASSERT_OK(log.RecordInsert("t", 2));
  EXPECT_EQ(log.RecordInsert("t", 3).code(), StatusCode::kResourceExhausted);
  // Freeing space (rollback truncation) makes room again.
  log.TruncateTo(1);
  ASSERT_OK(log.RecordInsert("t", 4));
}

// When the undo log cannot accept a record, the mutation must not stay
// applied — otherwise a later rollback would miss it.
TEST(Database, UnloggableMutationIsRevertedAndStateStaysConsistent) {
  Database db;
  ASSERT_OK(db.CreateTable(EmpSchema()));
  ASSERT_OK_AND_ASSIGN(
      TupleHandle h1,
      db.InsertRow("emp", Row{Value::String("a"), Value::Double(1)}));
  ASSERT_OK_AND_ASSIGN(Table * table, db.GetTable("emp"));
  ASSERT_OK(table->CreateIndex(0));
  db.set_undo_budget(db.undo_log_size());  // no room for anything more
  uint64_t before = db.Checksum();

  EXPECT_EQ(db.InsertRow("emp", Row{Value::String("b"), Value::Double(2)})
                .status()
                .code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(db.UpdateRow("emp", h1,
                         Row{Value::String("c"), Value::Double(3)})
                .code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(db.DeleteRow("emp", h1).code(), StatusCode::kResourceExhausted);

  EXPECT_EQ(db.Checksum(), before);
  ASSERT_OK(db.CheckInvariants());
  EXPECT_EQ(table->size(), 1u);
}

TEST(Database, ChecksumDetectsMutationsAndRoundTripsRollback) {
  Database db;
  ASSERT_OK(db.CreateTable(EmpSchema()));
  ASSERT_OK_AND_ASSIGN(Table * table, db.GetTable("emp"));
  ASSERT_OK(table->CreateIndex(1));
  ASSERT_OK(db.InsertRow("emp", Row{Value::String("a"), Value::Double(1)})
                .status());
  db.CommitAll();
  UndoLog::Mark mark = db.UndoMark();
  uint64_t s0 = db.Checksum();

  ASSERT_OK_AND_ASSIGN(
      TupleHandle h,
      db.InsertRow("emp", Row{Value::String("b"), Value::Double(2)}));
  EXPECT_NE(db.Checksum(), s0);
  ASSERT_OK(db.UpdateRow("emp", h, Row{Value::String("b"), Value::Double(3)}));
  EXPECT_NE(db.Checksum(), s0);

  ASSERT_OK(db.RollbackTo(mark));
  EXPECT_EQ(db.Checksum(), s0);
  ASSERT_OK(db.CheckInvariants());
}

TEST(Database, ChecksumEqualForIdenticallyBuiltDatabases) {
  auto build = [] {
    auto db = std::make_unique<Database>();
    EXPECT_OK(db->CreateTable(EmpSchema()));
    EXPECT_OK(
        db->InsertRow("emp", Row{Value::String("a"), Value::Double(1)})
            .status());
    EXPECT_OK(
        db->InsertRow("emp", Row{Value::String("b"), Value::Double(2)})
            .status());
    return db;
  };
  auto db1 = build();
  auto db2 = build();
  EXPECT_EQ(db1->Checksum(), db2->Checksum());
}

TEST(Database, CheckInvariantsCatchesIndexDivergence) {
  Database db;
  ASSERT_OK(db.CreateTable(EmpSchema()));
  ASSERT_OK_AND_ASSIGN(Table * table, db.GetTable("emp"));
  ASSERT_OK(table->CreateIndex(1));
  ASSERT_OK(db.InsertRow("emp", Row{Value::String("a"), Value::Double(1)})
                .status());
  ASSERT_OK(db.CheckInvariants());
  // Bypass the Database layer to damage the heap behind the index's back.
  ASSERT_OK(table->Insert(9999, Row{Value::String("x"), Value::Double(7)}));
  // (Insert maintains the index, so damage the other direction: a row
  // whose key the index never saw.)
  ASSERT_OK(db.CheckInvariants());
  const_cast<ColumnIndex*>(table->GetIndex(1))->Erase(Value::Double(7), 9999);
  Status s = db.CheckInvariants();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(Database, DropTable) {
  Database db;
  ASSERT_OK(db.CreateTable(EmpSchema()));
  EXPECT_TRUE(db.catalog().HasTable("emp"));
  ASSERT_OK(db.DropTable("emp"));
  EXPECT_FALSE(db.catalog().HasTable("emp"));
  EXPECT_FALSE(db.GetTable("emp").ok());
}

TEST(Catalog, DuplicateAndMissingTables) {
  Catalog catalog;
  ASSERT_OK(catalog.AddTable(EmpSchema()));
  EXPECT_EQ(catalog.AddTable(EmpSchema()).code(), StatusCode::kCatalogError);
  EXPECT_FALSE(catalog.GetTable("nope").ok());
  EXPECT_EQ(catalog.DropTable("nope").code(), StatusCode::kCatalogError);
}

TEST(Catalog, RejectsBadSchemas) {
  Catalog catalog;
  EXPECT_FALSE(catalog.AddTable(TableSchema("", {{"c", ValueType::kInt}})).ok());
  EXPECT_FALSE(catalog.AddTable(TableSchema("t", {})).ok());
  EXPECT_FALSE(catalog
                   .AddTable(TableSchema(
                       "t", {{"c", ValueType::kInt}, {"C", ValueType::kInt}}))
                   .ok());
}

TEST(Catalog, CaseInsensitiveLookup) {
  Catalog catalog;
  ASSERT_OK(catalog.AddTable(EmpSchema()));
  EXPECT_TRUE(catalog.HasTable("EMP"));
  ASSERT_OK_AND_ASSIGN(const TableSchema* schema, catalog.GetTable("Emp"));
  EXPECT_TRUE(schema->FindColumn("NAME").has_value());
  EXPECT_EQ(*schema->FindColumn("Salary"), 1u);
}

}  // namespace
}  // namespace sopr
