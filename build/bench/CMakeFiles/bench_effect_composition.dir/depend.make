# Empty dependencies file for bench_effect_composition.
# This may be replaced when dependencies are built.
