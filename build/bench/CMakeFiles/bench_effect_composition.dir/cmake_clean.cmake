file(REMOVE_RECURSE
  "CMakeFiles/bench_effect_composition.dir/bench_effect_composition.cpp.o"
  "CMakeFiles/bench_effect_composition.dir/bench_effect_composition.cpp.o.d"
  "bench_effect_composition"
  "bench_effect_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_effect_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
