# Empty compiler generated dependencies file for bench_transinfo_ablation.
# This may be replaced when dependencies are built.
