file(REMOVE_RECURSE
  "CMakeFiles/bench_transinfo_ablation.dir/bench_transinfo_ablation.cpp.o"
  "CMakeFiles/bench_transinfo_ablation.dir/bench_transinfo_ablation.cpp.o.d"
  "bench_transinfo_ablation"
  "bench_transinfo_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transinfo_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
