file(REMOVE_RECURSE
  "CMakeFiles/bench_transition_tables.dir/bench_transition_tables.cpp.o"
  "CMakeFiles/bench_transition_tables.dir/bench_transition_tables.cpp.o.d"
  "bench_transition_tables"
  "bench_transition_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transition_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
