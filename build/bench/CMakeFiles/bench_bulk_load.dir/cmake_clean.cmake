file(REMOVE_RECURSE
  "CMakeFiles/bench_bulk_load.dir/bench_bulk_load.cpp.o"
  "CMakeFiles/bench_bulk_load.dir/bench_bulk_load.cpp.o.d"
  "bench_bulk_load"
  "bench_bulk_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bulk_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
