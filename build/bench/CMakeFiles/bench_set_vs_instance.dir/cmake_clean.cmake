file(REMOVE_RECURSE
  "CMakeFiles/bench_set_vs_instance.dir/bench_set_vs_instance.cpp.o"
  "CMakeFiles/bench_set_vs_instance.dir/bench_set_vs_instance.cpp.o.d"
  "bench_set_vs_instance"
  "bench_set_vs_instance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_set_vs_instance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
