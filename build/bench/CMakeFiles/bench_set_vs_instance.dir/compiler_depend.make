# Empty compiler generated dependencies file for bench_set_vs_instance.
# This may be replaced when dependencies are built.
