file(REMOVE_RECURSE
  "CMakeFiles/repro_examples.dir/repro_examples.cpp.o"
  "CMakeFiles/repro_examples.dir/repro_examples.cpp.o.d"
  "repro_examples"
  "repro_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
