file(REMOVE_RECURSE
  "CMakeFiles/sql_extensions_test.dir/engine/sql_extensions_test.cc.o"
  "CMakeFiles/sql_extensions_test.dir/engine/sql_extensions_test.cc.o.d"
  "sql_extensions_test"
  "sql_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
