file(REMOVE_RECURSE
  "CMakeFiles/derived_data_test.dir/integration/derived_data_test.cc.o"
  "CMakeFiles/derived_data_test.dir/integration/derived_data_test.cc.o.d"
  "derived_data_test"
  "derived_data_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derived_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
