# Empty compiler generated dependencies file for derived_data_test.
# This may be replaced when dependencies are built.
