# Empty dependencies file for trans_info_test.
# This may be replaced when dependencies are built.
