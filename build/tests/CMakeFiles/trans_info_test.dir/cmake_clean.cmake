file(REMOVE_RECURSE
  "CMakeFiles/trans_info_test.dir/rules/trans_info_test.cc.o"
  "CMakeFiles/trans_info_test.dir/rules/trans_info_test.cc.o.d"
  "trans_info_test"
  "trans_info_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trans_info_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
