file(REMOVE_RECURSE
  "CMakeFiles/effect_test.dir/rules/effect_test.cc.o"
  "CMakeFiles/effect_test.dir/rules/effect_test.cc.o.d"
  "effect_test"
  "effect_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/effect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
