file(REMOVE_RECURSE
  "CMakeFiles/instance_engine_test.dir/baseline/instance_engine_test.cc.o"
  "CMakeFiles/instance_engine_test.dir/baseline/instance_engine_test.cc.o.d"
  "instance_engine_test"
  "instance_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
