# Empty compiler generated dependencies file for trans_info_property_test.
# This may be replaced when dependencies are built.
