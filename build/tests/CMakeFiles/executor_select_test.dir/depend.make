# Empty dependencies file for executor_select_test.
# This may be replaced when dependencies are built.
