file(REMOVE_RECURSE
  "CMakeFiles/executor_select_test.dir/query/executor_select_test.cc.o"
  "CMakeFiles/executor_select_test.dir/query/executor_select_test.cc.o.d"
  "executor_select_test"
  "executor_select_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_select_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
