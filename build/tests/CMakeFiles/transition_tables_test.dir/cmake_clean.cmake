file(REMOVE_RECURSE
  "CMakeFiles/transition_tables_test.dir/rules/transition_tables_test.cc.o"
  "CMakeFiles/transition_tables_test.dir/rules/transition_tables_test.cc.o.d"
  "transition_tables_test"
  "transition_tables_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transition_tables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
