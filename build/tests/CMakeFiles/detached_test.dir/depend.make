# Empty dependencies file for detached_test.
# This may be replaced when dependencies are built.
