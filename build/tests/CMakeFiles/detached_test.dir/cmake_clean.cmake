file(REMOVE_RECURSE
  "CMakeFiles/detached_test.dir/rules/detached_test.cc.o"
  "CMakeFiles/detached_test.dir/rules/detached_test.cc.o.d"
  "detached_test"
  "detached_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detached_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
