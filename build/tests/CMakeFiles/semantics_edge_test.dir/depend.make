# Empty dependencies file for semantics_edge_test.
# This may be replaced when dependencies are built.
