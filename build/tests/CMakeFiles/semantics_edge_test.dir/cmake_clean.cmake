file(REMOVE_RECURSE
  "CMakeFiles/semantics_edge_test.dir/rules/semantics_edge_test.cc.o"
  "CMakeFiles/semantics_edge_test.dir/rules/semantics_edge_test.cc.o.d"
  "semantics_edge_test"
  "semantics_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantics_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
