file(REMOVE_RECURSE
  "CMakeFiles/effect_property_test.dir/rules/effect_property_test.cc.o"
  "CMakeFiles/effect_property_test.dir/rules/effect_property_test.cc.o.d"
  "effect_property_test"
  "effect_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/effect_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
