# Empty compiler generated dependencies file for effect_property_test.
# This may be replaced when dependencies are built.
