# Empty dependencies file for executor_dml_test.
# This may be replaced when dependencies are built.
