file(REMOVE_RECURSE
  "CMakeFiles/executor_dml_test.dir/query/executor_dml_test.cc.o"
  "CMakeFiles/executor_dml_test.dir/query/executor_dml_test.cc.o.d"
  "executor_dml_test"
  "executor_dml_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_dml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
