
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/instance_engine.cc" "src/CMakeFiles/sopr.dir/baseline/instance_engine.cc.o" "gcc" "src/CMakeFiles/sopr.dir/baseline/instance_engine.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/sopr.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/sopr.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/schema.cc" "src/CMakeFiles/sopr.dir/catalog/schema.cc.o" "gcc" "src/CMakeFiles/sopr.dir/catalog/schema.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/sopr.dir/common/status.cc.o" "gcc" "src/CMakeFiles/sopr.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/sopr.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/sopr.dir/common/string_util.cc.o.d"
  "/root/repo/src/constraints/compiler.cc" "src/CMakeFiles/sopr.dir/constraints/compiler.cc.o" "gcc" "src/CMakeFiles/sopr.dir/constraints/compiler.cc.o.d"
  "/root/repo/src/constraints/constraint.cc" "src/CMakeFiles/sopr.dir/constraints/constraint.cc.o" "gcc" "src/CMakeFiles/sopr.dir/constraints/constraint.cc.o.d"
  "/root/repo/src/engine/engine.cc" "src/CMakeFiles/sopr.dir/engine/engine.cc.o" "gcc" "src/CMakeFiles/sopr.dir/engine/engine.cc.o.d"
  "/root/repo/src/engine/explain.cc" "src/CMakeFiles/sopr.dir/engine/explain.cc.o" "gcc" "src/CMakeFiles/sopr.dir/engine/explain.cc.o.d"
  "/root/repo/src/expr/aggregate.cc" "src/CMakeFiles/sopr.dir/expr/aggregate.cc.o" "gcc" "src/CMakeFiles/sopr.dir/expr/aggregate.cc.o.d"
  "/root/repo/src/expr/evaluator.cc" "src/CMakeFiles/sopr.dir/expr/evaluator.cc.o" "gcc" "src/CMakeFiles/sopr.dir/expr/evaluator.cc.o.d"
  "/root/repo/src/io/csv.cc" "src/CMakeFiles/sopr.dir/io/csv.cc.o" "gcc" "src/CMakeFiles/sopr.dir/io/csv.cc.o.d"
  "/root/repo/src/io/dump.cc" "src/CMakeFiles/sopr.dir/io/dump.cc.o" "gcc" "src/CMakeFiles/sopr.dir/io/dump.cc.o.d"
  "/root/repo/src/query/executor.cc" "src/CMakeFiles/sopr.dir/query/executor.cc.o" "gcc" "src/CMakeFiles/sopr.dir/query/executor.cc.o.d"
  "/root/repo/src/query/planner.cc" "src/CMakeFiles/sopr.dir/query/planner.cc.o" "gcc" "src/CMakeFiles/sopr.dir/query/planner.cc.o.d"
  "/root/repo/src/query/result_set.cc" "src/CMakeFiles/sopr.dir/query/result_set.cc.o" "gcc" "src/CMakeFiles/sopr.dir/query/result_set.cc.o.d"
  "/root/repo/src/rules/analysis.cc" "src/CMakeFiles/sopr.dir/rules/analysis.cc.o" "gcc" "src/CMakeFiles/sopr.dir/rules/analysis.cc.o.d"
  "/root/repo/src/rules/effect.cc" "src/CMakeFiles/sopr.dir/rules/effect.cc.o" "gcc" "src/CMakeFiles/sopr.dir/rules/effect.cc.o.d"
  "/root/repo/src/rules/rule.cc" "src/CMakeFiles/sopr.dir/rules/rule.cc.o" "gcc" "src/CMakeFiles/sopr.dir/rules/rule.cc.o.d"
  "/root/repo/src/rules/rule_engine.cc" "src/CMakeFiles/sopr.dir/rules/rule_engine.cc.o" "gcc" "src/CMakeFiles/sopr.dir/rules/rule_engine.cc.o.d"
  "/root/repo/src/rules/selection.cc" "src/CMakeFiles/sopr.dir/rules/selection.cc.o" "gcc" "src/CMakeFiles/sopr.dir/rules/selection.cc.o.d"
  "/root/repo/src/rules/trace_format.cc" "src/CMakeFiles/sopr.dir/rules/trace_format.cc.o" "gcc" "src/CMakeFiles/sopr.dir/rules/trace_format.cc.o.d"
  "/root/repo/src/rules/trans_info.cc" "src/CMakeFiles/sopr.dir/rules/trans_info.cc.o" "gcc" "src/CMakeFiles/sopr.dir/rules/trans_info.cc.o.d"
  "/root/repo/src/rules/transition_tables.cc" "src/CMakeFiles/sopr.dir/rules/transition_tables.cc.o" "gcc" "src/CMakeFiles/sopr.dir/rules/transition_tables.cc.o.d"
  "/root/repo/src/sql/ast.cc" "src/CMakeFiles/sopr.dir/sql/ast.cc.o" "gcc" "src/CMakeFiles/sopr.dir/sql/ast.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/sopr.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/sopr.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/sopr.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/sopr.dir/sql/parser.cc.o.d"
  "/root/repo/src/sql/token.cc" "src/CMakeFiles/sopr.dir/sql/token.cc.o" "gcc" "src/CMakeFiles/sopr.dir/sql/token.cc.o.d"
  "/root/repo/src/storage/database.cc" "src/CMakeFiles/sopr.dir/storage/database.cc.o" "gcc" "src/CMakeFiles/sopr.dir/storage/database.cc.o.d"
  "/root/repo/src/storage/index.cc" "src/CMakeFiles/sopr.dir/storage/index.cc.o" "gcc" "src/CMakeFiles/sopr.dir/storage/index.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/sopr.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/sopr.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/undo_log.cc" "src/CMakeFiles/sopr.dir/storage/undo_log.cc.o" "gcc" "src/CMakeFiles/sopr.dir/storage/undo_log.cc.o.d"
  "/root/repo/src/types/row.cc" "src/CMakeFiles/sopr.dir/types/row.cc.o" "gcc" "src/CMakeFiles/sopr.dir/types/row.cc.o.d"
  "/root/repo/src/types/value.cc" "src/CMakeFiles/sopr.dir/types/value.cc.o" "gcc" "src/CMakeFiles/sopr.dir/types/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
