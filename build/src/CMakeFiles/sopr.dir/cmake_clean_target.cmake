file(REMOVE_RECURSE
  "libsopr.a"
)
