# Empty dependencies file for sopr.
# This may be replaced when dependencies are built.
