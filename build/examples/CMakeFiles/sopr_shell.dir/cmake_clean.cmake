file(REMOVE_RECURSE
  "CMakeFiles/sopr_shell.dir/sopr_shell.cpp.o"
  "CMakeFiles/sopr_shell.dir/sopr_shell.cpp.o.d"
  "sopr_shell"
  "sopr_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sopr_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
