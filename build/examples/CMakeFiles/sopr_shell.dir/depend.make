# Empty dependencies file for sopr_shell.
# This may be replaced when dependencies are built.
