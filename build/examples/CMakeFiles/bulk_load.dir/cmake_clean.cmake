file(REMOVE_RECURSE
  "CMakeFiles/bulk_load.dir/bulk_load.cpp.o"
  "CMakeFiles/bulk_load.dir/bulk_load.cpp.o.d"
  "bulk_load"
  "bulk_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulk_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
