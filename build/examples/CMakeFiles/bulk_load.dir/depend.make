# Empty dependencies file for bulk_load.
# This may be replaced when dependencies are built.
