file(REMOVE_RECURSE
  "CMakeFiles/inventory_reorder.dir/inventory_reorder.cpp.o"
  "CMakeFiles/inventory_reorder.dir/inventory_reorder.cpp.o.d"
  "inventory_reorder"
  "inventory_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inventory_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
