# Empty dependencies file for inventory_reorder.
# This may be replaced when dependencies are built.
