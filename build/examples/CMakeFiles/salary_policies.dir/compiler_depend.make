# Empty compiler generated dependencies file for salary_policies.
# This may be replaced when dependencies are built.
