file(REMOVE_RECURSE
  "CMakeFiles/referential_integrity.dir/referential_integrity.cpp.o"
  "CMakeFiles/referential_integrity.dir/referential_integrity.cpp.o.d"
  "referential_integrity"
  "referential_integrity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/referential_integrity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
