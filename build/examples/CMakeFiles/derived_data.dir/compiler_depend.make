# Empty compiler generated dependencies file for derived_data.
# This may be replaced when dependencies are built.
