file(REMOVE_RECURSE
  "CMakeFiles/derived_data.dir/derived_data.cpp.o"
  "CMakeFiles/derived_data.dir/derived_data.cpp.o.d"
  "derived_data"
  "derived_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derived_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
